#include "feature/extractor.h"

#include <cmath>
#include <unordered_set>

#include "geom/algorithms.h"
#include "obs/trace.h"
#include "relate/relate.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sfpm {
namespace feature {

std::string ExtractionStats::ToString() const {
  return StrFormat(
      "extraction rows=%zu threads=%zu candidates=%llu millis=%.1f\n  %s",
      rows, threads, static_cast<unsigned long long>(envelope_candidates),
      total_millis, relate.ToString().c_str());
}

void ExtractionStats::PublishTo(obs::MetricsRegistry* registry) const {
  registry->GetCounter("extract.runs").Add(1);
  registry->GetCounter("extract.rows").Add(rows);
  registry->GetCounter("extract.envelope_candidates").Add(envelope_candidates);
  registry->GetGauge("extract.threads").Set(static_cast<double>(threads));
  registry->GetGauge("extract.total_millis").Set(total_millis);
  registry->GetCounter("relate.calls").Add(relate.calls);
  registry->GetCounter("relate.fast_disjoint").Add(relate.fast_disjoint);
  registry->GetCounter("relate.fast_contains").Add(relate.fast_contains);
  registry->GetCounter("relate.fast_within").Add(relate.fast_within);
  registry->GetCounter("relate.miss_boundary").Add(relate.miss_boundary);
  registry->GetCounter("relate.miss_inconclusive")
      .Add(relate.miss_inconclusive);
}

ExtractionStats ExtractionStats::FromMetrics(
    const obs::MetricsSnapshot& snapshot) {
  const auto counter = [&snapshot](const char* name) -> uint64_t {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  const auto gauge = [&snapshot](const char* name) -> double {
    const auto it = snapshot.gauges.find(name);
    return it == snapshot.gauges.end() ? 0.0 : it->second;
  };
  ExtractionStats stats;
  stats.rows = static_cast<size_t>(counter("extract.rows"));
  stats.threads = static_cast<size_t>(gauge("extract.threads"));
  stats.envelope_candidates = counter("extract.envelope_candidates");
  stats.total_millis = gauge("extract.total_millis");
  stats.relate.calls = counter("relate.calls");
  stats.relate.fast_disjoint = counter("relate.fast_disjoint");
  stats.relate.fast_contains = counter("relate.fast_contains");
  stats.relate.fast_within = counter("relate.fast_within");
  stats.relate.miss_boundary = counter("relate.miss_boundary");
  stats.relate.miss_inconclusive = counter("relate.miss_inconclusive");
  return stats;
}

Result<PredicateTable> PredicateExtractor::Extract(
    const ExtractorOptions& options, ExtractionStats* stats) const {
  if (reference_ == nullptr || reference_->IsEmpty()) {
    return Status::InvalidArgument("reference layer is empty");
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::Tracer::Span extract_span = tracer.StartSpan("extract");
  Stopwatch watch;
  ExtractionStats run_stats;

  {
    // Layer::Index() and Layer::Prepared() build their caches lazily on
    // first call, which is not safe to race; warm every relevant layer
    // before the parallel region so workers only ever see immutable-after-
    // build state. The prepared cache amortizes each feature's derived
    // linework and segment index across every reference row (and every
    // Extract call) that relates against it.
    obs::Tracer::Span prepare_span = tracer.StartSpan("extract/prepare");
    for (const Layer* layer : relevant_) {
      if (layer->IsEmpty()) continue;
      layer->Index();
      layer->Prepared();
    }
    reference_->Prepared();
  }

  const std::vector<Feature>& refs = reference_->features();
  std::vector<RowDraft> drafts(refs.size());

  ThreadPool pool(ResolveParallelism(options.parallelism));
  {
    obs::Tracer::Span join_span = tracer.StartSpan("extract/join");
    join_span.SetAttr("threads", static_cast<double>(pool.num_threads()));
    join_span.SetAttr("rows", static_cast<double>(refs.size()));
    pool.ParallelFor(0, refs.size(), [&](size_t i) {
      drafts[i] = ExtractRow(refs[i], options);
    });
  }

  // Deterministic merge: replay the drafts in reference order, so item ids
  // are assigned in exactly the order the serial path would assign them
  // (and the counters sum in a fixed order too). The row-level candidate
  // histogram is observed here — one thread, reference order — so its sum
  // aggregates bit-exactly at every thread count.
  obs::Histogram& row_candidates =
      obs::MetricsRegistry::Global().GetHistogram(
          "extract.row.envelope_candidates",
          {0, 1, 2, 5, 10, 20, 50, 100, 200, 500});
  PredicateTable table;
  {
    obs::Tracer::Span merge_span = tracer.StartSpan("extract/merge");
    for (RowDraft& draft : drafts) {
      const size_t row = table.AddRow(std::move(draft.name));
      for (const Predicate& predicate : draft.predicates) {
        SFPM_RETURN_NOT_OK(table.Set(row, predicate));
      }
      run_stats.envelope_candidates += draft.envelope_candidates;
      run_stats.relate.Add(draft.relate);
      row_candidates.Observe(static_cast<double>(draft.envelope_candidates));
    }
  }
  run_stats.rows = refs.size();
  run_stats.threads = pool.num_threads();
  run_stats.total_millis = watch.ElapsedMillis();
  run_stats.PublishTo(&obs::MetricsRegistry::Global());
  if (stats != nullptr) *stats = run_stats;
  return table;
}

PredicateExtractor::RowDraft PredicateExtractor::ExtractRow(
    const Feature& ref, const ExtractorOptions& options) const {
  RowDraft draft;
  const Result<std::string> name = ref.Attribute("name");
  if (name.ok()) {
    draft.name = name.value();
  } else {
    draft.name = reference_->feature_type() + std::to_string(ref.id());
  }

  if (options.reference_attributes) {
    for (const auto& [key, value] : ref.attributes()) {
      if (key == "name") continue;
      draft.predicates.push_back(Predicate::Attribute(key, value));
    }
  }

  // The reference layer's prepared cache serves every relate call of this
  // row (all layers, all candidates) and every later Extract call.
  const relate::PreparedGeometry& prepared =
      reference_->Prepared()[ref.id()];
  for (const Layer* layer : relevant_) {
    if (layer->IsEmpty()) continue;
    if (options.topological) {
      ExtractTopological(prepared, *layer, options, &draft);
    }
    if (options.distance_bands != nullptr &&
        (options.distance_types.empty() ||
         options.distance_types.count(layer->feature_type()) > 0)) {
      ExtractDistance(ref, *layer, *options.distance_bands,
                      options.instance_granularity, &draft.predicates);
    }
    if (options.directions) {
      ExtractDirections(ref, *layer, &draft.predicates);
    }
  }
  return draft;
}

void PredicateExtractor::ExtractTopological(
    const relate::PreparedGeometry& ref, const Layer& layer,
    const ExtractorOptions& options, RowDraft* draft) const {
  const std::vector<relate::PreparedGeometry>& prepared_others =
      layer.Prepared();
  std::vector<uint64_t> candidates;
  layer.Index().Query(ref.envelope(), &candidates);
  draft->envelope_candidates += candidates.size();
  for (uint64_t id : candidates) {
    const Feature& other = layer.at(id);
    // Feature ids are assigned sequentially from 0, so the id doubles as
    // the index into the layer's prepared cache.
    const relate::PreparedGeometry& prepared_other = prepared_others[id];
    const relate::IntersectionMatrix matrix =
        options.fast_relate ? ref.Relate(prepared_other, &draft->relate)
                            : ref.RelateFull(prepared_other);
    const qsr::TopologicalRelation rel = qsr::ClassifyMatrix(
        matrix, ref.geometry().Dimension(), other.geometry().Dimension());
    if (rel == qsr::TopologicalRelation::kDisjoint) continue;
    const std::string type =
        options.instance_granularity
            ? layer.feature_type() + std::to_string(other.id())
            : layer.feature_type();
    draft->predicates.push_back(
        Predicate::Spatial(qsr::TopologicalRelationName(rel), type));
  }
}

void PredicateExtractor::ExtractDistance(const Feature& ref,
                                         const Layer& layer,
                                         const qsr::DistanceQuantizer& bands,
                                         bool instance_granularity,
                                         std::vector<Predicate>* out) const {
  // Candidates within the last finite bound, found by envelope distance.
  const auto& band_list = bands.bands();
  const double max_finite = band_list.size() >= 2
                                ? band_list[band_list.size() - 2].upper_bound
                                : 0.0;

  std::vector<uint64_t> candidates;
  layer.Index().QueryWithinDistance(ref.geometry().GetEnvelope(), max_finite,
                                    &candidates);

  size_t within_last_bound = 0;
  for (uint64_t id : candidates) {
    const Feature& other = layer.at(id);
    const double d = geom::Distance(ref.geometry(), other.geometry());
    if (d >= max_finite) continue;  // Envelope filter false positive.
    ++within_last_bound;
    const std::string type =
        instance_granularity
            ? layer.feature_type() + std::to_string(other.id())
            : layer.feature_type();
    out->push_back(
        Predicate::Spatial(band_list[bands.BandIndex(d)].name, type));
  }

  // The unbounded band: emitted when some instance lies beyond every
  // finite bound (the paper's farFrom_PoliceCenter).
  if (within_last_bound < layer.Size()) {
    out->push_back(
        Predicate::Spatial(band_list.back().name, layer.feature_type()));
  }
}

void PredicateExtractor::ExtractDirections(const Feature& ref,
                                           const Layer& layer,
                                           std::vector<Predicate>* out) const {
  const geom::Point origin = geom::Centroid(ref.geometry());
  std::unordered_set<int> seen;
  for (const Feature& other : layer.features()) {
    const qsr::CardinalDirection dir =
        qsr::DirectionBetween(origin, geom::Centroid(other.geometry()));
    if (dir == qsr::CardinalDirection::kSame) continue;
    if (!seen.insert(static_cast<int>(dir)).second) continue;
    out->push_back(Predicate::Spatial(qsr::CardinalDirectionName(dir),
                                      layer.feature_type()));
  }
}

}  // namespace feature
}  // namespace sfpm
