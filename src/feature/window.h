#ifndef SFPM_FEATURE_WINDOW_H_
#define SFPM_FEATURE_WINDOW_H_

#include <cstdint>
#include <vector>

#include "feature/feature.h"
#include "geom/point.h"

namespace sfpm {
namespace feature {

/// \brief Sub-layer builders for tile-sharded extraction
/// (docs/SHARDING.md). Both renumber feature ids from 0 — a Layer
/// invariant the extractor relies on (ids index the prepared cache) —
/// while preserving the source layer's relative feature order, so a
/// sub-layer's R-tree candidates sorted by id enumerate in the same
/// order as the full layer's sorted candidates.

/// Features of `layer` whose envelope intersects `window`, renumbered.
/// With a tile's halo window this is a superset of every owned row's
/// envelope-join candidates, which is what makes tile extraction emit
/// exactly the full run's predicates.
Layer WindowLayer(const Layer& layer, const geom::Envelope& window);

/// The sub-layer of exactly `ids` (ascending feature ids of `layer`),
/// renumbered. When `preserve_row_names` is set, features lacking a
/// "name" attribute get one equal to the full-layer fallback row name
/// (`feature_type + original id`), so extraction rows keep their
/// full-run names after renumbering ("name" is excluded from attribute
/// predicates, so this changes nothing else).
Layer SubsetLayer(const Layer& layer, const std::vector<uint64_t>& ids,
                  bool preserve_row_names);

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_WINDOW_H_
