#include "feature/window.h"

#include <string>

namespace sfpm {
namespace feature {

Layer WindowLayer(const Layer& layer, const geom::Envelope& window) {
  Layer out(layer.feature_type(), layer.name());
  for (const Feature& f : layer.features()) {
    if (!f.geometry().GetEnvelope().Intersects(window)) continue;
    out.Add(f.geometry(), f.attributes());
  }
  return out;
}

Layer SubsetLayer(const Layer& layer, const std::vector<uint64_t>& ids,
                  bool preserve_row_names) {
  Layer out(layer.feature_type(), layer.name());
  for (uint64_t id : ids) {
    const Feature& f = layer.at(id);
    std::map<std::string, std::string> attributes = f.attributes();
    if (preserve_row_names && attributes.count("name") == 0) {
      attributes["name"] = layer.feature_type() + std::to_string(f.id());
    }
    out.Add(f.geometry(), std::move(attributes));
  }
  return out;
}

}  // namespace feature
}  // namespace sfpm
