#include "feature/predicate.h"

namespace sfpm {
namespace feature {

Result<Predicate> Predicate::FromLabel(const std::string& label) {
  const size_t eq = label.find('=');
  if (eq != std::string::npos) {
    if (eq == 0 || eq + 1 >= label.size()) {
      return Status::ParseError("malformed attribute predicate '" + label +
                                "'");
    }
    return Attribute(label.substr(0, eq), label.substr(eq + 1));
  }
  const size_t underscore = label.find('_');
  if (underscore == std::string::npos || underscore == 0 ||
      underscore + 1 >= label.size()) {
    return Status::ParseError("malformed spatial predicate '" + label + "'");
  }
  return Spatial(label.substr(0, underscore), label.substr(underscore + 1));
}

std::string Predicate::Label() const {
  if (is_spatial()) return relation_ + "_" + feature_type_;
  return feature_type_ + "=" + value_;
}

}  // namespace feature
}  // namespace sfpm
