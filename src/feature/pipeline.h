#ifndef SFPM_FEATURE_PIPELINE_H_
#define SFPM_FEATURE_PIPELINE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/apriori.h"
#include "core/rules.h"
#include "feature/dependency.h"
#include "feature/extractor.h"

namespace sfpm {
namespace feature {

/// \brief Mining algorithm selector for the pipeline.
enum class MiningAlgorithm {
  kApriori,   ///< Listing 1 of the paper (with the configured filters).
  kFpGrowth,  ///< FP-Growth honouring the same filters.
};

/// \brief Filtering level, mirroring the paper's three compared systems.
enum class FilterLevel {
  kNone,    ///< Plain frequent pattern mining.
  kKc,      ///< Apriori-KC: background-knowledge dependency pairs removed.
  kKcPlus,  ///< Apriori-KC+: dependencies plus same-feature-type pairs.
};

/// \brief End-to-end configuration of one spatial association mining run.
struct PipelineOptions {
  ExtractorOptions extractor;
  double min_support = 0.1;
  FilterLevel filter_level = FilterLevel::kKcPlus;
  MiningAlgorithm algorithm = MiningAlgorithm::kApriori;
  /// When set, rules are generated with these options.
  std::optional<core::RuleOptions> rules;
  /// Worker threads for both phases (extraction join and support
  /// counting); results are identical at every setting. 0 = auto
  /// (SFPM_THREADS, else hardware concurrency); 1 = serial. An explicitly
  /// nonzero extractor.parallelism wins for the extraction phase.
  size_t parallelism = 0;
};

/// \brief Everything one run produces.
struct PipelineResult {
  PredicateTable table;
  core::AprioriResult mining;
  std::vector<core::AssociationRule> rules;
};

/// \brief The whole workflow of the paper behind one call: predicate
/// extraction, background-knowledge registration, filtered mining, rule
/// generation.
///
/// \code
///   feature::SpatialAssociationPipeline pipeline(&districts);
///   pipeline.AddRelevantLayer(&slums);
///   pipeline.AddRelevantLayer(&schools);
///   pipeline.AddDependency("street", "illuminationPoint");
///   auto result = pipeline.Run(options);
/// \endcode
class SpatialAssociationPipeline {
 public:
  explicit SpatialAssociationPipeline(const Layer* reference)
      : extractor_(reference) {}

  /// Registers a relevant layer (must outlive the pipeline).
  void AddRelevantLayer(const Layer* layer) {
    extractor_.AddRelevantLayer(layer);
  }

  /// Declares a well-known dependency between two feature types (phi).
  void AddDependency(const std::string& type_a, const std::string& type_b) {
    dependencies_.Add(type_a, type_b);
  }

  const DependencyRegistry& dependencies() const { return dependencies_; }

  /// Runs extraction + mining (+ rules when configured).
  Result<PipelineResult> Run(const PipelineOptions& options) const;

  /// Mines an already extracted table with this pipeline's dependencies —
  /// the entry point when the table came from io::LoadTable or an earlier
  /// extraction.
  Result<PipelineResult> MineTable(PredicateTable table,
                                   const PipelineOptions& options) const;

 private:
  PredicateExtractor extractor_;
  DependencyRegistry dependencies_;
};

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_PIPELINE_H_
