#include "feature/pipeline.h"

#include "core/fpgrowth.h"

namespace sfpm {
namespace feature {

Result<PipelineResult> SpatialAssociationPipeline::Run(
    const PipelineOptions& options) const {
  ExtractorOptions extractor_options = options.extractor;
  if (extractor_options.parallelism == 0) {
    extractor_options.parallelism = options.parallelism;
  }
  SFPM_ASSIGN_OR_RETURN(PredicateTable table,
                        extractor_.Extract(extractor_options));
  return MineTable(std::move(table), options);
}

Result<PipelineResult> SpatialAssociationPipeline::MineTable(
    PredicateTable table, const PipelineOptions& options) const {
  core::AprioriOptions mining_options;
  mining_options.min_support = options.min_support;
  mining_options.parallelism = options.parallelism;

  // Filters must outlive the mining call.
  std::optional<core::SameKeyFilter> same_key;
  std::optional<core::PairBlocklistFilter> dependency_filter;
  if (options.filter_level != FilterLevel::kNone) {
    dependency_filter.emplace(dependencies_.MakeFilter(table.db()));
    mining_options.filters.push_back(&*dependency_filter);
  }
  if (options.filter_level == FilterLevel::kKcPlus) {
    same_key.emplace(table.db());
    mining_options.filters.push_back(&*same_key);
  }

  Result<core::AprioriResult> mined =
      options.algorithm == MiningAlgorithm::kApriori
          ? core::MineApriori(table.db(), mining_options)
          : core::MineFpGrowth(table.db(), mining_options);
  if (!mined.ok()) return mined.status();

  std::vector<core::AssociationRule> rules;
  if (options.rules.has_value()) {
    rules = core::GenerateRules(table.db(), mined.value(), *options.rules);
  }
  return PipelineResult{std::move(table), std::move(mined).value(),
                        std::move(rules)};
}

}  // namespace feature
}  // namespace sfpm
