#include "feature/taxonomy.h"

namespace sfpm {
namespace feature {

Status Taxonomy::AddIsA(const std::string& child, const std::string& parent) {
  if (child == parent) {
    return Status::InvalidArgument("type cannot be its own parent");
  }
  const auto it = parent_.find(child);
  if (it != parent_.end()) {
    if (it->second == parent) return Status::OK();
    return Status::AlreadyExists("type '" + child +
                                 "' already has parent '" + it->second + "'");
  }
  // Reject cycles: the child must not be an ancestor of the parent.
  std::string cursor = parent;
  while (true) {
    const auto up = parent_.find(cursor);
    if (up == parent_.end()) break;
    cursor = up->second;
    if (cursor == child) {
      return Status::InvalidArgument("IS-A edge '" + child + "' -> '" +
                                     parent + "' would create a cycle");
    }
  }
  parent_.emplace(child, parent);
  return Status::OK();
}

Result<std::string> Taxonomy::ParentOf(const std::string& type) const {
  const auto it = parent_.find(type);
  if (it == parent_.end()) {
    return Status::NotFound("type '" + type + "' has no parent");
  }
  return it->second;
}

std::vector<std::string> Taxonomy::AncestorsOf(const std::string& type) const {
  std::vector<std::string> ancestors;
  std::string cursor = type;
  while (true) {
    const auto it = parent_.find(cursor);
    if (it == parent_.end()) break;
    ancestors.push_back(it->second);
    cursor = it->second;
  }
  return ancestors;
}

std::string Taxonomy::RootOf(const std::string& type) const {
  const std::vector<std::string> ancestors = AncestorsOf(type);
  return ancestors.empty() ? type : ancestors.back();
}

std::string Taxonomy::Generalize(const std::string& type, int levels) const {
  std::string cursor = type;
  for (int i = 0; i < levels; ++i) {
    const auto it = parent_.find(cursor);
    if (it == parent_.end()) break;
    cursor = it->second;
  }
  return cursor;
}

PredicateTable GeneralizeTable(const PredicateTable& table,
                               const Taxonomy& taxonomy, int levels) {
  PredicateTable out;
  // Map the original predicates to their generalized forms, declaring them
  // in first-appearance order so ids stay stable.
  std::vector<Predicate> generalized;
  generalized.reserve(table.NumPredicates());
  for (core::ItemId item = 0; item < table.NumPredicates(); ++item) {
    const Predicate& p = table.PredicateAt(item);
    if (p.is_spatial()) {
      generalized.push_back(Predicate::Spatial(
          p.relation(), taxonomy.Generalize(p.feature_type(), levels)));
    } else {
      generalized.push_back(p);
    }
    out.Declare(generalized.back());
  }

  for (size_t row = 0; row < table.NumRows(); ++row) {
    const size_t new_row = out.AddRow(table.RowName(row));
    for (core::ItemId item : table.db().TransactionItems(row)) {
      const Status st = out.Set(new_row, generalized[item]);
      (void)st;  // Rows added in lockstep.
    }
  }
  return out;
}

Taxonomy InstanceTaxonomy(const std::vector<const Layer*>& layers) {
  Taxonomy taxonomy;
  for (const Layer* layer : layers) {
    for (const Feature& f : layer->features()) {
      const Status st = taxonomy.AddIsA(
          layer->feature_type() + std::to_string(f.id()),
          layer->feature_type());
      (void)st;  // Identical re-declarations are fine.
    }
  }
  return taxonomy;
}

}  // namespace feature
}  // namespace sfpm
