#ifndef SFPM_FEATURE_PREDICATE_H_
#define SFPM_FEATURE_PREDICATE_H_

#include <string>

#include "util/status.h"

namespace sfpm {
namespace feature {

/// \brief One mining item at feature-type granularity: either a spatial
/// predicate (`contains_slum`, `closeTo_policeCenter`) or a non-spatial
/// attribute predicate (`murderRate=high`).
///
/// Spatial predicates carry the *feature type* they mention; the
/// Apriori-KC+ same-feature-type filter groups items by exactly this.
class Predicate {
 public:
  enum class Kind { kSpatial, kAttribute };

  /// A qualitative spatial predicate: relation + relevant feature type.
  static Predicate Spatial(std::string relation, std::string feature_type) {
    return Predicate(Kind::kSpatial, std::move(relation),
                     std::move(feature_type), "");
  }

  /// A non-spatial predicate: attribute name + categorical value.
  static Predicate Attribute(std::string name, std::string value) {
    return Predicate(Kind::kAttribute, "", std::move(name), std::move(value));
  }

  /// Parses a label produced by Label(): "rel_type" or "name=value".
  /// Underscores may appear inside the feature type but not the relation.
  static Result<Predicate> FromLabel(const std::string& label);

  Kind kind() const { return kind_; }
  bool is_spatial() const { return kind_ == Kind::kSpatial; }

  /// Spatial relation name; empty for attribute predicates.
  const std::string& relation() const { return relation_; }

  /// Relevant feature type (spatial) or attribute name (attribute).
  const std::string& feature_type() const { return feature_type_; }

  /// Attribute value; empty for spatial predicates.
  const std::string& value() const { return value_; }

  /// "contains_slum" or "murderRate=high".
  std::string Label() const;

  /// Grouping key for the same-feature-type filter: the feature type for
  /// spatial predicates, empty (no group) for attribute predicates.
  std::string Key() const { return is_spatial() ? feature_type_ : ""; }

  /// True when both predicates are spatial and mention the same feature
  /// type — the configuration Apriori-KC+ eliminates.
  bool SameFeatureType(const Predicate& other) const {
    return is_spatial() && other.is_spatial() &&
           feature_type_ == other.feature_type_;
  }

  bool operator==(const Predicate& o) const {
    return kind_ == o.kind_ && relation_ == o.relation_ &&
           feature_type_ == o.feature_type_ && value_ == o.value_;
  }

 private:
  Predicate(Kind kind, std::string relation, std::string feature_type,
            std::string value)
      : kind_(kind),
        relation_(std::move(relation)),
        feature_type_(std::move(feature_type)),
        value_(std::move(value)) {}

  Kind kind_;
  std::string relation_;
  std::string feature_type_;
  std::string value_;
};

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_PREDICATE_H_
