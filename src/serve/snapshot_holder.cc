#include "serve/snapshot_holder.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sfpm {
namespace serve {

Result<std::shared_ptr<const ServingSnapshot>> ServingSnapshot::Load(
    const std::vector<std::string>& paths, uint64_t generation) {
  if (paths.empty()) {
    return Status::InvalidArgument("no snapshot paths to serve");
  }
  auto span = obs::Tracer::Global().StartSpan("serve/load");

  auto snapshot = std::make_shared<ServingSnapshot>();
  snapshot->paths = paths;
  snapshot->generation = generation;

  // Sections of the same kind across files: later wins, so an operator
  // can layer a small patterns-only snapshot over a big city snapshot.
  std::optional<store::SectionInfo> patterns_info;
  const store::SnapshotReader* patterns_reader = nullptr;
  std::optional<store::SectionInfo> txdb_info;
  const store::SnapshotReader* txdb_reader = nullptr;
  std::optional<store::SectionInfo> coloc_info;
  const store::SnapshotReader* coloc_reader = nullptr;

  for (const std::string& path : paths) {
    auto opened = store::SnapshotReader::Open(path);
    if (!opened.ok()) {
      return Status(opened.status().code(),
                    path + ": " + opened.status().message());
    }
    snapshot->readers.push_back(
        std::make_unique<store::SnapshotReader>(std::move(opened).value()));
    const store::SnapshotReader& reader = *snapshot->readers.back();
    if (snapshot->tool_version.empty()) {
      snapshot->tool_version = reader.tool_version();
    }
    for (const store::SectionInfo& info : reader.sections()) {
      snapshot->sections.push_back(
          {path, store::SectionTypeName(info.type), info.name, info.length});
      switch (info.type) {
        case store::SectionType::kLayer: {
          auto layer = reader.ReadLayer(info);
          if (!layer.ok()) return layer.status();
          const std::string& type = layer.value().feature_type();
          const auto it = snapshot->layer_index.find(type);
          if (it != snapshot->layer_index.end()) {
            snapshot->layers[it->second] = std::move(layer).value();
          } else {
            snapshot->layer_index[type] = snapshot->layers.size();
            snapshot->layers.push_back(std::move(layer).value());
          }
          break;
        }
        case store::SectionType::kPatternSet:
          patterns_info = info;
          patterns_reader = &reader;
          break;
        case store::SectionType::kTransactionDb:
          txdb_info = info;
          txdb_reader = &reader;
          break;
        case store::SectionType::kColocationSet:
          coloc_info = info;
          coloc_reader = &reader;
          break;
        case store::SectionType::kNeighborGraph:
          break;  // Inventoried only; no query walks the adjacency.
        case store::SectionType::kManifest:
          break;  // Provenance only; surfaced through `status` sections.
      }
    }
  }

  if (patterns_info.has_value()) {
    auto patterns = patterns_reader->ReadPatternSet(*patterns_info);
    if (!patterns.ok()) return patterns.status();
    snapshot->patterns = std::move(patterns).value();
    for (const core::FrequentItemset& fi : snapshot->patterns->itemsets) {
      snapshot->support_index.emplace(fi.items, fi.support);
    }
  }

  if (coloc_info.has_value()) {
    auto colocations = coloc_reader->ReadColocationSet(*coloc_info);
    if (!colocations.ok()) return colocations.status();
    snapshot->colocations = std::move(colocations).value();
  }

  if (txdb_info.has_value()) {
    // Zero-copy by design: the view's columns point into the reader's
    // mapping. Refused only on big-endian hosts (docs/STORAGE.md); the
    // `predicates` query then reports Unsupported rather than serving a
    // slow copy nobody asked for.
    auto view = txdb_reader->ViewTable(*txdb_info);
    if (view.ok()) {
      snapshot->txdb = std::move(view).value();
      for (size_t row = 0; row < snapshot->txdb->row_names.size(); ++row) {
        snapshot->row_index.emplace(std::string(snapshot->txdb->row_names[row]),
                                    row);
      }
    } else if (view.status().code() != StatusCode::kUnsupported) {
      return view.status();
    }
  }

  // Warm every lazy per-layer cache now, single-threaded: after this the
  // snapshot is immutable and its const interface is thread-safe.
  for (const feature::Layer& layer : snapshot->layers) {
    layer.Index();
    layer.Prepared();
  }

  obs::MetricsRegistry::Global()
      .GetGauge("serve.snapshot.generation")
      .Set(static_cast<double>(generation));
  return std::shared_ptr<const ServingSnapshot>(std::move(snapshot));
}

Status SnapshotHolder::Load(const std::vector<std::string>& paths) {
  // One load at a time (a SIGHUP racing an admin `reload` must not skew
  // generations), but built outside `mu_`: loads are slow (mmap, CRC,
  // index warming) and Current() must stay cheap for query threads.
  std::lock_guard<std::mutex> load_lock(load_mu_);
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = generations_ + 1;
  }
  auto loaded = ServingSnapshot::Load(paths, generation);
  if (!loaded.ok()) return loaded.status();
  {
    std::lock_guard<std::mutex> lock(mu_);
    generations_ = generation;
    paths_ = paths;
    current_ = std::move(loaded).value();
  }
  obs::MetricsRegistry::Global().GetCounter("serve.reloads").Add();
  return Status::OK();
}

Status SnapshotHolder::Reload() {
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(mu_);
    paths = paths_;
  }
  if (paths.empty()) {
    return Status::InvalidArgument("nothing loaded yet");
  }
  return Load(paths);
}

std::shared_ptr<const ServingSnapshot> SnapshotHolder::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SnapshotHolder::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generations_;
}

}  // namespace serve
}  // namespace sfpm
