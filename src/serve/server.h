#ifndef SFPM_SERVE_SERVER_H_
#define SFPM_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/log.h"
#include "obs/timeseries.h"
#include "serve/metrics_http.h"
#include "serve/protocol.h"
#include "serve/query.h"
#include "serve/snapshot_holder.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace sfpm {
namespace serve {

/// Tuning knobs of a Server, all with serving-ready defaults.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back from `port()` — how the tests and bench find their server).
  uint16_t port = 0;
  /// Worker threads answering queries. The server owns a
  /// ThreadPool(workers + 1): slot 0 is the accept loop's never-used
  /// caller slot, so `workers` is the real query parallelism.
  size_t workers = 4;
  /// Admission bound: connections in flight (queued + executing) beyond
  /// which a new connection is told `overloaded` and closed immediately
  /// instead of queueing without limit.
  size_t max_inflight = 256;
  /// A connection idle longer than this between requests is closed.
  int read_timeout_ms = 30000;
  /// Per-frame payload ceiling; larger frames poison the connection.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Plain-HTTP telemetry port on 127.0.0.1 (GET /metrics Prometheus
  /// exposition, /healthz, /varz JSON, /tracez): -1 disables the
  /// endpoint, 0 picks an ephemeral port (read back from
  /// `metrics_port()`).
  int metrics_port = -1;
  /// Requests at/over this latency land in the bounded slow-query log
  /// (surfaced by /varz) plus one structured warn line; < 0 disables.
  int slow_query_ms = 100;
  /// Capture every Nth request's full span tree for /tracez; 0 disables
  /// sampling (the per-request tracer itself is always on).
  uint32_t trace_sample = 0;
};

/// \brief The `sfpm serve` TCP front end: accepts loopback connections,
/// decodes length-prefixed JSON frames, and answers them through a
/// QueryEngine over a SnapshotHolder.
///
/// Threading model (docs/ARCHITECTURE.md): one accept thread (spawned by
/// `Start`) polls the listen socket plus a self-pipe; each accepted
/// connection becomes one `ThreadPool::Submit` task that owns the
/// connection for its lifetime — reads frames, answers them in order,
/// closes on EOF, idle timeout, poisoned framing, or server shutdown.
/// Admission is bounded by `max_inflight`: excess connections receive one
/// `overloaded` error frame written from the accept thread and are closed
/// without ever reaching the pool.
///
/// `RequestShutdown` and `RequestReload` are async-signal-safe (an atomic
/// flag plus one self-pipe write), so the CLI points SIGINT/SIGTERM and
/// SIGHUP handlers straight at them. Reloads are applied on the accept
/// thread; queries never wait on a load (SnapshotHolder::Current is one
/// mutex-guarded pointer copy).
class Server {
 public:
  /// `holder` must outlive the server and have a snapshot loaded.
  Server(SnapshotHolder* holder, ServerOptions options);

  /// Stops and joins everything still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread. Fails without side
  /// effects (no thread, no socket) on any socket-layer error.
  Status Start();

  /// Blocks until the accept loop exits (shutdown requested).
  void Wait();

  /// Begins graceful shutdown: stop accepting, answer queued connections
  /// with `shutting_down`, let in-flight requests finish. Signal-safe.
  void RequestShutdown();

  /// Schedules a snapshot reload on the accept thread. Signal-safe.
  void RequestReload();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// The bound telemetry port; 0 when the endpoint is disabled.
  uint16_t metrics_port() const {
    return metrics_http_ != nullptr ? metrics_http_->port() : 0;
  }

  /// The slow-query ring the engine records into (tests and /varz).
  const obs::SlowQueryLog& slow_queries() const { return slow_log_; }

  /// The sampled-trace ring behind /tracez.
  const SampledTraces& sampled_traces() const { return traces_; }

  /// True once RequestShutdown was called.
  bool shutting_down() const {
    return shutdown_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Best-effort single error frame to a connection we will not serve.
  void WriteRejection(int fd, ErrorCode code, const std::string& message);

  /// The telemetry GET dispatcher (/metrics, /healthz, /varz, /tracez).
  bool HandleTelemetryPath(const std::string& path, std::string* content_type,
                           std::string* body);
  std::string VarzJson();
  std::string TracezJson();

  SnapshotHolder* holder_;
  ServerOptions options_;
  QueryEngine engine_;

  obs::SlowQueryLog slow_log_;
  SampledTraces traces_;
  std::unique_ptr<obs::RingSampler> sampler_;
  std::unique_ptr<MetricsHttpServer> metrics_http_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< [read, write]; write end is signal-safe.
  uint16_t port_ = 0;

  std::atomic<bool> shutdown_{false};
  std::atomic<bool> reload_{false};
  std::atomic<int64_t> inflight_{0};
  Stopwatch uptime_;  ///< Restarted by Start; the `status` uptime_ms.

  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
};

}  // namespace serve
}  // namespace sfpm

#endif  // SFPM_SERVE_SERVER_H_
