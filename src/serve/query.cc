#include "serve/query.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geom/point.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qsr/topological.h"
#include "relate/intersection_matrix.h"
#include "util/stopwatch.h"

namespace sfpm {
namespace serve {

namespace {

using obs::json::Value;
using obs::json::Writer;

/// Caps every `limit` parameter: a single response frame stays well
/// under the default frame ceiling even at maximum fan-out.
constexpr uint64_t kMaxLimit = 10000;

Result<double> NumberParam(const Value& body, const char* key,
                           double fallback) {
  const Value* v = body.Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a number");
  }
  return v->number;
}

Result<uint64_t> CountParam(const Value& body, const char* key,
                            uint64_t fallback, uint64_t max) {
  SFPM_ASSIGN_OR_RETURN(const double raw,
                        NumberParam(body, key, static_cast<double>(fallback)));
  if (raw < 0 || raw != std::floor(raw) || raw > static_cast<double>(max)) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be an integer in [0, " +
                                   std::to_string(max) + "]");
  }
  return static_cast<uint64_t>(raw);
}

Result<bool> BoolParam(const Value& body, const char* key, bool fallback) {
  const Value* v = body.Find(key);
  if (v == nullptr) return fallback;
  if (v->type != Value::Type::kBool) {
    return Status::InvalidArgument(std::string("'") + key +
                                   "' must be a boolean");
  }
  return v->boolean;
}

ErrorCode CodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kNotFound:
      return ErrorCode::kNotFound;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnsupported:
      return ErrorCode::kBadRequest;
    default:
      return ErrorCode::kInternal;
  }
}

/// Itemset members rendered as their labels.
void WriteItems(const core::Itemset& items,
                const std::vector<std::string>& labels, Writer& w) {
  w.BeginArray();
  for (const core::ItemId id : items.items()) w.String(labels[id]);
  w.EndArray();
}

Result<std::string> QueryPatterns(const ServingSnapshot& snap,
                                  const Value& body) {
  if (!snap.patterns.has_value()) {
    return Status::NotFound("no pattern-set section in the served snapshots");
  }
  const store::PatternSet& ps = *snap.patterns;

  SFPM_ASSIGN_OR_RETURN(const uint64_t limit,
                        CountParam(body, "limit", 100, kMaxLimit));
  SFPM_ASSIGN_OR_RETURN(const uint64_t min_support,
                        CountParam(body, "min_support", 0, UINT32_MAX));
  SFPM_ASSIGN_OR_RETURN(const uint64_t min_size,
                        CountParam(body, "min_size", 0, 1024));
  SFPM_ASSIGN_OR_RETURN(const uint64_t max_size,
                        CountParam(body, "max_size", 1024, 1024));

  // `contains`: labels that must all be members.
  std::vector<core::ItemId> required;
  if (const Value* contains = body.Find("contains")) {
    if (!contains->is_array()) {
      return Status::InvalidArgument("'contains' must be an array of labels");
    }
    for (const Value& entry : contains->array) {
      if (!entry.is_string()) {
        return Status::InvalidArgument("'contains' entries must be strings");
      }
      const auto it =
          std::find(ps.labels.begin(), ps.labels.end(), entry.string);
      if (it == ps.labels.end()) {
        return Status::NotFound("unknown item label '" + entry.string + "'");
      }
      required.push_back(
          static_cast<core::ItemId>(it - ps.labels.begin()));
    }
  }

  Writer w;
  w.BeginObject();
  w.Key("min_support").Number(ps.min_support);
  w.Key("algorithm").String(ps.algorithm);
  w.Key("filter").String(ps.filter);
  uint64_t total = 0;
  std::string itemsets;
  {
    Writer rows;
    rows.BeginArray();
    for (const core::FrequentItemset& fi : ps.itemsets) {
      if (fi.support < min_support) continue;
      if (fi.items.size() < min_size || fi.items.size() > max_size) continue;
      bool has_all = true;
      for (const core::ItemId id : required) {
        if (!fi.items.Contains(id)) {
          has_all = false;
          break;
        }
      }
      if (!has_all) continue;
      ++total;
      if (total > limit) continue;  // Keep counting for `total`.
      rows.BeginObject();
      rows.Key("support").Number(static_cast<uint64_t>(fi.support));
      rows.Key("items");
      WriteItems(fi.items, ps.labels, rows);
      rows.EndObject();
    }
    rows.EndArray();
    itemsets = rows.str();
  }
  w.Key("total").Number(total);
  w.Key("returned").Number(std::min<uint64_t>(total, limit));
  w.EndObject();
  // Splice the rows in (the Writer cannot embed raw JSON).
  std::string out = w.str();
  out.insert(out.size() - 1, ",\"itemsets\":" + itemsets);
  return out;
}

Result<std::string> QueryColocations(const ServingSnapshot& snap,
                                     const Value& body) {
  if (!snap.colocations.has_value()) {
    return Status::NotFound(
        "no co-location section in the served snapshots");
  }
  const store::ColocationSet& cs = *snap.colocations;

  SFPM_ASSIGN_OR_RETURN(const uint64_t limit,
                        CountParam(body, "limit", 100, kMaxLimit));
  SFPM_ASSIGN_OR_RETURN(const double min_prevalence,
                        NumberParam(body, "min_prevalence", 0.0));
  SFPM_ASSIGN_OR_RETURN(const uint64_t min_size,
                        CountParam(body, "min_size", 0, 1024));
  SFPM_ASSIGN_OR_RETURN(const uint64_t max_size,
                        CountParam(body, "max_size", 1024, 1024));
  if (min_prevalence < 0.0 || min_prevalence > 1.0) {
    return Status::InvalidArgument("'min_prevalence' must be in [0, 1]");
  }

  // `contains`: feature types that must all be members.
  std::vector<uint32_t> required;
  if (const Value* contains = body.Find("contains")) {
    if (!contains->is_array()) {
      return Status::InvalidArgument(
          "'contains' must be an array of feature types");
    }
    for (const Value& entry : contains->array) {
      if (!entry.is_string()) {
        return Status::InvalidArgument("'contains' entries must be strings");
      }
      const auto it = std::find(cs.type_names.begin(), cs.type_names.end(),
                                entry.string);
      if (it == cs.type_names.end()) {
        return Status::NotFound("unknown feature type '" + entry.string +
                                "'");
      }
      required.push_back(static_cast<uint32_t>(it - cs.type_names.begin()));
    }
  }

  Writer w;
  w.BeginObject();
  w.Key("min_prevalence").Number(cs.min_prevalence);
  w.Key("distance").Number(cs.distance);
  w.Key("filter").String(cs.filter);
  uint64_t total = 0;
  std::string patterns;
  {
    Writer rows;
    rows.BeginArray();
    for (const store::ColocationSet::Pattern& p : cs.patterns) {
      if (p.participation_index + 1e-12 < min_prevalence) continue;
      if (p.types.size() < min_size || p.types.size() > max_size) continue;
      bool has_all = true;
      for (const uint32_t type : required) {
        if (std::find(p.types.begin(), p.types.end(), type) ==
            p.types.end()) {
          has_all = false;
          break;
        }
      }
      if (!has_all) continue;
      ++total;
      if (total > limit) continue;  // Keep counting for `total`.
      rows.BeginObject();
      rows.Key("types");
      rows.BeginArray();
      for (const uint32_t type : p.types) rows.String(cs.type_names[type]);
      rows.EndArray();
      rows.Key("participation_index").Number(p.participation_index);
      rows.Key("fuzzy_prevalence").Number(p.fuzzy_prevalence);
      rows.Key("rows").Number(p.rows);
      rows.EndObject();
    }
    rows.EndArray();
    patterns = rows.str();
  }
  w.Key("total").Number(total);
  w.Key("returned").Number(std::min<uint64_t>(total, limit));
  w.EndObject();
  // Splice the rows in (the Writer cannot embed raw JSON).
  std::string out = w.str();
  out.insert(out.size() - 1, ",\"patterns\":" + patterns);
  return out;
}

Result<std::string> QueryRules(const ServingSnapshot& snap,
                               const Value& body) {
  if (!snap.patterns.has_value()) {
    return Status::NotFound("no pattern-set section in the served snapshots");
  }
  const store::PatternSet& ps = *snap.patterns;

  SFPM_ASSIGN_OR_RETURN(const uint64_t limit,
                        CountParam(body, "limit", 100, kMaxLimit));
  SFPM_ASSIGN_OR_RETURN(const double min_confidence,
                        NumberParam(body, "min_confidence", 0.7));
  SFPM_ASSIGN_OR_RETURN(const uint64_t min_support,
                        CountParam(body, "min_support", 0, UINT32_MAX));
  if (min_confidence < 0.0 || min_confidence > 1.0) {
    return Status::InvalidArgument("'min_confidence' must be in [0, 1]");
  }
  const size_t num_transactions =
      snap.txdb.has_value() ? snap.txdb->num_transactions : 0;

  // Single-consequent rules from the stored itemsets: every proper
  // (k-1)-antecedent is itself frequent (anti-monotonicity), so its
  // support is in the index and confidence needs no transaction scan.
  struct Rule {
    const core::FrequentItemset* itemset;
    core::ItemId consequent;
    uint32_t antecedent_support;
    double confidence;
  };
  std::vector<Rule> rules;
  for (const core::FrequentItemset& fi : ps.itemsets) {
    if (fi.items.size() < 2 || fi.support < min_support) continue;
    for (const core::ItemId consequent : fi.items.items()) {
      const core::Itemset antecedent = fi.items.Without(consequent);
      const auto it = snap.support_index.find(antecedent);
      if (it == snap.support_index.end() || it->second == 0) continue;
      const double confidence =
          static_cast<double>(fi.support) / static_cast<double>(it->second);
      if (confidence + 1e-12 < min_confidence) continue;
      rules.push_back({&fi, consequent, it->second, confidence});
    }
  }
  std::stable_sort(rules.begin(), rules.end(),
                   [](const Rule& a, const Rule& b) {
                     if (a.confidence != b.confidence) {
                       return a.confidence > b.confidence;
                     }
                     return a.itemset->support > b.itemset->support;
                   });

  Writer w;
  w.BeginObject();
  w.Key("min_confidence").Number(min_confidence);
  w.Key("total").Number(static_cast<uint64_t>(rules.size()));
  w.Key("returned").Number(
      std::min<uint64_t>(rules.size(), limit));
  w.Key("rules");
  w.BeginArray();
  for (size_t i = 0; i < rules.size() && i < limit; ++i) {
    const Rule& rule = rules[i];
    w.BeginObject();
    w.Key("antecedent");
    WriteItems(rule.itemset->items.Without(rule.consequent), ps.labels, w);
    w.Key("consequent").String(ps.labels[rule.consequent]);
    w.Key("support").Number(static_cast<uint64_t>(rule.itemset->support));
    w.Key("confidence").Number(rule.confidence);
    // Lift needs P(consequent) = supp(c) / N; N only comes from a served
    // transaction db.
    const auto single =
        snap.support_index.find(core::Itemset{rule.consequent});
    if (num_transactions > 0 && single != snap.support_index.end() &&
        single->second > 0) {
      w.Key("lift").Number(rule.confidence /
                           (static_cast<double>(single->second) /
                            static_cast<double>(num_transactions)));
    } else {
      w.Key("lift").Null();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<std::string> QueryPredicates(const ServingSnapshot& snap,
                                    const Value& body) {
  if (!snap.txdb.has_value()) {
    return Status::NotFound(
        "no transaction-db section in the served snapshots");
  }
  const store::TxDbView& view = *snap.txdb;

  size_t row = 0;
  std::string row_name;
  if (const Value* name = body.Find("row")) {
    if (!name->is_string()) {
      return Status::InvalidArgument("'row' must be a string");
    }
    const auto it = snap.row_index.find(name->string);
    if (it == snap.row_index.end()) {
      return Status::NotFound("unknown row '" + name->string + "'");
    }
    row = it->second;
    row_name = name->string;
  } else {
    SFPM_ASSIGN_OR_RETURN(
        const uint64_t index,
        CountParam(body, "transaction", UINT64_MAX, UINT64_MAX));
    if (index == UINT64_MAX) {
      return Status::InvalidArgument("need 'row' (name) or 'transaction'");
    }
    if (index >= view.num_transactions) {
      return Status::NotFound("transaction " + std::to_string(index) +
                              " out of range (have " +
                              std::to_string(view.num_transactions) + ")");
    }
    row = static_cast<size_t>(index);
    if (row < view.row_names.size()) {
      row_name = std::string(view.row_names[row]);
    }
  }

  Writer w;
  w.BeginObject();
  w.Key("transaction").Number(static_cast<uint64_t>(row));
  if (!row_name.empty()) w.Key("row").String(row_name);
  w.Key("items");
  w.BeginArray();
  // Reads go straight against the mapped bitmap columns (zero copy).
  for (size_t item = 0; item < view.num_items; ++item) {
    if (snap.TestBit(item, row)) w.String(std::string(view.labels[item]));
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<const feature::Layer*> FindLayer(const ServingSnapshot& snap,
                                        const Value& body, const char* key) {
  const Value* name = body.Find(key);
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument(std::string("need a string '") + key +
                                   "' (layer feature type)");
  }
  const auto it = snap.layer_index.find(name->string);
  if (it == snap.layer_index.end()) {
    return Status::NotFound("unknown layer '" + name->string + "'");
  }
  return &snap.layers[it->second];
}

Result<std::string> QueryWindow(const ServingSnapshot& snap,
                                const Value& body) {
  SFPM_ASSIGN_OR_RETURN(const feature::Layer* layer,
                        FindLayer(snap, body, "layer"));
  const Value* bounds = body.Find("bounds");
  if (bounds == nullptr || !bounds->is_array() || bounds->array.size() != 4 ||
      !std::all_of(bounds->array.begin(), bounds->array.end(),
                   [](const Value& v) { return v.is_number(); })) {
    return Status::InvalidArgument(
        "'bounds' must be [min_x, min_y, max_x, max_y]");
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t limit,
                        CountParam(body, "limit", 1000, kMaxLimit));
  SFPM_ASSIGN_OR_RETURN(const bool with_wkt, BoolParam(body, "wkt", false));

  const geom::Envelope window(bounds->array[0].number,
                              bounds->array[1].number,
                              bounds->array[2].number,
                              bounds->array[3].number);
  std::vector<uint64_t> ids;
  layer->Index().Query(window, &ids);
  std::sort(ids.begin(), ids.end());

  Writer w;
  w.BeginObject();
  w.Key("layer").String(layer->feature_type());
  w.Key("total").Number(static_cast<uint64_t>(ids.size()));
  w.Key("returned").Number(std::min<uint64_t>(ids.size(), limit));
  w.Key("features");
  w.BeginArray();
  for (size_t i = 0; i < ids.size() && i < limit; ++i) {
    const feature::Feature& f = layer->at(static_cast<size_t>(ids[i]));
    w.BeginObject();
    w.Key("id").Number(f.id());
    w.Key("attributes");
    w.BeginObject();
    for (const auto& [key, value] : f.attributes()) {
      w.Key(key).String(value);
    }
    w.EndObject();
    if (with_wkt) w.Key("wkt").String(f.geometry().ToWkt());
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<std::string> QueryRelate(const ServingSnapshot& snap,
                                const Value& body) {
  SFPM_ASSIGN_OR_RETURN(const feature::Layer* layer_a,
                        FindLayer(snap, body, "layer_a"));
  SFPM_ASSIGN_OR_RETURN(const feature::Layer* layer_b,
                        FindLayer(snap, body, "layer_b"));
  SFPM_ASSIGN_OR_RETURN(const uint64_t id_a,
                        CountParam(body, "id_a", UINT64_MAX, UINT64_MAX));
  SFPM_ASSIGN_OR_RETURN(const uint64_t id_b,
                        CountParam(body, "id_b", UINT64_MAX, UINT64_MAX));
  if (id_a >= layer_a->Size()) {
    return Status::NotFound("id_a out of range for layer '" +
                            layer_a->feature_type() + "'");
  }
  if (id_b >= layer_b->Size()) {
    return Status::NotFound("id_b out of range for layer '" +
                            layer_b->feature_type() + "'");
  }

  // Prepared-vs-prepared: both sides' caches were warmed at load.
  const relate::IntersectionMatrix matrix =
      layer_a->Prepared()[id_a].Relate(layer_b->Prepared()[id_b]);
  const geom::Geometry& geom_a = layer_a->at(id_a).geometry();
  const geom::Geometry& geom_b = layer_b->at(id_b).geometry();
  const qsr::TopologicalRelation relation = qsr::ClassifyMatrix(
      matrix, geom_a.Dimension(), geom_b.Dimension());

  Writer w;
  w.BeginObject();
  w.Key("layer_a").String(layer_a->feature_type());
  w.Key("id_a").Number(id_a);
  w.Key("layer_b").String(layer_b->feature_type());
  w.Key("id_b").Number(id_b);
  w.Key("matrix").String(matrix.ToString());
  w.Key("relation").String(qsr::TopologicalRelationName(relation));
  w.Key("converse")
      .String(qsr::TopologicalRelationName(qsr::Converse(relation)));
  w.EndObject();
  return w.str();
}

}  // namespace

Result<std::string> QueryEngine::Stat(const ServingSnapshot& snap) const {
  Writer w;
  w.BeginObject();
  w.Key("generation").Number(snap.generation);
  w.Key("tool_version").String(snap.tool_version);
  w.Key("paths");
  w.BeginArray();
  for (const std::string& path : snap.paths) w.String(path);
  w.EndArray();
  w.Key("sections");
  w.BeginArray();
  for (const ServingSnapshot::SectionSummary& s : snap.sections) {
    w.BeginObject();
    w.Key("file").String(s.file);
    w.Key("type").String(s.type);
    w.Key("name").String(s.name);
    w.Key("bytes").Number(s.length);
    w.EndObject();
  }
  w.EndArray();
  w.Key("layers");
  w.BeginArray();
  for (const feature::Layer& layer : snap.layers) {
    w.BeginObject();
    w.Key("type").String(layer.feature_type());
    w.Key("features").Number(static_cast<uint64_t>(layer.Size()));
    w.EndObject();
  }
  w.EndArray();
  w.Key("patterns");
  if (snap.patterns.has_value()) {
    w.BeginObject();
    w.Key("itemsets").Number(
        static_cast<uint64_t>(snap.patterns->itemsets.size()));
    w.Key("min_support").Number(snap.patterns->min_support);
    w.Key("algorithm").String(snap.patterns->algorithm);
    w.Key("filter").String(snap.patterns->filter);
    w.EndObject();
  } else {
    w.Null();
  }
  w.Key("colocations");
  if (snap.colocations.has_value()) {
    w.BeginObject();
    w.Key("patterns").Number(
        static_cast<uint64_t>(snap.colocations->patterns.size()));
    w.Key("min_prevalence").Number(snap.colocations->min_prevalence);
    w.Key("distance").Number(snap.colocations->distance);
    w.Key("filter").String(snap.colocations->filter);
    w.EndObject();
  } else {
    w.Null();
  }
  w.Key("transactions");
  if (snap.txdb.has_value()) {
    w.Number(static_cast<uint64_t>(snap.txdb->num_transactions));
  } else {
    w.Null();
  }
  if (status_callback_) status_callback_(w);

  // The serve-prefixed slice of the global registry, with per-type
  // latency quantiles estimated from the histogram buckets.
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().Snapshot();
  w.Key("metrics");
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind("serve.", 0) == 0) w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : metrics.gauges) {
    if (name.rfind("serve.", 0) == 0) w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("latency_ms");
  w.BeginObject();
  const std::string prefix = "serve.latency_ms.";
  for (const auto& [name, data] : metrics.histograms) {
    if (name.rfind(prefix, 0) != 0) continue;
    w.Key(name.substr(prefix.size()));
    w.BeginObject();
    w.Key("count").Number(data.count);
    w.Key("mean").Number(data.count > 0
                             ? data.sum / static_cast<double>(data.count)
                             : 0.0);
    w.Key("p50").Number(data.Quantile(0.5));
    w.Key("p99").Number(data.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  w.EndObject();
  return w.str();
}

const std::vector<double>& LatencyBoundsMs() {
  static const std::vector<double> bounds = {0.05, 0.1,  0.25, 0.5,  1.0,
                                             2.5,  5.0,  10.0, 25.0, 50.0,
                                             100.0, 250.0};
  return bounds;
}

const std::string& QueryTypeLabel(const std::string& query) {
  static const std::vector<std::string> known = {
      "patterns", "colocations", "rules",  "predicates", "window",
      "relate",   "status",      "reload", "shutdown"};
  for (const std::string& type : known) {
    if (type == query) return type;
  }
  static const std::string other = "other";
  return other;
}

void SampledTraces::Record(Entry entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SampledTraces::Entry> SampledTraces::Entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

uint64_t SampledTraces::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

HandleResult QueryEngine::Handle(const std::string& payload) const {
  Stopwatch watch;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("serve.queries").Add();

  // Server-assigned request identity, echoed as `rid` in the response
  // envelope and carried by every slow-query/trace record, so one id
  // joins a client-side observation to the server-side capture.
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string rid = "r" + std::to_string(seq);

  // Per-request tracer: always on, detached from any registry so a span
  // costs two steady-clock reads, never a metrics snapshot.
  obs::Tracer tracer;
  tracer.set_enabled(true);

  HandleResult result;
  std::string type = "invalid";
  {
    auto request_span = tracer.StartSpan("request");
    auto parsed = [&] {
      auto parse_span = tracer.StartSpan("parse");
      return ParseRequest(payload);
    }();
    if (!parsed.ok()) {
      registry.GetCounter("serve.errors").Add();
      result.response = ErrorResponse("null", ErrorCode::kBadRequest,
                                      parsed.status().message(), rid);
    } else {
      type = QueryTypeLabel(parsed.value().query);
      const std::string id = RequestIdJson(parsed.value().body);
      result.response =
          Dispatch(parsed.value(), id, rid, &tracer, &result.shutdown);
    }
  }

  const double latency_ms = watch.ElapsedMillis();
  registry.GetCounter("serve.queries." + type).Add();
  registry.GetHistogram("serve.latency_ms." + type, LatencyBoundsMs())
      .Observe(latency_ms);

  const bool slow = telemetry_.slow_query_ms >= 0 &&
                    latency_ms >= static_cast<double>(telemetry_.slow_query_ms);
  const bool sampled =
      telemetry_.trace_sample > 0 && telemetry_.traces != nullptr &&
      seq % telemetry_.trace_sample == 0;
  if (slow || sampled) {
    const uint64_t generation = holder_ != nullptr ? holder_->generation() : 0;
    if (slow) {
      if (telemetry_.slow_log != nullptr) {
        obs::SlowQueryEntry entry;
        entry.seq = seq;
        entry.request_id = rid;
        entry.type = type;
        entry.latency_ms = latency_ms;
        entry.generation = generation;
        entry.spans = tracer.ToTreeString();
        telemetry_.slow_log->Record(std::move(entry));
      }
      if (telemetry_.logger != nullptr) {
        telemetry_.logger->Warn(
            "slow query",
            {{"rid", rid},
             {"type", type},
             {"latency_ms", latency_ms},
             {"generation", generation},
             {"threshold_ms", telemetry_.slow_query_ms}});
      }
      registry.GetCounter("serve.slow_queries").Add();
    }
    if (sampled) {
      SampledTraces::Entry entry;
      entry.seq = seq;
      entry.request_id = rid;
      entry.type = type;
      entry.latency_ms = latency_ms;
      entry.spans = tracer.spans();
      telemetry_.traces->Record(std::move(entry));
    }
  }
  return result;
}

std::string QueryEngine::Dispatch(const Request& request,
                                  const std::string& id,
                                  const std::string& rid,
                                  obs::Tracer* tracer,
                                  bool* shutdown) const {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  auto span = obs::Tracer::Global().StartSpan("serve/query/" + request.query);
  // Mirror the phase under the per-request tracer with the bounded type
  // label: this is the tree the slow-query log and /tracez render.
  auto request_phase =
      tracer->StartSpan("query/" + QueryTypeLabel(request.query));

  // Admin commands act on the holder, not a snapshot generation.
  if (request.query == "reload") {
    std::vector<std::string> paths;
    if (const Value* param = request.body.Find("paths")) {
      if (!param->is_array() || param->array.empty()) {
        return ErrorResponse(id, ErrorCode::kBadRequest,
                             "'paths' must be a non-empty array", rid);
      }
      for (const Value& entry : param->array) {
        if (!entry.is_string()) {
          return ErrorResponse(id, ErrorCode::kBadRequest,
                               "'paths' entries must be strings", rid);
        }
        paths.push_back(entry.string);
      }
    }
    const Status status =
        paths.empty() ? holder_->Reload() : holder_->Load(paths);
    if (!status.ok()) {
      registry.GetCounter("serve.errors").Add();
      return ErrorResponse(id, CodeFor(status), status.message(), rid);
    }
    Writer w;
    w.BeginObject();
    w.Key("generation").Number(holder_->generation());
    w.EndObject();
    return OkResponse(id, w.str(), rid);
  }
  if (request.query == "shutdown") {
    *shutdown = true;
    return OkResponse(id, "{\"draining\":true}", rid);
  }

  const std::shared_ptr<const ServingSnapshot> snap = holder_->Current();
  if (snap == nullptr) {
    registry.GetCounter("serve.errors").Add();
    return ErrorResponse(id, ErrorCode::kInternal, "no snapshot loaded", rid);
  }

  Result<std::string> outcome = [&]() -> Result<std::string> {
    if (request.query == "patterns") return QueryPatterns(*snap, request.body);
    if (request.query == "colocations") {
      return QueryColocations(*snap, request.body);
    }
    if (request.query == "rules") return QueryRules(*snap, request.body);
    if (request.query == "predicates") {
      return QueryPredicates(*snap, request.body);
    }
    if (request.query == "window") return QueryWindow(*snap, request.body);
    if (request.query == "relate") return QueryRelate(*snap, request.body);
    if (request.query == "status") return Stat(*snap);
    return Status::NotFound("");  // Sentinel, rewritten below.
  }();

  if (!outcome.ok()) {
    registry.GetCounter("serve.errors").Add();
    if (outcome.status().message().empty()) {
      return ErrorResponse(id, ErrorCode::kUnknownQuery,
                           "unknown query '" + request.query + "'", rid);
    }
    return ErrorResponse(id, CodeFor(outcome.status()),
                         outcome.status().message(), rid);
  }
  return OkResponse(id, outcome.value(), rid);
}

}  // namespace serve
}  // namespace sfpm
