#ifndef SFPM_SERVE_QUERY_H_
#define SFPM_SERVE_QUERY_H_

#include <functional>
#include <string>

#include "obs/json.h"
#include "serve/protocol.h"
#include "serve/snapshot_holder.h"

namespace sfpm {
namespace serve {

/// \brief Outcome of handling one request payload: the response JSON
/// (always present — every failure becomes an error envelope) plus the
/// admin actions the transport must act on after writing the response.
struct HandleResult {
  std::string response;
  bool shutdown = false;  ///< The request was an accepted `shutdown`.
};

/// \brief Stateless-per-request query dispatcher over a SnapshotHolder.
/// One engine serves every connection; each request grabs the holder's
/// current snapshot once and works against that generation end to end,
/// so a concurrent hot swap never mixes generations within one request.
///
/// Publishes per-request instruments to the global registry:
/// `serve.queries`, `serve.queries.<type>`, `serve.errors`, and the
/// per-type latency histogram `serve.latency_ms.<type>`
/// (docs/OBSERVABILITY.md). Thread-safe; holds no per-request state.
class QueryEngine {
 public:
  explicit QueryEngine(SnapshotHolder* holder) : holder_(holder) {}

  /// Extra `status` members supplied by the transport (uptime, in-flight
  /// connections, worker count). Written inside the status result object.
  void set_status_callback(
      std::function<void(obs::json::Writer&)> callback) {
    status_callback_ = std::move(callback);
  }

  /// Parses and answers one request payload (the bytes of one frame).
  HandleResult Handle(const std::string& payload) const;

 private:
  std::string Dispatch(const Request& request, const std::string& id,
                       bool* shutdown) const;

  /// The `status` query: snapshot inventory + `serve.*` instruments.
  Result<std::string> Stat(const ServingSnapshot& snap) const;

  SnapshotHolder* holder_;
  std::function<void(obs::json::Writer&)> status_callback_;
};

/// Nearest-upper-bound quantile estimate over histogram buckets, q in
/// [0, 1]; the value reported as p50/p99 by `status` and bench_serve.
/// Returns the bound of the bucket where the q-th observation falls (the
/// last finite bound when it falls in the overflow bucket), 0 when empty.
double HistogramQuantile(const obs::HistogramData& data, double q);

/// The latency bucket bounds (milliseconds) of `serve.latency_ms.*`.
const std::vector<double>& LatencyBoundsMs();

}  // namespace serve
}  // namespace sfpm

#endif  // SFPM_SERVE_QUERY_H_
