#ifndef SFPM_SERVE_QUERY_H_
#define SFPM_SERVE_QUERY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "serve/snapshot_holder.h"

namespace sfpm {
namespace serve {

/// \brief Outcome of handling one request payload: the response JSON
/// (always present — every failure becomes an error envelope) plus the
/// admin actions the transport must act on after writing the response.
struct HandleResult {
  std::string response;
  bool shutdown = false;  ///< The request was an accepted `shutdown`.
};

/// \brief Bounded ring of sampled per-request span captures — the
/// `/tracez` payload. One entry is the complete span tree of one request
/// picked by `--trace-sample=N` (every Nth). Thread-safe.
class SampledTraces {
 public:
  struct Entry {
    uint64_t seq = 0;
    std::string request_id;  ///< "r<seq>".
    std::string type;        ///< Query type.
    double latency_ms = 0.0;
    std::vector<obs::TraceSpan> spans;
  };

  explicit SampledTraces(size_t capacity = 32) : capacity_(capacity) {}

  void Record(Entry entry);

  /// The retained entries, oldest first.
  std::vector<Entry> Entries() const;

  /// All-time count of captured requests.
  uint64_t total() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t total_ = 0;
  std::deque<Entry> entries_;
};

/// \brief Continuous-telemetry wiring of a QueryEngine, owned by the
/// transport (Server). All pointers optional and must outlive the
/// engine when set.
struct EngineTelemetry {
  /// Latency at/over which a request lands in `slow_log` plus a warn
  /// line on `logger`; < 0 disables slow-query capture.
  int slow_query_ms = -1;
  /// Capture every Nth request's span tree into `traces`; 0 disables.
  uint32_t trace_sample = 0;
  obs::SlowQueryLog* slow_log = nullptr;
  SampledTraces* traces = nullptr;
  obs::Logger* logger = nullptr;
};

/// \brief Stateless-per-request query dispatcher over a SnapshotHolder.
/// One engine serves every connection; each request grabs the holder's
/// current snapshot once and works against that generation end to end,
/// so a concurrent hot swap never mixes generations within one request.
///
/// Every request gets a monotonic server-assigned id ("r<seq>", echoed
/// as `rid` in ok and error envelopes) and runs under its own
/// registry-free `Tracer` — always on, each span costing two steady-
/// clock reads — whose tree feeds the slow-query log and the sampled
/// `/tracez` ring (EngineTelemetry).
///
/// Publishes per-request instruments to the global registry:
/// `serve.queries`, `serve.queries.<type>`, `serve.errors`, and the
/// per-type latency histogram `serve.latency_ms.<type>`
/// (docs/OBSERVABILITY.md). The <type> label is cardinality-bounded:
/// unknown query names count under `other`, unparsable requests under
/// `invalid`. Thread-safe; holds no per-request state.
class QueryEngine {
 public:
  explicit QueryEngine(SnapshotHolder* holder) : holder_(holder) {}

  /// Extra `status` members supplied by the transport (uptime, in-flight
  /// connections, worker count). Written inside the status result object.
  void set_status_callback(
      std::function<void(obs::json::Writer&)> callback) {
    status_callback_ = std::move(callback);
  }

  /// Installs the slow-query/trace-sampling sinks. Not thread-safe
  /// against in-flight Handle calls; set before serving starts.
  void set_telemetry(EngineTelemetry telemetry) {
    telemetry_ = telemetry;
  }

  /// Parses and answers one request payload (the bytes of one frame).
  HandleResult Handle(const std::string& payload) const;

 private:
  std::string Dispatch(const Request& request, const std::string& id,
                       const std::string& rid, obs::Tracer* tracer,
                       bool* shutdown) const;

  /// The `status` query: snapshot inventory + `serve.*` instruments.
  Result<std::string> Stat(const ServingSnapshot& snap) const;

  SnapshotHolder* holder_;
  std::function<void(obs::json::Writer&)> status_callback_;
  EngineTelemetry telemetry_;
  /// Request sequence; source of the per-request "r<seq>" ids.
  mutable std::atomic<uint64_t> next_seq_{0};
};

/// The metric instrument label of a query type: the type itself for the
/// known queries, "other" for anything else — bounds the cardinality of
/// `serve.queries.<type>` / `serve.latency_ms.<type>` against arbitrary
/// client-supplied `q` strings.
const std::string& QueryTypeLabel(const std::string& query);

/// The latency bucket bounds (milliseconds) of `serve.latency_ms.*`.
const std::vector<double>& LatencyBoundsMs();

}  // namespace serve
}  // namespace sfpm

#endif  // SFPM_SERVE_QUERY_H_
