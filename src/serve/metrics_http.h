#ifndef SFPM_SERVE_METRICS_HTTP_H_
#define SFPM_SERVE_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "util/status.h"

namespace sfpm {
namespace serve {

/// \brief Minimal plain-HTTP/1.1 GET server for the telemetry endpoints
/// (`/metrics`, `/healthz`, `/varz`, `/tracez`) of `sfpm serve
/// --metrics-port` (docs/SERVE.md). Deliberately not the query protocol:
/// scrapers speak plain HTTP and must never contend with query traffic,
/// so this listens on its own loopback port and serves one request per
/// connection (`Connection: close`) on its own thread.
///
/// Not a general web server: requests are answered serially on the
/// accept thread (a scrape is cheap and rare next to query traffic),
/// headers are read with a bound and a timeout so a stuck scraper cannot
/// wedge the thread, and anything but a well-formed GET gets a 4xx/405.
class MetricsHttpServer {
 public:
  /// Answers one GET: returns true and fills `content_type` + `body`
  /// when `path` is served, false for a 404. Called on the server's
  /// accept thread; must be thread-safe against the serving threads it
  /// reads from.
  using Handler = std::function<bool(const std::string& path,
                                     std::string* content_type,
                                     std::string* body)>;

  struct Options {
    /// Port on 127.0.0.1; 0 picks an ephemeral port (read via port()).
    uint16_t port = 0;
    /// Per-request header read budget.
    int read_timeout_ms = 2000;
  };

  MetricsHttpServer(Options options, Handler handler);

  /// Stops and joins.
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens, spawns the accept thread. Fails without side
  /// effects on any socket error (port taken, ...).
  Status Start();

  /// Signals the accept thread and joins it (idempotent).
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeClient(int fd);

  Options options_;
  Handler handler_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< Self-pipe; [read, write].
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
};

}  // namespace serve
}  // namespace sfpm

#endif  // SFPM_SERVE_METRICS_HTTP_H_
