#ifndef SFPM_SERVE_PROTOCOL_H_
#define SFPM_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "util/status.h"

namespace sfpm {
namespace serve {

/// \brief Wire framing of the `sfpm serve` protocol (docs/SERVE.md):
/// every message, in both directions, is
///
///     u32 length (little-endian)  +  `length` bytes of UTF-8 JSON
///
/// A frame longer than the server's limit is rejected *before* any
/// payload byte is buffered (the decoder sees the length prefix first),
/// so an oversized request costs four bytes of memory, not `length`.

/// Default and hard ceiling on a frame's JSON payload. The server option
/// may lower the default but never exceed the ceiling.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;  // 1 MiB
inline constexpr uint32_t kHardMaxFrameBytes = 1u << 26;     // 64 MiB

/// Frames `payload` (the JSON text) for the wire.
std::string EncodeFrame(std::string_view payload);

/// \brief Incremental frame decoder: feed it raw socket bytes, take out
/// complete JSON payloads. One decoder per connection; not thread-safe.
///
/// The decoder is resilient to arbitrary chunking (a frame may arrive
/// one byte at a time or many frames in one read) and fails closed: an
/// oversized declared length poisons the decoder — framing is lost, the
/// connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(uint32_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes to the internal buffer.
  void Feed(std::string_view bytes);

  /// Extracts the next complete payload. Returns:
  ///  * OK + payload when a full frame was buffered;
  ///  * NotFound when more bytes are needed (not an error);
  ///  * InvalidArgument when the declared length exceeds the limit or is
  ///    zero — the decoder is then poisoned and Next keeps failing.
  Result<std::string> Next();

  /// True after a framing violation; the connection is unrecoverable.
  bool poisoned() const { return poisoned_; }

  /// Bytes currently buffered (tests and admission accounting).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  uint32_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  ///< Prefix of buffer_ already handed out.
  bool poisoned_ = false;
};

/// \brief Stable protocol error codes (the `error.code` response field).
/// docs/SERVE.md defines one retry/not-retry semantic per code.
enum class ErrorCode {
  kBadFrame,      ///< Length prefix violated framing (zero/oversized).
  kBadRequest,    ///< JSON unparsable or not a valid query object.
  kUnknownQuery,  ///< `q` names no known query type.
  kNotFound,      ///< A named layer/feature/row/section does not exist.
  kOverloaded,    ///< Admission control rejected the connection.
  kShuttingDown,  ///< Server is draining; no new requests accepted.
  kInternal,      ///< Unexpected server-side failure.
};

/// Stable wire spelling ("bad_frame", "overloaded", ...).
const char* ErrorCodeName(ErrorCode code);

/// \brief One parsed request: the query type plus the parsed JSON body
/// (for parameter access) and the raw `id` member, echoed verbatim into
/// the response so clients can pipeline.
struct Request {
  std::string query;      ///< Value of the required `q` member.
  obs::json::Value body;  ///< The whole request object.
};

/// Parses a request payload. Requires a JSON object with a string `q`.
Result<Request> ParseRequest(const std::string& payload);

/// \brief Renders the `{"id": ..., "rid": ..., "ok": true, "result": ...}`
/// envelope. `id_json` is the request's `id` member re-serialized (or
/// "null"), and `result_json` must be a complete JSON value.
/// `request_id` is the server-assigned per-request id ("r<seq>"); when
/// empty the `rid` member is omitted — transport-level rejections
/// (bad_frame, overloaded, shutting_down) never reached request
/// admission, so they have no id to echo.
std::string OkResponse(const std::string& id_json,
                       const std::string& result_json,
                       const std::string& request_id = "");

/// Renders the `{"id": ..., "rid": ..., "ok": false, "error": {...}}`
/// envelope; `request_id` as in OkResponse.
std::string ErrorResponse(const std::string& id_json, ErrorCode code,
                          const std::string& message,
                          const std::string& request_id = "");

/// Re-serializes a parsed JSON value (the `id` echo and test helpers).
std::string ValueToJson(const obs::json::Value& value);

/// The request's `id` member re-serialized, or "null" when absent.
std::string RequestIdJson(const obs::json::Value& body);

}  // namespace serve
}  // namespace sfpm

#endif  // SFPM_SERVE_PROTOCOL_H_
