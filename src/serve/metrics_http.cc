#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace sfpm {
namespace serve {

namespace {

/// Header bytes we will buffer before calling the request malformed; a
/// scrape request line is tens of bytes.
constexpr size_t kMaxHeaderBytes = 8192;

/// Upper bound on one blocking recv so Stop() is noticed promptly.
constexpr int kRecvSliceMs = 200;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(int status, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(Options options, Handler handler)
    : options_(options), handler_(std::move(handler)) {}

MetricsHttpServer::~MetricsHttpServer() {
  Stop();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

Status MetricsHttpServer::Start() {
  if (pipe(wake_pipe_) != 0) return Errno("pipe");
  fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    const Status status = Errno("socket");
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return status;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Loopback only, like the query port: exposure is a proxy's decision.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  Status status = Status::OK();
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    status = Errno("bind 127.0.0.1:" + std::to_string(options_.port) +
                   " (metrics)");
  } else if (listen(listen_fd_, 16) != 0) {
    status = Errno("listen (metrics)");
  } else {
    socklen_t len = sizeof(addr);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      status = Errno("getsockname (metrics)");
    }
  }
  if (!status.ok()) {
    close(listen_fd_);
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  stop_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], "x", 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
}

void MetricsHttpServer::AcceptLoop() {
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {wake_pipe_[0], POLLIN, 0};
  while (!stop_.load(std::memory_order_relaxed)) {
    fds[0].revents = fds[1].revents = 0;
    const int ready = poll(fds, 2, kRecvSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    if (!(fds[0].revents & POLLIN)) continue;
    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN: drained the backlog.
      ServeClient(fd);
      close(fd);
    }
  }
}

void MetricsHttpServer::ServeClient(int fd) {
  timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = kRecvSliceMs * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  tv.tv_sec = options_.read_timeout_ms / 1000;
  tv.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  // Read until the end of the header block, bounded in bytes and time.
  std::string header;
  Stopwatch budget;
  char buf[1024];
  while (header.find("\r\n\r\n") == std::string::npos) {
    if (header.size() > kMaxHeaderBytes ||
        budget.ElapsedMillis() >
            static_cast<double>(options_.read_timeout_ms)) {
      return;  // Malformed or stuck scraper; just drop it.
    }
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return;
    }
    header.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = header.find("\r\n");
  const std::string line = header.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                             "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Drop any query string; the endpoints take no parameters.
  const size_t question = path.find('?');
  if (question != std::string::npos) path.resize(question);

  if (method != "GET") {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                             "only GET is served\n"));
    return;
  }

  std::string content_type = "text/plain";
  std::string body;
  if (!handler_ || !handler_(path, &content_type, &body)) {
    SendAll(fd, HttpResponse(404, "Not Found", "text/plain",
                             "unknown path " + path + "\n"));
    return;
  }
  obs::MetricsRegistry::Global().GetCounter("serve.metrics.requests").Add();
  SendAll(fd, HttpResponse(200, "OK", content_type, body));
}

}  // namespace serve
}  // namespace sfpm
