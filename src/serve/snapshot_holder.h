#ifndef SFPM_SERVE_SNAPSHOT_HOLDER_H_
#define SFPM_SERVE_SNAPSHOT_HOLDER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/itemset.h"
#include "feature/feature.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/status.h"

namespace sfpm {
namespace serve {

/// \brief Everything the server needs to answer queries against one set
/// of `.sfpm` snapshots, built once at (re)load time and immutable
/// afterwards — safe for any number of concurrent reader threads.
///
/// Lifetime is the heart of zero-downtime hot swap: a query thread takes
/// one `shared_ptr<const ServingSnapshot>` at request start and holds it
/// for the request's duration. The snapshot owns its `SnapshotReader`s,
/// and the readers own the mmaps, so every zero-copy pointer (the
/// `TxDbView` columns, row-name string_views) stays valid until the last
/// in-flight query drops its reference — a `reload` never invalidates
/// memory under a running query; it only unmaps once the old generation
/// fully drains. `tests/serve/server_test.cc` pins this by holding a
/// view across a swap.
struct ServingSnapshot {
  /// Section inventory for the `status` query.
  struct SectionSummary {
    std::string file;
    std::string type;
    std::string name;
    uint64_t length = 0;
  };

  std::vector<std::string> paths;
  uint64_t generation = 0;
  std::string tool_version;  ///< From the first snapshot's header.
  std::vector<SectionSummary> sections;

  /// Keeps the mmaps alive; every view below points into these.
  std::vector<std::unique_ptr<store::SnapshotReader>> readers;

  /// Last pattern-set section across the files, if any.
  std::optional<store::PatternSet> patterns;
  /// Sorted items -> support, for rule derivation (empty without patterns).
  std::map<core::Itemset, uint32_t> support_index;

  /// Last co-location section across the files, if any (the `colocations`
  /// query). Neighbour-graph sections are inventoried but not decoded —
  /// no query walks the adjacency today.
  std::optional<store::ColocationSet> colocations;

  /// Zero-copy view of the last transaction-db section, if any; string
  /// views and column words point into the owning reader's mapping.
  std::optional<store::TxDbView> txdb;
  std::map<std::string, size_t> row_index;  ///< Row name -> transaction.

  /// Feature layers (one per feature type, later files win), with the
  /// R-tree and prepared geometries warmed at load so concurrent queries
  /// never race a lazy build (docs/ARCHITECTURE.md concurrency contract).
  std::vector<feature::Layer> layers;
  std::map<std::string, size_t> layer_index;  ///< feature_type -> index.

  /// True when transaction `row` contains `item` (requires txdb).
  bool TestBit(size_t item, size_t row) const {
    const uint64_t word = txdb->ColumnWords(item)[row / 64];
    return (word >> (row % 64)) & 1;
  }

  /// Opens and validates every path, decodes the served sections, warms
  /// the layer indexes. Fails without side effects on any error.
  static Result<std::shared_ptr<const ServingSnapshot>> Load(
      const std::vector<std::string>& paths, uint64_t generation);
};

/// \brief The server's swappable snapshot slot. `Current()` is the only
/// thing query threads touch — one mutex-guarded shared_ptr copy — and
/// `Load`/`Reload` build the replacement off to the side before the
/// pointer exchange, so a swap is atomic from any reader's point of view
/// and in-flight queries keep the generation they started with.
class SnapshotHolder {
 public:
  /// Loads `paths` and makes them current. First call or re-point.
  Status Load(const std::vector<std::string>& paths);

  /// Re-opens the current paths (SIGHUP / `reload` without arguments).
  Status Reload();

  /// The current snapshot; never null after a successful Load.
  std::shared_ptr<const ServingSnapshot> Current() const;

  /// Generation of the current snapshot (0 before the first Load).
  uint64_t generation() const;

 private:
  /// Serializes Load/Reload end to end (a SIGHUP racing an admin reload).
  std::mutex load_mu_;
  /// Guards the swappable state below; held only for pointer exchanges.
  mutable std::mutex mu_;
  std::shared_ptr<const ServingSnapshot> current_;
  std::vector<std::string> paths_;
  uint64_t generations_ = 0;
};

}  // namespace serve
}  // namespace sfpm

#endif  // SFPM_SERVE_SNAPSHOT_HOLDER_H_
