#include "serve/protocol.h"

#include <cstring>

namespace sfpm {
namespace serve {

namespace {

using obs::json::Value;

void AppendU32Le(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void WriteValue(const Value& value, obs::json::Writer* w) {
  switch (value.type) {
    case Value::Type::kNull:
      w->Null();
      break;
    case Value::Type::kBool:
      w->Bool(value.boolean);
      break;
    case Value::Type::kNumber:
      w->Number(value.number);
      break;
    case Value::Type::kString:
      w->String(value.string);
      break;
    case Value::Type::kArray:
      w->BeginArray();
      for (const Value& element : value.array) WriteValue(element, w);
      w->EndArray();
      break;
    case Value::Type::kObject:
      w->BeginObject();
      for (const auto& [key, member] : value.object) {
        w->Key(key);
        WriteValue(member, w);
      }
      w->EndObject();
      break;
  }
}

}  // namespace

std::string EncodeFrame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 4);
  AppendU32Le(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  // Compact lazily: drop the consumed prefix before it outgrows the
  // useful tail, so a long-lived connection never accumulates history.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

Result<std::string> FrameDecoder::Next() {
  if (poisoned_) {
    return Status::InvalidArgument("frame decoder poisoned by a bad frame");
  }
  if (buffer_.size() - consumed_ < 4) {
    return Status::NotFound("incomplete frame header");
  }
  const uint32_t length = ReadU32Le(buffer_.data() + consumed_);
  if (length == 0) {
    poisoned_ = true;
    return Status::InvalidArgument("zero-length frame");
  }
  if (length > max_frame_bytes_) {
    poisoned_ = true;
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) + " bytes exceeds the limit of " +
        std::to_string(max_frame_bytes_));
  }
  if (buffer_.size() - consumed_ - 4 < length) {
    return Status::NotFound("incomplete frame payload");
  }
  std::string payload = buffer_.substr(consumed_ + 4, length);
  consumed_ += 4 + static_cast<size_t>(length);
  return payload;
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame:
      return "bad_frame";
    case ErrorCode::kBadRequest:
      return "bad_request";
    case ErrorCode::kUnknownQuery:
      return "unknown_query";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kShuttingDown:
      return "shutting_down";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

Result<Request> ParseRequest(const std::string& payload) {
  auto parsed = obs::json::Parse(payload);
  if (!parsed.ok()) {
    return Status::ParseError("request is not valid JSON: " +
                              parsed.status().message());
  }
  Value body = std::move(parsed).value();
  if (!body.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const Value* q = body.Find("q");
  if (q == nullptr || !q->is_string() || q->string.empty()) {
    return Status::InvalidArgument("request needs a string member 'q'");
  }
  Request request;
  request.query = q->string;
  request.body = std::move(body);
  return request;
}

std::string ValueToJson(const Value& value) {
  obs::json::Writer w;
  WriteValue(value, &w);
  return w.str();
}

std::string RequestIdJson(const Value& body) {
  const Value* id = body.is_object() ? body.Find("id") : nullptr;
  return id == nullptr ? "null" : ValueToJson(*id);
}

namespace {

/// `request_id` is server-generated ("r<seq>": no quoting needed), so
/// splicing it into the envelope verbatim is safe.
void AppendRequestId(const std::string& request_id, std::string* out) {
  if (request_id.empty()) return;
  out->append(",\"rid\":\"");
  out->append(request_id);
  out->append("\"");
}

}  // namespace

std::string OkResponse(const std::string& id_json,
                       const std::string& result_json,
                       const std::string& request_id) {
  std::string out = "{\"id\":";
  out += id_json;
  AppendRequestId(request_id, &out);
  out += ",\"ok\":true,\"result\":";
  out += result_json;
  out += "}";
  return out;
}

std::string ErrorResponse(const std::string& id_json, ErrorCode code,
                          const std::string& message,
                          const std::string& request_id) {
  obs::json::Writer w;
  w.BeginObject();
  w.Key("code").String(ErrorCodeName(code));
  w.Key("message").String(message);
  w.EndObject();
  std::string out = "{\"id\":";
  out += id_json;
  AppendRequestId(request_id, &out);
  out += ",\"ok\":false,\"error\":";
  out += w.str();
  out += "}";
  return out;
}

}  // namespace serve
}  // namespace sfpm
