#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/expose.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace sfpm {
namespace serve {

namespace {

/// Trailing window of the /varz rates and windowed quantiles.
constexpr double kVarzWindowMs = 10000.0;

/// Upper bound on one blocking recv, so a connection parked in a read
/// notices a shutdown request promptly even under a long idle timeout.
constexpr int kRecvSliceMs = 500;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int optname, int ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

/// Blocking full write; false on any error (peer gone, send timeout).
///
/// Short-write/disconnect audit (the response path's failure contract):
/// partial sends resume from `sent` (never resend, never drop bytes);
/// EINTR retries; MSG_NOSIGNAL turns a peer that hard-closed mid-response
/// into EPIPE instead of a process-killing SIGPIPE; any other error —
/// ECONNRESET from an RST, EPIPE, or EAGAIN once the SO_SNDTIMEO send
/// timeout expires on a stalled peer — returns false, and the caller
/// closes the connection. No path spins: every continue consumes either
/// a successful partial write or an EINTR. A send() of 0 cannot wedge
/// the loop either — it only occurs for zero-length buffers, which the
/// `sent < size` guard never submits.
bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      obs::MetricsRegistry::Global().GetCounter("serve.send_errors").Add();
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(SnapshotHolder* holder, ServerOptions options)
    : holder_(holder), options_(options), engine_(holder) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_inflight = std::max<size_t>(1, options_.max_inflight);
  EngineTelemetry telemetry;
  telemetry.slow_query_ms = options_.slow_query_ms;
  telemetry.trace_sample = options_.trace_sample;
  telemetry.slow_log = &slow_log_;
  telemetry.traces = &traces_;
  telemetry.logger = &obs::Logger::Global();
  engine_.set_telemetry(telemetry);
  engine_.set_status_callback([this](obs::json::Writer& w) {
    w.Key("uptime_ms").Number(uptime_.ElapsedMillis());
    w.Key("inflight").Number(static_cast<uint64_t>(
        std::max<int64_t>(0, inflight_.load(std::memory_order_relaxed))));
    w.Key("workers").Number(static_cast<uint64_t>(options_.workers));
    w.Key("port").Number(static_cast<uint64_t>(port_));
    w.Key("shutting_down").Bool(shutting_down());
  });
}

Server::~Server() {
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Pool destruction drains queued connections; each sees shutting_down()
  // and answers with one `shutting_down` frame before closing.
  pool_.reset();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

Status Server::Start() {
  if (holder_->Current() == nullptr) {
    return Status::InvalidArgument("no snapshot loaded to serve");
  }
  if (pipe(wake_pipe_) != 0) return Errno("pipe");
  fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    const Status status = Errno("socket");
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return status;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Loopback only: the protocol has no authentication (docs/SERVE.md);
  // remote exposure is an operator's reverse-proxy decision, not ours.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  Status status = Status::OK();
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    status = Errno("bind 127.0.0.1:" + std::to_string(options_.port));
  } else if (listen(listen_fd_, 128) != 0) {
    status = Errno("listen");
  } else {
    socklen_t len = sizeof(addr);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      status = Errno("getsockname");
    }
  }
  if (!status.ok()) {
    close(listen_fd_);
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  // Telemetry endpoint: its own plain-HTTP listener plus the ring
  // sampler that turns cumulative instruments into the /varz rates.
  if (options_.metrics_port >= 0) {
    sampler_ = std::make_unique<obs::RingSampler>(
        &obs::MetricsRegistry::Global());
    MetricsHttpServer::Options http_options;
    http_options.port = static_cast<uint16_t>(options_.metrics_port);
    metrics_http_ = std::make_unique<MetricsHttpServer>(
        http_options,
        [this](const std::string& path, std::string* content_type,
               std::string* body) {
          return HandleTelemetryPath(path, content_type, body);
        });
    const Status status = metrics_http_->Start();
    if (!status.ok()) {
      metrics_http_.reset();
      sampler_.reset();
      close(listen_fd_);
      close(wake_pipe_[0]);
      close(wake_pipe_[1]);
      listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
      return status;
    }
    sampler_->Start();
  }

  // Slot 0 of the pool is ParallelFor's caller slot, never used in Submit
  // mode, so workers + 1 gives exactly `workers` query threads.
  pool_ = std::make_unique<ThreadPool>(options_.workers + 1);
  uptime_.Restart();
  obs::MetricsRegistry::Global()
      .GetGauge("serve.workers")
      .Set(static_cast<double>(options_.workers));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  obs::Logger::Global().Info(
      "serve listening",
      {{"port", static_cast<uint64_t>(port_)},
       {"metrics_port", static_cast<uint64_t>(metrics_port())},
       {"workers", static_cast<uint64_t>(options_.workers)},
       {"generation", holder_->generation()},
       {"slow_query_ms", options_.slow_query_ms},
       {"trace_sample", static_cast<uint64_t>(options_.trace_sample)}});
  return Status::OK();
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Server::RequestShutdown() {
  // Async-signal-safe: one lock-free store and one pipe write.
  shutdown_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], "x", 1);
  }
}

void Server::RequestReload() {
  reload_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], "x", 1);
  }
}

void Server::AcceptLoop() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {wake_pipe_[0], POLLIN, 0};

  while (!shutting_down()) {
    fds[0].revents = fds[1].revents = 0;
    const int ready = poll(fds, 2, kRecvSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (reload_.exchange(false, std::memory_order_relaxed)) {
      auto span = obs::Tracer::Global().StartSpan("serve/reload");
      const Status status = holder_->Reload();
      if (!status.ok()) {
        // Keep serving the old generation; reload failure is not fatal.
        registry.GetCounter("serve.reload_errors").Add();
        obs::Logger::Global().Error("reload failed",
                                    {{"error", status.message()}});
      } else {
        obs::Logger::Global().Info("snapshot reloaded",
                                   {{"generation", holder_->generation()}});
      }
    }
    if (shutting_down()) break;
    if (!(fds[0].revents & POLLIN)) continue;

    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN: accepted everything pending.
      if (inflight_.load(std::memory_order_relaxed) >=
          static_cast<int64_t>(options_.max_inflight)) {
        // Bounded admission: reject from here with one error frame
        // rather than queueing without limit (the clean-overload path).
        registry.GetCounter("serve.rejected").Add();
        WriteRejection(fd, ErrorCode::kOverloaded,
                       "server at its in-flight connection limit (" +
                           std::to_string(options_.max_inflight) + ")");
        close(fd);
        continue;
      }
      SetTimeout(fd, SO_RCVTIMEO, std::min(options_.read_timeout_ms,
                                           kRecvSliceMs));
      SetTimeout(fd, SO_SNDTIMEO, options_.read_timeout_ms);
      registry.GetCounter("serve.connections").Add();
      const int64_t now =
          inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
      registry.GetGauge("serve.inflight").Set(static_cast<double>(now));
      pool_->Submit([this, fd] {
        ServeConnection(fd);
        const int64_t left =
            inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
        obs::MetricsRegistry::Global().GetGauge("serve.inflight").Set(
            static_cast<double>(left));
      });
    }
  }
  obs::Logger::Global().Info(
      "serve draining",
      {{"uptime_ms", uptime_.ElapsedMillis()},
       {"queries",
        registry.GetCounter("serve.queries").Value()}});
}

void Server::ServeConnection(int fd) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (shutting_down()) {
    // Admitted before the shutdown request, dequeued after it.
    WriteRejection(fd, ErrorCode::kShuttingDown, "server is shutting down");
    close(fd);
    return;
  }
  auto span = obs::Tracer::Global().StartSpan("serve/connection");

  FrameDecoder decoder(options_.max_frame_bytes);
  Stopwatch idle;
  char buf[4096];
  bool open = true;
  while (open && !shutting_down()) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // Peer closed.
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // One recv slice elapsed; enforce the idle budget, then wait on.
        if (idle.ElapsedMillis() >=
            static_cast<double>(options_.read_timeout_ms)) {
          registry.GetCounter("serve.timeouts").Add();
          break;
        }
        continue;
      }
      if (errno == EINTR) continue;
      break;
    }
    idle.Restart();
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (open) {
      auto frame = decoder.Next();
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kNotFound) break;
        // Poisoned framing: answer once, then drop the connection — the
        // stream offset is unrecoverable.
        registry.GetCounter("serve.bad_frames").Add();
        SendAll(fd, EncodeFrame(ErrorResponse("null", ErrorCode::kBadFrame,
                                              frame.status().message())));
        open = false;
        break;
      }
      const HandleResult handled = engine_.Handle(frame.value());
      if (!SendAll(fd, EncodeFrame(handled.response))) {
        open = false;
        break;
      }
      if (handled.shutdown) {
        // The response is already on the wire; now take the server down.
        RequestShutdown();
        open = false;
        break;
      }
    }
  }
  close(fd);
}

void Server::WriteRejection(int fd, ErrorCode code,
                            const std::string& message) {
  SetTimeout(fd, SO_SNDTIMEO, 1000);  // Best effort; never wedge accept.
  SendAll(fd, EncodeFrame(ErrorResponse("null", code, message)));
}

bool Server::HandleTelemetryPath(const std::string& path,
                                 std::string* content_type,
                                 std::string* body) {
  if (path == "/metrics") {
    *content_type = obs::kPrometheusContentType;
    *body = obs::PrometheusText(obs::MetricsRegistry::Global().Snapshot());
    return true;
  }
  if (path == "/healthz") {
    *content_type = "text/plain";
    *body = shutting_down() ? "draining\n" : "ok\n";
    return true;
  }
  if (path == "/varz") {
    *content_type = "application/json";
    *body = VarzJson();
    return true;
  }
  if (path == "/tracez") {
    *content_type = "application/json";
    *body = TracezJson();
    return true;
  }
  return false;
}

std::string Server::VarzJson() {
  const obs::MetricsSnapshot metrics =
      obs::MetricsRegistry::Global().Snapshot();
  obs::json::Writer w;
  w.BeginObject();
  w.Key("uptime_ms").Number(uptime_.ElapsedMillis());
  w.Key("port").Number(static_cast<uint64_t>(port_));
  w.Key("metrics_port").Number(static_cast<uint64_t>(metrics_port()));
  w.Key("workers").Number(static_cast<uint64_t>(options_.workers));
  w.Key("inflight").Number(static_cast<uint64_t>(
      std::max<int64_t>(0, inflight_.load(std::memory_order_relaxed))));
  w.Key("generation").Number(holder_->generation());
  w.Key("shutting_down").Bool(shutting_down());
  w.Key("slow_query_ms").Number(
      static_cast<int64_t>(options_.slow_query_ms));
  w.Key("trace_sample").Number(static_cast<uint64_t>(options_.trace_sample));
  w.Key("window_ms").Number(kVarzWindowMs);
  w.Key("samples").Number(sampler_ != nullptr ? sampler_->samples() : 0);

  // Trailing-window rates from the ring sampler. Zero until the window
  // holds two samples — honest, not an error.
  w.Key("rates");
  w.BeginObject();
  w.Key("qps").Number(
      sampler_ != nullptr
          ? sampler_->CounterRate("serve.queries", kVarzWindowMs)
          : 0.0);
  w.Key("errors_per_sec")
      .Number(sampler_ != nullptr
                  ? sampler_->CounterRate("serve.errors", kVarzWindowMs)
                  : 0.0);
  w.Key("per_type");
  w.BeginObject();
  const std::string type_prefix = "serve.queries.";
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind(type_prefix, 0) != 0) continue;
    w.Key(name.substr(type_prefix.size()))
        .Number(sampler_ != nullptr
                    ? sampler_->CounterRate(name, kVarzWindowMs)
                    : 0.0);
  }
  w.EndObject();
  w.EndObject();

  // Per-type latency: cumulative count/mean, p50/p99 over the trailing
  // window when the sampler has it, else over the cumulative histogram
  // (`windowed` says which).
  w.Key("latency_ms");
  w.BeginObject();
  const std::string latency_prefix = "serve.latency_ms.";
  for (const auto& [name, data] : metrics.histograms) {
    if (name.rfind(latency_prefix, 0) != 0) continue;
    std::optional<obs::HistogramData> window;
    if (sampler_ != nullptr) {
      window = sampler_->HistogramWindow(name, kVarzWindowMs);
    }
    if (window.has_value() && window->count == 0) window.reset();
    const obs::HistogramData& estimate =
        window.has_value() ? *window : data;
    w.Key(name.substr(latency_prefix.size()));
    w.BeginObject();
    w.Key("count").Number(data.count);
    w.Key("mean").Number(
        data.count > 0 ? data.sum / static_cast<double>(data.count) : 0.0);
    w.Key("p50").Number(estimate.Quantile(0.5));
    w.Key("p99").Number(estimate.Quantile(0.99));
    w.Key("windowed").Bool(window.has_value());
    w.EndObject();
  }
  w.EndObject();

  w.Key("slow_query_total").Number(slow_log_.total());
  w.Key("slow_queries");
  w.BeginArray();
  for (const obs::SlowQueryEntry& entry : slow_log_.Entries()) {
    w.BeginObject();
    w.Key("seq").Number(entry.seq);
    w.Key("rid").String(entry.request_id);
    w.Key("type").String(entry.type);
    w.Key("latency_ms").Number(entry.latency_ms);
    w.Key("generation").Number(entry.generation);
    w.Key("spans").String(entry.spans);
    w.EndObject();
  }
  w.EndArray();
  w.Key("trace_total").Number(traces_.total());

  w.Key("metrics");
  obs::MetricsToJson(metrics, &w);
  w.EndObject();
  return w.str();
}

std::string Server::TracezJson() {
  // One Chrome trace over every sampled request, one "thread" lane per
  // request (tid = seq) so overlapping per-request clocks don't collide.
  std::vector<obs::TraceSpan> merged;
  std::vector<SampledTraces::Entry> entries = traces_.Entries();
  for (SampledTraces::Entry& entry : entries) {
    for (obs::TraceSpan& span : entry.spans) {
      span.thread = static_cast<size_t>(entry.seq);
      span.name = entry.request_id + "/" + span.name;
      merged.push_back(std::move(span));
    }
  }
  return obs::ChromeTraceJson(merged);
}

}  // namespace serve
}  // namespace sfpm
