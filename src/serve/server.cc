#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sfpm {
namespace serve {

namespace {

/// Upper bound on one blocking recv, so a connection parked in a read
/// notices a shutdown request promptly even under a long idle timeout.
constexpr int kRecvSliceMs = 500;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

void SetTimeout(int fd, int optname, int ms) {
  timeval tv;
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

/// Blocking full write; false on any error (peer gone, send timeout).
bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(SnapshotHolder* holder, ServerOptions options)
    : holder_(holder), options_(options), engine_(holder) {
  options_.workers = std::max<size_t>(1, options_.workers);
  options_.max_inflight = std::max<size_t>(1, options_.max_inflight);
  engine_.set_status_callback([this](obs::json::Writer& w) {
    w.Key("uptime_ms").Number(uptime_.ElapsedMillis());
    w.Key("inflight").Number(static_cast<uint64_t>(
        std::max<int64_t>(0, inflight_.load(std::memory_order_relaxed))));
    w.Key("workers").Number(static_cast<uint64_t>(options_.workers));
    w.Key("port").Number(static_cast<uint64_t>(port_));
    w.Key("shutting_down").Bool(shutting_down());
  });
}

Server::~Server() {
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Pool destruction drains queued connections; each sees shutting_down()
  // and answers with one `shutting_down` frame before closing.
  pool_.reset();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

Status Server::Start() {
  if (holder_->Current() == nullptr) {
    return Status::InvalidArgument("no snapshot loaded to serve");
  }
  if (pipe(wake_pipe_) != 0) return Errno("pipe");
  fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  fcntl(wake_pipe_[1], F_SETFL, O_NONBLOCK);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    const Status status = Errno("socket");
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return status;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  // Loopback only: the protocol has no authentication (docs/SERVE.md);
  // remote exposure is an operator's reverse-proxy decision, not ours.
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  Status status = Status::OK();
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    status = Errno("bind 127.0.0.1:" + std::to_string(options_.port));
  } else if (listen(listen_fd_, 128) != 0) {
    status = Errno("listen");
  } else {
    socklen_t len = sizeof(addr);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      status = Errno("getsockname");
    }
  }
  if (!status.ok()) {
    close(listen_fd_);
    close(wake_pipe_[0]);
    close(wake_pipe_[1]);
    listen_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  fcntl(listen_fd_, F_SETFL, O_NONBLOCK);

  // Slot 0 of the pool is ParallelFor's caller slot, never used in Submit
  // mode, so workers + 1 gives exactly `workers` query threads.
  pool_ = std::make_unique<ThreadPool>(options_.workers + 1);
  uptime_.Restart();
  obs::MetricsRegistry::Global()
      .GetGauge("serve.workers")
      .Set(static_cast<double>(options_.workers));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Server::RequestShutdown() {
  // Async-signal-safe: one lock-free store and one pipe write.
  shutdown_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], "x", 1);
  }
}

void Server::RequestReload() {
  reload_.store(true, std::memory_order_relaxed);
  if (wake_pipe_[1] >= 0) {
    [[maybe_unused]] const ssize_t n = write(wake_pipe_[1], "x", 1);
  }
}

void Server::AcceptLoop() {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {wake_pipe_[0], POLLIN, 0};

  while (!shutting_down()) {
    fds[0].revents = fds[1].revents = 0;
    const int ready = poll(fds, 2, kRecvSliceMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (reload_.exchange(false, std::memory_order_relaxed)) {
      auto span = obs::Tracer::Global().StartSpan("serve/reload");
      const Status status = holder_->Reload();
      if (!status.ok()) {
        // Keep serving the old generation; reload failure is not fatal.
        registry.GetCounter("serve.reload_errors").Add();
        std::fprintf(stderr, "sfpm serve: reload failed: %s\n",
                     status.message().c_str());
      }
    }
    if (shutting_down()) break;
    if (!(fds[0].revents & POLLIN)) continue;

    for (;;) {
      const int fd = accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) break;  // EAGAIN: accepted everything pending.
      if (inflight_.load(std::memory_order_relaxed) >=
          static_cast<int64_t>(options_.max_inflight)) {
        // Bounded admission: reject from here with one error frame
        // rather than queueing without limit (the clean-overload path).
        registry.GetCounter("serve.rejected").Add();
        WriteRejection(fd, ErrorCode::kOverloaded,
                       "server at its in-flight connection limit (" +
                           std::to_string(options_.max_inflight) + ")");
        close(fd);
        continue;
      }
      SetTimeout(fd, SO_RCVTIMEO, std::min(options_.read_timeout_ms,
                                           kRecvSliceMs));
      SetTimeout(fd, SO_SNDTIMEO, options_.read_timeout_ms);
      registry.GetCounter("serve.connections").Add();
      const int64_t now =
          inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
      registry.GetGauge("serve.inflight").Set(static_cast<double>(now));
      pool_->Submit([this, fd] {
        ServeConnection(fd);
        const int64_t left =
            inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
        obs::MetricsRegistry::Global().GetGauge("serve.inflight").Set(
            static_cast<double>(left));
      });
    }
  }
}

void Server::ServeConnection(int fd) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (shutting_down()) {
    // Admitted before the shutdown request, dequeued after it.
    WriteRejection(fd, ErrorCode::kShuttingDown, "server is shutting down");
    close(fd);
    return;
  }
  auto span = obs::Tracer::Global().StartSpan("serve/connection");

  FrameDecoder decoder(options_.max_frame_bytes);
  Stopwatch idle;
  char buf[4096];
  bool open = true;
  while (open && !shutting_down()) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // Peer closed.
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // One recv slice elapsed; enforce the idle budget, then wait on.
        if (idle.ElapsedMillis() >=
            static_cast<double>(options_.read_timeout_ms)) {
          registry.GetCounter("serve.timeouts").Add();
          break;
        }
        continue;
      }
      if (errno == EINTR) continue;
      break;
    }
    idle.Restart();
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
    while (open) {
      auto frame = decoder.Next();
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kNotFound) break;
        // Poisoned framing: answer once, then drop the connection — the
        // stream offset is unrecoverable.
        registry.GetCounter("serve.bad_frames").Add();
        SendAll(fd, EncodeFrame(ErrorResponse("null", ErrorCode::kBadFrame,
                                              frame.status().message())));
        open = false;
        break;
      }
      const HandleResult handled = engine_.Handle(frame.value());
      if (!SendAll(fd, EncodeFrame(handled.response))) {
        open = false;
        break;
      }
      if (handled.shutdown) {
        // The response is already on the wire; now take the server down.
        RequestShutdown();
        open = false;
        break;
      }
    }
  }
  close(fd);
}

void Server::WriteRejection(int fd, ErrorCode code,
                            const std::string& message) {
  SetTimeout(fd, SO_SNDTIMEO, 1000);  // Best effort; never wedge accept.
  SendAll(fd, EncodeFrame(ErrorResponse("null", code, message)));
}

}  // namespace serve
}  // namespace sfpm
