#ifndef SFPM_IO_TABLE_IO_H_
#define SFPM_IO_TABLE_IO_H_

#include <string>
#include <string_view>

#include "feature/predicate_table.h"
#include "util/status.h"

namespace sfpm {
namespace io {

/// \brief CSV serialization of predicate tables.
///
/// Layout: the header row is `row` followed by one predicate label per
/// column ("contains_slum", "murderRate=high"); each data row is the
/// reference feature name followed by 0/1 cells. Labels round-trip through
/// feature::Predicate::FromLabel, so feature-type keys survive and mining
/// a loaded table behaves identically to mining the original.

/// Renders the table as CSV text.
std::string TableToCsv(const feature::PredicateTable& table);

/// Parses CSV text into a predicate table.
Result<feature::PredicateTable> TableFromCsv(std::string_view text);

/// Convenience file wrappers.
Status SaveTable(const feature::PredicateTable& table,
                 const std::string& path);
Result<feature::PredicateTable> LoadTable(const std::string& path);

}  // namespace io
}  // namespace sfpm

#endif  // SFPM_IO_TABLE_IO_H_
