#ifndef SFPM_IO_GEOJSON_H_
#define SFPM_IO_GEOJSON_H_

#include <string>
#include <vector>

#include "feature/feature.h"

namespace sfpm {
namespace io {

/// \brief GeoJSON (RFC 7946) writers for visual inspection of layers and
/// generated cities in any web map tool. Output only — the library's
/// interchange format for loading is the WKT-based CSV of layer_io.h.

/// One geometry as a GeoJSON geometry object.
std::string GeometryToGeoJson(const geom::Geometry& g);

/// One feature, attributes becoming string properties plus the feature id.
std::string FeatureToGeoJson(const feature::Feature& f);

/// A layer as a FeatureCollection; every feature gets a "layer" property
/// with the layer's feature type.
std::string LayerToGeoJson(const feature::Layer& layer);

/// Several layers merged into one FeatureCollection.
std::string LayersToGeoJson(const std::vector<const feature::Layer*>& layers);

}  // namespace io
}  // namespace sfpm

#endif  // SFPM_IO_GEOJSON_H_
