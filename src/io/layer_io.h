#ifndef SFPM_IO_LAYER_IO_H_
#define SFPM_IO_LAYER_IO_H_

#include <string>
#include <string_view>

#include "feature/feature.h"
#include "util/status.h"

namespace sfpm {
namespace io {

/// \brief CSV serialization of feature layers.
///
/// Layout: the header row is `wkt` followed by attribute column names;
/// each data row is the feature geometry in WKT followed by its attribute
/// values. Features missing an attribute leave the cell empty; empty cells
/// load as absent attributes.

/// Renders a layer as CSV. Attribute columns are the union of the
/// attribute names present, in sorted order.
std::string LayerToCsv(const feature::Layer& layer);

/// Parses CSV into a layer of the given feature type.
Result<feature::Layer> LayerFromCsv(const std::string& feature_type,
                                    std::string_view text);

/// Convenience file wrappers.
Status SaveLayer(const feature::Layer& layer, const std::string& path);
Result<feature::Layer> LoadLayer(const std::string& feature_type,
                                 const std::string& path);

}  // namespace io
}  // namespace sfpm

#endif  // SFPM_IO_LAYER_IO_H_
