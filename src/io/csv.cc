#include "io/csv.h"

#include <fstream>
#include <sstream>

namespace sfpm {
namespace io {

namespace {

/// Incremental CSV scanner shared by record- and document-level parsing.
class CsvScanner {
 public:
  explicit CsvScanner(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }

  /// Parses the record starting at the cursor; leaves the cursor after the
  /// record's newline (or at end of input).
  Result<std::vector<std::string>> NextRecord() {
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    bool quoted_field = false;

    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (in_quotes) {
        if (c == '"') {
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '"') {
            field += '"';
            pos_ += 2;
            continue;
          }
          in_quotes = false;
          ++pos_;
          continue;
        }
        field += c;
        ++pos_;
        continue;
      }
      switch (c) {
        case '"':
          if (!field.empty()) {
            return Status::ParseError(
                "quote in the middle of an unquoted CSV field");
          }
          in_quotes = true;
          quoted_field = true;
          ++pos_;
          break;
        case ',':
          fields.push_back(std::move(field));
          field.clear();
          quoted_field = false;
          ++pos_;
          break;
        case '\r':
          if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '\n') ++pos_;
          [[fallthrough]];
        case '\n':
          ++pos_;
          fields.push_back(std::move(field));
          return fields;
        default:
          if (quoted_field) {
            return Status::ParseError("characters after closing CSV quote");
          }
          field += c;
          ++pos_;
          break;
      }
    }
    if (in_quotes) return Status::ParseError("unterminated CSV quote");
    fields.push_back(std::move(field));
    return fields;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\r\n") != std::string::npos;
}

}  // namespace

Result<std::vector<std::string>> ParseCsvRecord(std::string_view line) {
  CsvScanner scanner(line);
  Result<std::vector<std::string>> record = scanner.NextRecord();
  if (record.ok() && !scanner.AtEnd()) {
    return Status::ParseError("unexpected newline inside CSV record");
  }
  return record;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  CsvScanner scanner(text);
  while (!scanner.AtEnd()) {
    SFPM_ASSIGN_OR_RETURN(std::vector<std::string> record,
                          scanner.NextRecord());
    // A lone trailing newline yields one empty field; skip such records at
    // the document level (blank lines carry no data).
    if (record.size() == 1 && record[0].empty()) continue;
    records.push_back(std::move(record));
  }
  return records;
}

std::string WriteCsvRecord(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    if (NeedsQuoting(fields[i])) {
      out += '"';
      for (char c : fields[i]) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += fields[i];
    }
  }
  return out;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& records) {
  std::string out;
  for (const auto& record : records) {
    out += WriteCsvRecord(record);
    out += '\n';
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("error reading '" + path + "'");
  return buffer.str();
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open '" + path + "' for write");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::Internal("error writing '" + path + "'");
  return Status::OK();
}

}  // namespace io
}  // namespace sfpm
