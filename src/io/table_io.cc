#include "io/table_io.h"

#include "io/csv.h"

namespace sfpm {
namespace io {

std::string TableToCsv(const feature::PredicateTable& table) {
  std::vector<std::vector<std::string>> records;

  std::vector<std::string> header = {"row"};
  for (core::ItemId item = 0; item < table.NumPredicates(); ++item) {
    header.push_back(table.db().Label(item));
  }
  records.push_back(std::move(header));

  for (size_t row = 0; row < table.NumRows(); ++row) {
    std::vector<std::string> record = {table.RowName(row)};
    for (core::ItemId item = 0; item < table.NumPredicates(); ++item) {
      record.push_back(table.db().Test(row, item) ? "1" : "0");
    }
    records.push_back(std::move(record));
  }
  return WriteCsv(records);
}

Result<feature::PredicateTable> TableFromCsv(std::string_view text) {
  SFPM_ASSIGN_OR_RETURN(const auto records, ParseCsv(text));
  if (records.empty()) {
    return Status::ParseError("predicate table CSV has no header");
  }
  const std::vector<std::string>& header = records[0];
  if (header.empty() || header[0] != "row") {
    return Status::ParseError(
        "predicate table CSV must start with a 'row' column");
  }

  feature::PredicateTable table;
  std::vector<feature::Predicate> predicates;
  for (size_t col = 1; col < header.size(); ++col) {
    SFPM_ASSIGN_OR_RETURN(feature::Predicate predicate,
                          feature::Predicate::FromLabel(header[col]));
    table.Declare(predicate);
    predicates.push_back(std::move(predicate));
  }

  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string>& record = records[r];
    if (record.size() != header.size()) {
      return Status::ParseError("CSV row " + std::to_string(r) + " has " +
                                std::to_string(record.size()) +
                                " fields, expected " +
                                std::to_string(header.size()));
    }
    const size_t row = table.AddRow(record[0]);
    for (size_t col = 1; col < record.size(); ++col) {
      if (record[col] == "1") {
        SFPM_RETURN_NOT_OK(table.Set(row, predicates[col - 1]));
      } else if (record[col] != "0") {
        return Status::ParseError("predicate cell must be 0 or 1, got '" +
                                  record[col] + "'");
      }
    }
  }
  return table;
}

Status SaveTable(const feature::PredicateTable& table,
                 const std::string& path) {
  return WriteFile(path, TableToCsv(table));
}

Result<feature::PredicateTable> LoadTable(const std::string& path) {
  SFPM_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  return TableFromCsv(text);
}

}  // namespace io
}  // namespace sfpm
