#ifndef SFPM_IO_CSV_H_
#define SFPM_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace sfpm {
namespace io {

/// \brief RFC-4180-style CSV support: comma separation, double-quote
/// quoting, doubled quotes as escapes, and both LF and CRLF line endings.

/// Parses one CSV record (no trailing newline) into fields.
Result<std::vector<std::string>> ParseCsvRecord(std::string_view line);

/// Parses a whole document into records. Quoted fields may contain
/// embedded newlines. A trailing newline does not produce an empty record.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Renders one record, quoting fields only when needed.
std::string WriteCsvRecord(const std::vector<std::string>& fields);

/// Renders a document with LF line endings.
std::string WriteCsv(const std::vector<std::vector<std::string>>& records);

/// Reads an entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes a string to a file (truncating).
Status WriteFile(const std::string& path, std::string_view content);

}  // namespace io
}  // namespace sfpm

#endif  // SFPM_IO_CSV_H_
