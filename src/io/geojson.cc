#include "io/geojson.h"

#include "util/strings.h"

namespace sfpm {
namespace io {

namespace {

using geom::Geometry;
using geom::GeometryType;
using geom::LinearRing;
using geom::LineString;
using geom::Point;
using geom::Polygon;

// Shortest round-trip formatting (util/strings.h) keeps GeoJSON output
// byte-stable across write -> read -> write cycles.
void AppendPosition(const Point& p, std::string* out) {
  *out += '[';
  AppendRoundTripDouble(p.x, out);
  *out += ',';
  AppendRoundTripDouble(p.y, out);
  *out += ']';
}

void AppendPositionList(const std::vector<Point>& pts, std::string* out) {
  *out += '[';
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) *out += ',';
    AppendPosition(pts[i], out);
  }
  *out += ']';
}

void AppendPolygonRings(const Polygon& poly, std::string* out) {
  *out += '[';
  AppendPositionList(poly.shell().points(), out);
  for (const LinearRing& hole : poly.holes()) {
    *out += ',';
    AppendPositionList(hole.points(), out);
  }
  *out += ']';
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace

std::string GeometryToGeoJson(const Geometry& g) {
  std::string out = "{\"type\":\"";
  switch (g.type()) {
    case GeometryType::kPoint:
      out += "Point\",\"coordinates\":";
      AppendPosition(g.As<Point>(), &out);
      break;
    case GeometryType::kLineString:
      out += "LineString\",\"coordinates\":";
      AppendPositionList(g.As<LineString>().points(), &out);
      break;
    case GeometryType::kPolygon:
      out += "Polygon\",\"coordinates\":";
      AppendPolygonRings(g.As<Polygon>(), &out);
      break;
    case GeometryType::kMultiPoint: {
      out += "MultiPoint\",\"coordinates\":";
      AppendPositionList(g.As<geom::MultiPoint>().points(), &out);
      break;
    }
    case GeometryType::kMultiLineString: {
      out += "MultiLineString\",\"coordinates\":[";
      const auto& lines = g.As<geom::MultiLineString>().lines();
      for (size_t i = 0; i < lines.size(); ++i) {
        if (i > 0) out += ',';
        AppendPositionList(lines[i].points(), &out);
      }
      out += ']';
      break;
    }
    case GeometryType::kMultiPolygon: {
      out += "MultiPolygon\",\"coordinates\":[";
      const auto& polys = g.As<geom::MultiPolygon>().polygons();
      for (size_t i = 0; i < polys.size(); ++i) {
        if (i > 0) out += ',';
        AppendPolygonRings(polys[i], &out);
      }
      out += ']';
      break;
    }
  }
  out += '}';
  return out;
}

std::string FeatureToGeoJson(const feature::Feature& f) {
  std::string out = "{\"type\":\"Feature\",\"id\":";
  out += std::to_string(f.id());
  out += ",\"geometry\":";
  out += GeometryToGeoJson(f.geometry());
  out += ",\"properties\":{";
  bool first = true;
  for (const auto& [name, value] : f.attributes()) {
    if (!first) out += ',';
    out += '"' + EscapeJson(name) + "\":\"" + EscapeJson(value) + '"';
    first = false;
  }
  out += "}}";
  return out;
}

std::string LayerToGeoJson(const feature::Layer& layer) {
  return LayersToGeoJson({&layer});
}

std::string LayersToGeoJson(const std::vector<const feature::Layer*>& layers) {
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (const feature::Layer* layer : layers) {
    for (const feature::Feature& f : layer->features()) {
      if (!first) out += ',';
      // Inject the layer name as an extra property by rewriting the
      // feature's properties object opening.
      std::string feature_json = FeatureToGeoJson(f);
      const std::string marker = "\"properties\":{";
      const size_t pos = feature_json.find(marker);
      std::string injected = "\"properties\":{\"layer\":\"" +
                             layer->feature_type() + "\"";
      if (f.attributes().empty()) {
        feature_json.replace(pos, marker.size(), injected);
      } else {
        feature_json.replace(pos, marker.size(), injected + ",");
      }
      out += feature_json;
      first = false;
    }
  }
  out += "]}";
  return out;
}

}  // namespace io
}  // namespace sfpm
