#include "io/layer_io.h"

#include <set>

#include "geom/wkt.h"
#include "io/csv.h"

namespace sfpm {
namespace io {

std::string LayerToCsv(const feature::Layer& layer) {
  std::set<std::string> attribute_names;
  for (const feature::Feature& f : layer.features()) {
    for (const auto& [name, value] : f.attributes()) {
      attribute_names.insert(name);
    }
  }

  std::vector<std::vector<std::string>> records;
  std::vector<std::string> header = {"wkt"};
  header.insert(header.end(), attribute_names.begin(), attribute_names.end());
  records.push_back(header);

  for (const feature::Feature& f : layer.features()) {
    std::vector<std::string> record = {geom::WriteWkt(f.geometry())};
    for (const std::string& name : attribute_names) {
      const auto it = f.attributes().find(name);
      record.push_back(it == f.attributes().end() ? "" : it->second);
    }
    records.push_back(std::move(record));
  }
  return WriteCsv(records);
}

Result<feature::Layer> LayerFromCsv(const std::string& feature_type,
                                    std::string_view text) {
  SFPM_ASSIGN_OR_RETURN(const auto records, ParseCsv(text));
  if (records.empty()) {
    return Status::ParseError("layer CSV has no header");
  }
  const std::vector<std::string>& header = records[0];
  if (header.empty() || header[0] != "wkt") {
    return Status::ParseError("layer CSV must start with a 'wkt' column");
  }

  feature::Layer layer(feature_type);
  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<std::string>& record = records[r];
    if (record.size() != header.size()) {
      return Status::ParseError("CSV row " + std::to_string(r) +
                                " has wrong field count");
    }
    SFPM_ASSIGN_OR_RETURN(geom::Geometry geometry, geom::ReadWkt(record[0]));
    std::map<std::string, std::string> attributes;
    for (size_t col = 1; col < record.size(); ++col) {
      if (!record[col].empty()) attributes[header[col]] = record[col];
    }
    layer.Add(std::move(geometry), std::move(attributes));
  }
  return layer;
}

Status SaveLayer(const feature::Layer& layer, const std::string& path) {
  return WriteFile(path, LayerToCsv(layer));
}

Result<feature::Layer> LoadLayer(const std::string& feature_type,
                                 const std::string& path) {
  SFPM_ASSIGN_OR_RETURN(const std::string text, ReadFile(path));
  return LayerFromCsv(feature_type, text);
}

}  // namespace io
}  // namespace sfpm
