// The concurrency contract of docs/ARCHITECTURE.md, checked end to end:
// extraction and mining produce byte-identical results at every thread
// count. Run under the SFPM_TSAN build to also check data-race freedom.

#include <gtest/gtest.h>

#include "core/apriori.h"
#include "datagen/city.h"
#include "feature/extractor.h"
#include "feature/pipeline.h"
#include "io/table_io.h"
#include "qsr/distance.h"

namespace sfpm {
namespace {

datagen::CityConfig SmallCity() {
  datagen::CityConfig config;
  config.grid_cols = 5;
  config.grid_rows = 4;
  config.num_slums = 24;
  config.num_schools = 50;
  config.num_police = 10;
  config.num_streets = 30;
  config.seed = 4945;
  return config;
}

feature::PredicateExtractor MakeExtractor(const datagen::City& city) {
  feature::PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);
  extractor.AddRelevantLayer(&city.schools);
  extractor.AddRelevantLayer(&city.police);
  return extractor;
}

TEST(ParallelDeterminismTest, ExtractionIsByteIdenticalAcrossThreadCounts) {
  const auto city = datagen::GenerateCity(SmallCity());
  const auto extractor = MakeExtractor(*city);
  const auto bands = qsr::DistanceQuantizer::Default();

  feature::ExtractorOptions options;
  options.distance_bands = &bands;
  options.directions = true;

  options.parallelism = 1;
  const auto serial = extractor.Extract(options);
  ASSERT_TRUE(serial.ok());
  const std::string serial_csv = io::TableToCsv(serial.value());

  for (size_t threads : {2, 4, 7}) {
    options.parallelism = threads;
    const auto parallel = extractor.Extract(options);
    ASSERT_TRUE(parallel.ok());
    // Byte identity covers row order, predicate item-id assignment order,
    // and every cell.
    EXPECT_EQ(serial_csv, io::TableToCsv(parallel.value()))
        << "threads=" << threads;
    EXPECT_EQ(serial.value().ToString(), parallel.value().ToString());
  }
}

TEST(ParallelDeterminismTest,
     InstanceGranularityExtractionMatchesAcrossThreadCounts) {
  const auto city = datagen::GenerateCity(SmallCity());
  const auto extractor = MakeExtractor(*city);

  feature::ExtractorOptions options;
  options.instance_granularity = true;
  options.parallelism = 1;
  const auto serial = extractor.Extract(options);
  ASSERT_TRUE(serial.ok());

  options.parallelism = 4;
  const auto parallel = extractor.Extract(options);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(io::TableToCsv(serial.value()), io::TableToCsv(parallel.value()));
}

TEST(ParallelDeterminismTest, AprioriFrequentItemsetsIdenticalAcrossThreads) {
  const auto city = datagen::GenerateCity(SmallCity());
  const auto extractor = MakeExtractor(*city);
  feature::ExtractorOptions extract_options;
  const auto table = extractor.Extract(extract_options);
  ASSERT_TRUE(table.ok());

  core::AprioriOptions serial_options;
  serial_options.min_support = 0.1;
  serial_options.parallelism = 1;
  const auto serial = core::MineApriori(table.value().db(), serial_options);
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial.value().itemsets().size(), 0u);
  EXPECT_EQ(serial.value().stats().threads, 1u);

  for (size_t threads : {2, 4}) {
    core::AprioriOptions options = serial_options;
    options.parallelism = threads;
    const auto parallel = core::MineApriori(table.value().db(), options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value().stats().threads, threads);

    const auto& a = serial.value().itemsets();
    const auto& b = parallel.value().itemsets();
    ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].items, b[i].items) << "threads=" << threads;
      EXPECT_EQ(a[i].support, b[i].support) << "threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, PipelineKnobCoversBothPhases) {
  const auto city = datagen::GenerateCity(SmallCity());

  feature::SpatialAssociationPipeline pipeline(&city->districts);
  pipeline.AddRelevantLayer(&city->slums);
  pipeline.AddRelevantLayer(&city->schools);

  feature::PipelineOptions options;
  options.min_support = 0.15;
  options.rules = core::RuleOptions{};

  options.parallelism = 1;
  const auto serial = pipeline.Run(options);
  ASSERT_TRUE(serial.ok());

  options.parallelism = 4;
  const auto parallel = pipeline.Run(options);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(io::TableToCsv(serial.value().table),
            io::TableToCsv(parallel.value().table));
  ASSERT_EQ(serial.value().mining.itemsets().size(),
            parallel.value().mining.itemsets().size());
  ASSERT_EQ(serial.value().rules.size(), parallel.value().rules.size());
  for (size_t i = 0; i < serial.value().rules.size(); ++i) {
    EXPECT_EQ(serial.value().rules[i].ToString(serial.value().table.db()),
              parallel.value().rules[i].ToString(parallel.value().table.db()));
  }
}

}  // namespace
}  // namespace sfpm
