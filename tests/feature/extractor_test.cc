#include "feature/extractor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "feature/taxonomy.h"

#include "geom/geometry.h"

namespace sfpm {
namespace feature {
namespace {

using geom::Geometry;
using geom::LinearRing;
using geom::LineString;
using geom::Point;
using geom::Polygon;

Polygon Square(double x0, double y0, double size) {
  return Polygon(LinearRing(
      {{x0, y0}, {x0 + size, y0}, {x0 + size, y0 + size}, {x0, y0 + size}}));
}

/// A miniature Porto Alegre: two adjacent districts, slums and schools in
/// known topological configurations.
struct MiniCity {
  Layer districts{"district"};
  Layer slums{"slum"};
  Layer schools{"school"};

  MiniCity() {
    districts.Add(Square(0, 0, 10),
                  {{"name", "Nonoai"}, {"murderRate", "high"}});
    districts.Add(Square(10, 0, 10),
                  {{"name", "Cristal"}, {"murderRate", "low"}});

    slums.Add(Square(2, 2, 2));     // Strictly inside Nonoai.
    slums.Add(Square(8, 4, 4));     // Straddles both districts.
    slums.Add(Square(12, 0, 3));    // Inside Cristal, touching its border.
    schools.Add(Point(5, 5));       // Inside Nonoai.
    schools.Add(Point(10, 5));      // On the shared border.
  }
};

std::vector<std::string> RowLabels(const PredicateTable& table, size_t row) {
  std::vector<std::string> labels;
  for (const Predicate& p : table.RowPredicates(row)) {
    labels.push_back(p.Label());
  }
  return labels;
}

bool Has(const std::vector<std::string>& labels, const std::string& want) {
  return std::find(labels.begin(), labels.end(), want) != labels.end();
}

TEST(ExtractorTest, TopologicalPredicates) {
  MiniCity city;
  PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);
  extractor.AddRelevantLayer(&city.schools);

  ExtractorOptions options;
  const auto result = extractor.Extract(options);
  ASSERT_TRUE(result.ok());
  const PredicateTable& table = result.value();
  ASSERT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.RowName(0), "Nonoai");

  const auto nonoai = RowLabels(table, 0);
  EXPECT_TRUE(Has(nonoai, "contains_slum"));   // Slum 0.
  EXPECT_TRUE(Has(nonoai, "overlaps_slum"));   // Slum 1 straddles.
  EXPECT_TRUE(Has(nonoai, "contains_school")); // School 0.
  EXPECT_TRUE(Has(nonoai, "touches_school"));  // School 1 on border.
  EXPECT_TRUE(Has(nonoai, "murderRate=high"));
  EXPECT_FALSE(Has(nonoai, "disjoint_slum"));  // Disjoint never emitted.

  const auto cristal = RowLabels(table, 1);
  EXPECT_TRUE(Has(cristal, "overlaps_slum"));  // Slum 1.
  EXPECT_TRUE(Has(cristal, "covers_slum"));    // Slum 2 touches border.
  EXPECT_TRUE(Has(cristal, "touches_school"));
  EXPECT_TRUE(Has(cristal, "murderRate=low"));
  EXPECT_FALSE(Has(cristal, "contains_school"));
}

TEST(ExtractorTest, ReferenceAttributesOptional) {
  MiniCity city;
  PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);

  ExtractorOptions options;
  options.reference_attributes = false;
  const auto table = extractor.Extract(options);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(Has(RowLabels(table.value(), 0), "murderRate=high"));
}

TEST(ExtractorTest, DistanceBands) {
  Layer districts("district");
  districts.Add(Square(0, 0, 10), {{"name", "D"}});
  Layer police("policeCenter");
  police.Add(Point(5, 5));       // Inside: distance 0, veryClose.
  police.Add(Point(10 + 300, 5));  // 300 away: close band.
  police.Add(Point(10 + 5000, 5)); // 5000 away: beyond -> far.

  PredicateExtractor extractor(&districts);
  extractor.AddRelevantLayer(&police);

  const auto bands =
      qsr::DistanceQuantizer::Create({{"veryClose", 100}, {"close", 1000}},
                                     "far");
  ASSERT_TRUE(bands.ok());
  ExtractorOptions options;
  options.topological = false;
  options.reference_attributes = false;
  options.distance_bands = &bands.value();

  const auto table = extractor.Extract(options);
  ASSERT_TRUE(table.ok());
  const auto labels = RowLabels(table.value(), 0);
  EXPECT_TRUE(Has(labels, "veryClose_policeCenter"));
  EXPECT_TRUE(Has(labels, "close_policeCenter"));
  EXPECT_TRUE(Has(labels, "far_policeCenter"));
  EXPECT_EQ(labels.size(), 3u);
}

TEST(ExtractorTest, FarBandOnlyWhenSomethingIsBeyond) {
  Layer districts("district");
  districts.Add(Square(0, 0, 10), {{"name", "D"}});
  Layer police("policeCenter");
  police.Add(Point(5, 5));  // Only one, inside the district.

  PredicateExtractor extractor(&districts);
  extractor.AddRelevantLayer(&police);

  const auto bands = qsr::DistanceQuantizer::Create(
      {{"veryClose", 100}, {"close", 1000}}, "far");
  ASSERT_TRUE(bands.ok());
  ExtractorOptions options;
  options.topological = false;
  options.reference_attributes = false;
  options.distance_bands = &bands.value();

  const auto table = extractor.Extract(options);
  ASSERT_TRUE(table.ok());
  const auto labels = RowLabels(table.value(), 0);
  EXPECT_TRUE(Has(labels, "veryClose_policeCenter"));
  EXPECT_FALSE(Has(labels, "far_policeCenter"));
}

TEST(ExtractorTest, DirectionPredicates) {
  Layer districts("district");
  districts.Add(Square(0, 0, 2), {{"name", "D"}});
  Layer rivers("river");
  rivers.Add(LineString({{1, 100}, {1, 110}}));  // Due north.

  PredicateExtractor extractor(&districts);
  extractor.AddRelevantLayer(&rivers);

  ExtractorOptions options;
  options.topological = false;
  options.reference_attributes = false;
  options.directions = true;
  const auto table = extractor.Extract(options);
  ASSERT_TRUE(table.ok());
  const auto labels = RowLabels(table.value(), 0);
  EXPECT_TRUE(Has(labels, "north_river"));
  EXPECT_EQ(labels.size(), 1u);
}

TEST(ExtractorTest, InstanceGranularityAndTaxonomyRoundTrip) {
  MiniCity city;
  PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);
  extractor.AddRelevantLayer(&city.schools);

  ExtractorOptions options;
  options.instance_granularity = true;
  options.reference_attributes = false;
  const auto instance_table = extractor.Extract(options);
  ASSERT_TRUE(instance_table.ok());

  const auto nonoai = RowLabels(instance_table.value(), 0);
  EXPECT_TRUE(Has(nonoai, "contains_slum0"));
  EXPECT_TRUE(Has(nonoai, "overlaps_slum1"));
  EXPECT_TRUE(Has(nonoai, "contains_school0"));
  EXPECT_FALSE(Has(nonoai, "contains_slum"));

  // Generalizing through the instance taxonomy recovers the type-level
  // table the non-instance extraction produces.
  const Taxonomy taxonomy = InstanceTaxonomy({&city.slums, &city.schools});
  const PredicateTable type_table =
      GeneralizeTable(instance_table.value(), taxonomy, 1);
  ExtractorOptions plain;
  plain.reference_attributes = false;
  const auto direct = extractor.Extract(plain);
  ASSERT_TRUE(direct.ok());
  for (size_t row = 0; row < type_table.NumRows(); ++row) {
    auto got = RowLabels(type_table, row);
    auto want = RowLabels(direct.value(), row);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "row " << row;
  }
}

TEST(ExtractorTest, EmptyReferenceLayerRejected) {
  Layer empty("district");
  PredicateExtractor extractor(&empty);
  EXPECT_FALSE(extractor.Extract(ExtractorOptions()).ok());
}

TEST(ExtractorTest, RowNamesFallBackToTypeAndId) {
  Layer districts("district");
  districts.Add(Square(0, 0, 1));  // No "name" attribute.
  PredicateExtractor extractor(&districts);
  const auto table = extractor.Extract(ExtractorOptions());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().RowName(0), "district0");
}

TEST(LayerTest, BoundsAndIndex) {
  Layer layer("slum");
  layer.Add(Square(0, 0, 2));
  layer.Add(Square(10, 10, 2));
  EXPECT_EQ(layer.Bounds(), geom::Envelope(0, 0, 12, 12));

  std::vector<uint64_t> hits;
  layer.Index().Query(geom::Envelope(1, 1, 1.5, 1.5), &hits);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);

  // Index refreshes after adding a feature.
  layer.Add(Square(1, 1, 1));
  hits.clear();
  layer.Index().Query(geom::Envelope(1, 1, 1.5, 1.5), &hits);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(FeatureTest, AttributeLookup) {
  Feature f(0, Geometry(Point(0, 0)), {{"name", "x"}});
  EXPECT_EQ(f.Attribute("name").value(), "x");
  EXPECT_EQ(f.Attribute("missing").status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace feature
}  // namespace sfpm
