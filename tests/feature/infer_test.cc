// The extraction inference tier's output contract: the predicate table
// with --infer-relate on is byte-identical to the engine-only table at
// every thread count, while the counters prove the algebra actually
// decided pairs. Scaled nested cities give the tier real containment
// chains to compose through (the configuration it exists for).

#include <gtest/gtest.h>

#include "datagen/city.h"
#include "feature/extractor.h"
#include "io/table_io.h"

namespace sfpm {
namespace {

/// Scale-`s` city in the benchmark's regime: dense small slums so many
/// are strictly inside one district (cross-anchored) while their
/// envelopes protrude into neighbouring rows (deducible {DC}), and half
/// the slums nested inside others so containment chains exist too.
datagen::CityConfig NestedCity(int scale) {
  datagen::CityConfig config;
  config.grid_cols = 4 * scale;
  config.grid_rows = 3 * scale;
  config.num_slums = static_cast<size_t>(150 * scale * scale);
  config.slum_radius_min = 0.06;
  config.slum_radius_max = 0.18;
  config.slum_nested_fraction = 0.5;
  config.num_schools = 40;
  config.num_police = 8;
  config.num_streets = 20;
  config.seed = 2007;
  return config;
}

struct RunResult {
  std::string csv;
  feature::ExtractionStats stats;
};

RunResult RunExtract(const datagen::City& city, bool infer, size_t threads,
              bool instance_granularity = false) {
  feature::PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);
  feature::ExtractorOptions options;
  options.infer_relate = infer;
  options.parallelism = threads;
  options.instance_granularity = instance_granularity;
  feature::ExtractionStats stats;
  const auto table = extractor.Extract(options, &stats);
  EXPECT_TRUE(table.ok());
  return {table.ok() ? io::TableToCsv(table.value()) : "", stats};
}

class InferExtractionTest : public ::testing::TestWithParam<int> {};

TEST_P(InferExtractionTest, ByteIdenticalOnVsOffAcrossThreadCounts) {
  const auto city = datagen::GenerateCity(NestedCity(GetParam()));
  const RunResult reference = RunExtract(*city, /*infer=*/false, /*threads=*/1);

  for (size_t threads : {1, 4}) {
    const RunResult off = RunExtract(*city, /*infer=*/false, threads);
    const RunResult on = RunExtract(*city, /*infer=*/true, threads);
    EXPECT_EQ(off.csv, reference.csv) << "threads=" << threads;
    EXPECT_EQ(on.csv, reference.csv) << "threads=" << threads;
  }
}

TEST_P(InferExtractionTest, ByteIdenticalAtInstanceGranularity) {
  // Instance granularity makes every candidate's relation its own
  // predicate name — the strictest output-identity setting.
  const auto city = datagen::GenerateCity(NestedCity(GetParam()));
  const RunResult off = RunExtract(*city, /*infer=*/false, 1, true);
  const RunResult on1 = RunExtract(*city, /*infer=*/true, 1, true);
  const RunResult on4 = RunExtract(*city, /*infer=*/true, 4, true);
  EXPECT_EQ(on1.csv, off.csv);
  EXPECT_EQ(on4.csv, off.csv);
}

TEST_P(InferExtractionTest, InferenceDecidesPairsAndSavesEngineCalls) {
  const auto city = datagen::GenerateCity(NestedCity(GetParam()));
  const RunResult off = RunExtract(*city, /*infer=*/false, 1);
  const RunResult on = RunExtract(*city, /*infer=*/true, 1);

  // The tier actually fired: pairs were decided algebraically, through a
  // non-empty pivot store, using converse-derived edges.
  EXPECT_GT(on.stats.infer_pivot_pairs, 0u);
  EXPECT_GT(on.stats.relate.inferred + on.stats.relate.inferred_skipped, 0u);

  // Decided pairs never reach the engine, so per-row calls drop by
  // exactly the decided count...
  EXPECT_EQ(on.stats.relate.calls + on.stats.relate.inferred +
                on.stats.relate.inferred_skipped,
            off.stats.relate.calls);
  // ...and on a nested city the savings must beat the pivot-store build
  // cost: strictly fewer total engine invocations with inference on.
  EXPECT_LT(on.stats.relate.calls + on.stats.infer_pivot_calls,
            off.stats.relate.calls);

  // Off leaves every inference counter at zero.
  EXPECT_EQ(off.stats.infer_pivot_pairs, 0u);
  EXPECT_EQ(off.stats.infer_pivot_calls, 0u);
  EXPECT_EQ(off.stats.relate.inferred, 0u);
  EXPECT_EQ(off.stats.relate.inferred_skipped, 0u);
  EXPECT_EQ(off.stats.relate.converse_hits, 0u);
}

TEST_P(InferExtractionTest, WarmExtractorReusesPivotStores) {
  // The pivot stores depend only on the layers, so the first
  // inference-enabled Extract builds them and every later Extract on the
  // same extractor reuses them: same output, same deductions, zero
  // further build calls.
  const auto city = datagen::GenerateCity(NestedCity(GetParam()));
  feature::PredicateExtractor extractor(&city->districts);
  extractor.AddRelevantLayer(&city->slums);
  feature::ExtractorOptions options;
  options.parallelism = 1;

  feature::ExtractionStats cold, warm;
  const auto first = extractor.Extract(options, &cold);
  const auto second = extractor.Extract(options, &warm);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(io::TableToCsv(first.value()), io::TableToCsv(second.value()));

  EXPECT_GT(cold.infer_pivot_calls, 0u);
  EXPECT_EQ(warm.infer_pivot_calls, 0u);
  EXPECT_EQ(warm.infer_pivot_pairs, cold.infer_pivot_pairs);
  EXPECT_EQ(warm.relate.calls, cold.relate.calls);
  EXPECT_EQ(warm.relate.inferred, cold.relate.inferred);
  EXPECT_EQ(warm.relate.inferred_skipped, cold.relate.inferred_skipped);
  EXPECT_EQ(warm.relate.converse_hits, cold.relate.converse_hits);
}

TEST_P(InferExtractionTest, CountersDeterministicAcrossThreadCounts) {
  const auto city = datagen::GenerateCity(NestedCity(GetParam()));
  const RunResult serial = RunExtract(*city, /*infer=*/true, 1);
  const RunResult parallel = RunExtract(*city, /*infer=*/true, 4);
  EXPECT_EQ(serial.stats.relate.inferred, parallel.stats.relate.inferred);
  EXPECT_EQ(serial.stats.relate.inferred_skipped,
            parallel.stats.relate.inferred_skipped);
  EXPECT_EQ(serial.stats.relate.converse_hits,
            parallel.stats.relate.converse_hits);
  EXPECT_EQ(serial.stats.relate.calls, parallel.stats.relate.calls);
  EXPECT_EQ(serial.stats.infer_pivot_pairs, parallel.stats.infer_pivot_pairs);
  EXPECT_EQ(serial.stats.infer_pivot_calls, parallel.stats.infer_pivot_calls);
}

INSTANTIATE_TEST_SUITE_P(Scales, InferExtractionTest, ::testing::Values(1, 2));

TEST(InferExtractionTest, MultiLayerAndDistanceOutputsUnchanged) {
  // Inference only touches topological pairs; a full multi-layer extract
  // (points, lines, attributes) must stay byte-identical too.
  const auto city = datagen::GenerateCity(NestedCity(1));
  feature::PredicateExtractor extractor(&city->districts);
  extractor.AddRelevantLayer(&city->slums);
  extractor.AddRelevantLayer(&city->schools);
  extractor.AddRelevantLayer(&city->streets);

  feature::ExtractorOptions options;
  options.parallelism = 1;
  options.infer_relate = false;
  const auto off = extractor.Extract(options);
  ASSERT_TRUE(off.ok());
  options.infer_relate = true;
  const auto on = extractor.Extract(options);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(io::TableToCsv(off.value()), io::TableToCsv(on.value()));
}

}  // namespace
}  // namespace sfpm
