#include "feature/dependency.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace feature {
namespace {

TEST(DependencyRegistryTest, OrderInsensitive) {
  DependencyRegistry reg;
  reg.Add("street", "illuminationPoint");
  EXPECT_TRUE(reg.IsDependent("street", "illuminationPoint"));
  EXPECT_TRUE(reg.IsDependent("illuminationPoint", "street"));
  EXPECT_FALSE(reg.IsDependent("street", "slum"));
  EXPECT_EQ(reg.Size(), 1u);
}

TEST(DependencyRegistryTest, DuplicateAddIsIdempotent) {
  DependencyRegistry reg;
  reg.Add("a", "b");
  reg.Add("b", "a");
  EXPECT_EQ(reg.Size(), 1u);
}

TEST(DependencyRegistryTest, MakeFilterBlocksCrossTypeItems) {
  DependencyRegistry reg;
  reg.Add("street", "illuminationPoint");

  core::TransactionDb db;
  const auto s1 = db.AddItem("contains_street", "street");
  const auto s2 = db.AddItem("crosses_street", "street");
  const auto i1 = db.AddItem("contains_illuminationPoint",
                             "illuminationPoint");
  const auto i2 = db.AddItem("close_illuminationPoint", "illuminationPoint");
  const auto slum = db.AddItem("contains_slum", "slum");
  const auto attr = db.AddItem("murderRate=high", "");

  const core::PairBlocklistFilter filter = reg.MakeFilter(db);
  EXPECT_EQ(filter.NumPairs(), 4u);  // 2 street x 2 illumination.
  EXPECT_TRUE(filter.PrunePair(s1, i1));
  EXPECT_TRUE(filter.PrunePair(s2, i2));
  EXPECT_TRUE(filter.PrunePair(i2, s1));
  EXPECT_FALSE(filter.PrunePair(s1, s2));  // Same type, not a dependency.
  EXPECT_FALSE(filter.PrunePair(s1, slum));
  EXPECT_FALSE(filter.PrunePair(s1, attr));
}

TEST(DependencyRegistryTest, EmptyRegistryBlocksNothing) {
  DependencyRegistry reg;
  core::TransactionDb db;
  db.AddItem("a", "x");
  db.AddItem("b", "y");
  EXPECT_EQ(reg.MakeFilter(db).NumPairs(), 0u);
}

}  // namespace
}  // namespace feature
}  // namespace sfpm
