#include "feature/predicate_table.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace feature {
namespace {

TEST(PredicateTableTest, RowsAndPredicates) {
  PredicateTable table;
  const size_t r0 = table.AddRow("Nonoai");
  const size_t r1 = table.AddRow("Cristal");
  ASSERT_TRUE(table.SetSpatial(r0, "contains", "slum").ok());
  ASSERT_TRUE(table.SetSpatial(r0, "touches", "slum").ok());
  ASSERT_TRUE(table.SetSpatial(r1, "contains", "slum").ok());
  ASSERT_TRUE(table.SetAttribute(r1, "murderRate", "high").ok());

  EXPECT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.NumPredicates(), 3u);
  EXPECT_EQ(table.RowName(0), "Nonoai");
  EXPECT_EQ(table.db().NumTransactions(), 2u);
  EXPECT_EQ(table.db().Support(0), 2u);  // contains_slum in both rows.
}

TEST(PredicateTableTest, ItemKeysFollowFeatureTypes) {
  PredicateTable table;
  const size_t r = table.AddRow("row");
  ASSERT_TRUE(table.SetSpatial(r, "contains", "slum").ok());
  ASSERT_TRUE(table.SetSpatial(r, "touches", "slum").ok());
  ASSERT_TRUE(table.SetAttribute(r, "murderRate", "high").ok());

  EXPECT_EQ(table.db().Key(0), "slum");
  EXPECT_EQ(table.db().Key(1), "slum");
  EXPECT_EQ(table.db().Key(2), "");
}

TEST(PredicateTableTest, DeclareFixesIds) {
  PredicateTable table;
  const auto id0 = table.Declare(Predicate::Spatial("contains", "slum"));
  const auto id1 = table.Declare(Predicate::Attribute("murderRate", "high"));
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  // Re-declaring returns the same id.
  EXPECT_EQ(table.Declare(Predicate::Spatial("contains", "slum")), id0);
  // Setting later reuses the declared id.
  const size_t r = table.AddRow("row");
  ASSERT_TRUE(table.SetSpatial(r, "contains", "slum").ok());
  EXPECT_EQ(table.NumPredicates(), 2u);
}

TEST(PredicateTableTest, SetOutOfRangeRow) {
  PredicateTable table;
  EXPECT_EQ(table.SetSpatial(0, "contains", "slum").code(),
            StatusCode::kOutOfRange);
}

TEST(PredicateTableTest, CountSameFeatureTypePairs) {
  PredicateTable table;
  table.Declare(Predicate::Spatial("contains", "slum"));
  table.Declare(Predicate::Spatial("touches", "slum"));
  table.Declare(Predicate::Spatial("overlaps", "slum"));
  table.Declare(Predicate::Spatial("contains", "school"));
  table.Declare(Predicate::Spatial("touches", "school"));
  table.Declare(Predicate::Attribute("murderRate", "high"));
  table.Declare(Predicate::Attribute("murderRate", "low"));
  // C(3,2) + C(2,2) = 3 + 1; attribute values never pair.
  EXPECT_EQ(table.CountSameFeatureTypePairs(), 4u);
}

TEST(PredicateTableTest, RowPredicatesRoundTrip) {
  PredicateTable table;
  const size_t r = table.AddRow("row");
  ASSERT_TRUE(table.SetSpatial(r, "contains", "slum").ok());
  ASSERT_TRUE(table.SetAttribute(r, "theftRate", "low").ok());
  const auto preds = table.RowPredicates(r);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], Predicate::Spatial("contains", "slum"));
  EXPECT_EQ(preds[1], Predicate::Attribute("theftRate", "low"));
}

TEST(PredicateTableTest, ToStringListsRows) {
  PredicateTable table;
  const size_t r = table.AddRow("Teresopolis");
  ASSERT_TRUE(table.SetSpatial(r, "contains", "slum").ok());
  const std::string s = table.ToString();
  EXPECT_NE(s.find("Teresopolis"), std::string::npos);
  EXPECT_NE(s.find("contains_slum"), std::string::npos);
}

}  // namespace
}  // namespace feature
}  // namespace sfpm
