#include "feature/predicate.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace feature {
namespace {

TEST(PredicateTest, SpatialLabelAndKey) {
  const Predicate p = Predicate::Spatial("contains", "slum");
  EXPECT_TRUE(p.is_spatial());
  EXPECT_EQ(p.Label(), "contains_slum");
  EXPECT_EQ(p.Key(), "slum");
  EXPECT_EQ(p.relation(), "contains");
  EXPECT_EQ(p.feature_type(), "slum");
}

TEST(PredicateTest, AttributeLabelAndEmptyKey) {
  const Predicate p = Predicate::Attribute("murderRate", "high");
  EXPECT_FALSE(p.is_spatial());
  EXPECT_EQ(p.Label(), "murderRate=high");
  EXPECT_EQ(p.Key(), "");
  EXPECT_EQ(p.value(), "high");
}

TEST(PredicateTest, SameFeatureType) {
  const Predicate a = Predicate::Spatial("contains", "slum");
  const Predicate b = Predicate::Spatial("touches", "slum");
  const Predicate c = Predicate::Spatial("touches", "school");
  const Predicate d = Predicate::Attribute("slum", "x");
  EXPECT_TRUE(a.SameFeatureType(b));
  EXPECT_TRUE(b.SameFeatureType(a));
  EXPECT_FALSE(a.SameFeatureType(c));
  EXPECT_FALSE(a.SameFeatureType(d));  // Attribute never groups.
  EXPECT_FALSE(d.SameFeatureType(d));
}

TEST(PredicateTest, FromLabelSpatial) {
  const auto p = Predicate::FromLabel("touches_policeCenter");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), Predicate::Spatial("touches", "policeCenter"));
}

TEST(PredicateTest, FromLabelUnderscoreInType) {
  const auto p = Predicate::FromLabel("contains_police_center");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().relation(), "contains");
  EXPECT_EQ(p.value().feature_type(), "police_center");
}

TEST(PredicateTest, FromLabelAttribute) {
  const auto p = Predicate::FromLabel("theftRate=low");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value(), Predicate::Attribute("theftRate", "low"));
}

TEST(PredicateTest, FromLabelRoundTrip) {
  for (const Predicate& p :
       {Predicate::Spatial("overlaps", "slum"),
        Predicate::Attribute("murderRate", "high")}) {
    const auto back = Predicate::FromLabel(p.Label());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), p);
  }
}

TEST(PredicateTest, FromLabelErrors) {
  EXPECT_FALSE(Predicate::FromLabel("").ok());
  EXPECT_FALSE(Predicate::FromLabel("nounderscore").ok());
  EXPECT_FALSE(Predicate::FromLabel("_slum").ok());
  EXPECT_FALSE(Predicate::FromLabel("contains_").ok());
  EXPECT_FALSE(Predicate::FromLabel("=high").ok());
  EXPECT_FALSE(Predicate::FromLabel("murderRate=").ok());
}

}  // namespace
}  // namespace feature
}  // namespace sfpm
