#include "feature/window.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/tiles.h"
#include "feature/extractor.h"
#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "geom/geometry.h"
#include "store/writer.h"

namespace sfpm {
namespace feature {
namespace {

using geom::Envelope;
using geom::LinearRing;
using geom::Point;
using geom::Polygon;

Polygon Square(double x0, double y0, double size) {
  return Polygon(LinearRing(
      {{x0, y0}, {x0 + size, y0}, {x0 + size, y0 + size}, {x0, y0 + size}}));
}

TEST(WindowLayerTest, KeepsIntersectingFeaturesRenumbered) {
  Layer layer("slum");
  layer.Add(Square(0, 0, 2));    // Inside the window.
  layer.Add(Square(50, 50, 2));  // Far outside.
  layer.Add(Square(9, 9, 4));    // Straddles the window edge.
  Envelope window;
  window.ExpandToInclude(Point(0, 0));
  window.ExpandToInclude(Point(10, 10));

  const Layer cut = WindowLayer(layer, window);
  ASSERT_EQ(cut.Size(), 2u);
  EXPECT_EQ(cut.feature_type(), "slum");
  // Renumbered from 0, relative order preserved.
  EXPECT_EQ(cut.at(0).id(), 0u);
  EXPECT_EQ(cut.at(1).id(), 1u);
  EXPECT_EQ(cut.at(0).geometry().GetEnvelope().min_x(), 0.0);
  EXPECT_EQ(cut.at(1).geometry().GetEnvelope().min_x(), 9.0);
}

TEST(SubsetLayerTest, InjectsFallbackRowNames) {
  Layer layer("district");
  layer.Add(Square(0, 0, 1), {{"rate", "high"}});
  layer.Add(Square(2, 0, 1), {{"name", "Cristal"}});
  layer.Add(Square(4, 0, 1));

  const Layer subset = SubsetLayer(layer, {1, 2}, true);
  ASSERT_EQ(subset.Size(), 2u);
  // Existing names survive; missing ones become the full-layer fallback
  // "<type><original id>" — not the renumbered id.
  EXPECT_EQ(subset.at(0).Attribute("name").value(), "Cristal");
  EXPECT_EQ(subset.at(1).Attribute("name").value(), "district2");
}

TEST(SubsetLayerTest, WithoutNamePreservationCopiesVerbatim) {
  Layer layer("district");
  layer.Add(Square(0, 0, 1), {{"rate", "low"}});
  const Layer subset = SubsetLayer(layer, {0}, false);
  ASSERT_EQ(subset.Size(), 1u);
  EXPECT_FALSE(subset.at(0).Attribute("name").ok());
  EXPECT_EQ(subset.at(0).Attribute("rate").value(), "low");
}

/// The identity the whole sharded pipeline rests on: extracting a tile's
/// owned rows over halo-windowed relevant layers, then merging row
/// tables back in global order, reproduces the full-layer extraction —
/// including item-id assignment — byte for byte. Canonical candidate
/// order is what makes the tile rows pure functions of their candidate
/// sets; this test runs a deliberately contact-heavy mini city through
/// both paths.
TEST(WindowExtractionTest, TileExtractionMatchesFullRunByteForByte) {
  Layer districts("district");
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 2; ++y) {
      districts.Add(Square(x * 10.0, y * 10.0, 10.0),
                    {{"rate", (x + y) % 2 ? "high" : "low"}});
    }
  }
  Layer slums("slum");
  slums.Add(Square(2, 2, 3));     // Inside district (0,0).
  slums.Add(Square(8, 8, 4));     // Straddles four districts.
  slums.Add(Square(18, 3, 4));    // Straddles a vertical border.
  slums.Add(Square(30, 10, 5));   // Touches the top-right corner region.
  slums.Add(Square(35, 5, 4));

  ExtractorOptions options;
  options.parallelism = 1;
  options.canonical_candidate_order = true;

  PredicateExtractor full(&districts);
  full.AddRelevantLayer(&slums);
  auto full_table = full.Extract(options);
  ASSERT_TRUE(full_table.ok()) << full_table.status().message();

  for (const int shards : {2, 3, 4, 8}) {
    PredicateTable merged_by_row;
    const auto tiles = datagen::PartitionReference(districts, shards);
    // Extract each tile, then replay rows in global order exactly as
    // store::MergeTileTables does.
    std::vector<PredicateTable> tables;
    std::vector<std::vector<uint64_t>> rows;
    for (const auto& tile : tiles) {
      const Layer tile_ref = SubsetLayer(districts, tile.refs, true);
      const Layer tile_rel = WindowLayer(slums, tile.window);
      PredicateExtractor ex(&tile_ref);
      ex.AddRelevantLayer(&tile_rel);
      auto t = ex.Extract(options);
      ASSERT_TRUE(t.ok()) << t.status().message();
      tables.push_back(std::move(t).value());
      rows.push_back(tile.refs);
    }
    for (uint64_t g = 0; g < districts.Size(); ++g) {
      for (size_t t = 0; t < tables.size(); ++t) {
        for (size_t l = 0; l < rows[t].size(); ++l) {
          if (rows[t][l] != g) continue;
          const size_t row = merged_by_row.AddRow(tables[t].RowName(l));
          for (const Predicate& p : tables[t].RowPredicates(l)) {
            ASSERT_TRUE(merged_by_row.Set(row, p).ok());
          }
        }
      }
    }
    store::SnapshotWriter a;
    a.AddTable(full_table.value());
    store::SnapshotWriter b;
    b.AddTable(merged_by_row);
    EXPECT_EQ(a.Serialize(), b.Serialize()) << shards << " shards";
  }
}

}  // namespace
}  // namespace feature
}  // namespace sfpm
