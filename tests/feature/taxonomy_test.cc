#include "feature/taxonomy.h"

#include <gtest/gtest.h>

#include "core/apriori.h"

namespace sfpm {
namespace feature {
namespace {

Taxonomy SlumTaxonomy() {
  Taxonomy t;
  // Instance granularity -> type granularity -> theme granularity.
  EXPECT_TRUE(t.AddIsA("slum159", "slum").ok());
  EXPECT_TRUE(t.AddIsA("slum174", "slum").ok());
  EXPECT_TRUE(t.AddIsA("slum180", "slum").ok());
  EXPECT_TRUE(t.AddIsA("school20", "school").ok());
  EXPECT_TRUE(t.AddIsA("slum", "informalSettlement").ok());
  return t;
}

TEST(TaxonomyTest, ParentsAndAncestors) {
  const Taxonomy t = SlumTaxonomy();
  EXPECT_EQ(t.ParentOf("slum159").value(), "slum");
  EXPECT_EQ(t.ParentOf("slum").value(), "informalSettlement");
  EXPECT_FALSE(t.ParentOf("informalSettlement").ok());
  EXPECT_FALSE(t.ParentOf("unknown").ok());
  EXPECT_EQ(t.AncestorsOf("slum159"),
            (std::vector<std::string>{"slum", "informalSettlement"}));
  EXPECT_EQ(t.RootOf("slum159"), "informalSettlement");
  EXPECT_EQ(t.RootOf("unknown"), "unknown");
}

TEST(TaxonomyTest, GeneralizeByLevels) {
  const Taxonomy t = SlumTaxonomy();
  EXPECT_EQ(t.Generalize("slum159", 0), "slum159");
  EXPECT_EQ(t.Generalize("slum159", 1), "slum");
  EXPECT_EQ(t.Generalize("slum159", 2), "informalSettlement");
  EXPECT_EQ(t.Generalize("slum159", 99), "informalSettlement");
  EXPECT_EQ(t.Generalize("unknown", 3), "unknown");
}

TEST(TaxonomyTest, RejectsConflictsAndCycles) {
  Taxonomy t;
  ASSERT_TRUE(t.AddIsA("a", "b").ok());
  ASSERT_TRUE(t.AddIsA("b", "c").ok());
  EXPECT_TRUE(t.AddIsA("a", "b").ok());  // Idempotent.
  EXPECT_EQ(t.AddIsA("a", "x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.AddIsA("c", "a").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.AddIsA("x", "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.Size(), 2u);
}

/// Instance-granularity table like the paper's Nonoai description:
/// touches slum180, covers slum183-ish, contains slum159 — plus schools.
PredicateTable InstanceTable() {
  PredicateTable table;
  const size_t nonoai = table.AddRow("Nonoai");
  Status st = table.SetSpatial(nonoai, "contains", "slum159");
  st = table.SetSpatial(nonoai, "touches", "slum180");
  st = table.SetSpatial(nonoai, "overlaps", "slum174");
  st = table.SetSpatial(nonoai, "contains", "school20");
  st = table.SetAttribute(nonoai, "murderRate", "high");

  const size_t cristal = table.AddRow("Cristal");
  st = table.SetSpatial(cristal, "contains", "slum174");
  st = table.SetSpatial(cristal, "contains", "school20");
  st = table.SetAttribute(cristal, "murderRate", "high");
  (void)st;
  return table;
}

TEST(GeneralizeTableTest, InstanceToTypeGranularity) {
  const PredicateTable instance = InstanceTable();
  // At instance granularity only overlaps_slum174/contains_slum174 share
  // a feature type (the same instance seen from two districts).
  EXPECT_EQ(instance.CountSameFeatureTypePairs(), 1u);

  const PredicateTable type_level =
      GeneralizeTable(instance, SlumTaxonomy(), 1);
  EXPECT_EQ(type_level.NumRows(), 2u);
  // contains_slum159 and contains_slum174 merged into contains_slum.
  const auto contains_slum = type_level.db().FindItem("contains_slum");
  ASSERT_TRUE(contains_slum.ok());
  EXPECT_EQ(type_level.db().Support(contains_slum.value()), 2u);
  // Same-feature-type pairs now exist (contains/touches/overlaps slum).
  EXPECT_EQ(type_level.CountSameFeatureTypePairs(), 3u);
  // Attribute predicates pass through.
  EXPECT_TRUE(type_level.db().FindItem("murderRate=high").ok());
}

TEST(GeneralizeTableTest, MiningGeneralizedTableFiltersSameType) {
  const PredicateTable type_level =
      GeneralizeTable(InstanceTable(), SlumTaxonomy(), 1);
  const auto plain = core::MineApriori(type_level.db(), 1.0 / 2.0);
  const auto kcplus = core::MineAprioriKCPlus(type_level.db(), 1.0 / 2.0);
  ASSERT_TRUE(plain.ok() && kcplus.ok());
  EXPECT_GE(plain.value().CountAtLeast(2), kcplus.value().CountAtLeast(2));

  // The meaningless pair is gone after filtering.
  const auto cs = type_level.db().FindItem("contains_slum");
  const auto ts = type_level.db().FindItem("touches_slum");
  ASSERT_TRUE(cs.ok() && ts.ok());
  EXPECT_FALSE(
      kcplus.value()
          .SupportOf(core::Itemset({cs.value(), ts.value()}))
          .has_value());
}

TEST(GeneralizeTableTest, SecondLevelMergesFurther) {
  Taxonomy t = SlumTaxonomy();
  ASSERT_TRUE(t.AddIsA("school", "publicService").ok());
  const PredicateTable theme_level = GeneralizeTable(InstanceTable(), t, 2);
  EXPECT_TRUE(theme_level.db().FindItem("contains_informalSettlement").ok());
  EXPECT_TRUE(theme_level.db().FindItem("contains_publicService").ok());
  EXPECT_FALSE(theme_level.db().FindItem("contains_slum").ok());
}

TEST(GeneralizeTableTest, ZeroLevelsIsIdentity) {
  const PredicateTable instance = InstanceTable();
  const PredicateTable same = GeneralizeTable(instance, SlumTaxonomy(), 0);
  EXPECT_EQ(same.ToString(), instance.ToString());
}

}  // namespace
}  // namespace feature
}  // namespace sfpm
