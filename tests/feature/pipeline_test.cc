#include "feature/pipeline.h"

#include <gtest/gtest.h>

#include "datagen/city.h"

namespace sfpm {
namespace feature {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    datagen::CityConfig config;
    config.grid_cols = 5;
    config.grid_rows = 4;
    config.num_slums = 25;
    config.num_schools = 30;
    config.num_police = 6;
    config.num_streets = 15;
    config.seed = 77;
    city_ = datagen::GenerateCity(config);
  }

  SpatialAssociationPipeline MakePipeline() const {
    SpatialAssociationPipeline pipeline(&city_->districts);
    pipeline.AddRelevantLayer(&city_->slums);
    pipeline.AddRelevantLayer(&city_->schools);
    pipeline.AddRelevantLayer(&city_->streets);
    pipeline.AddRelevantLayer(&city_->illumination);
    pipeline.AddDependency("street", "illuminationPoint");
    return pipeline;
  }

  std::unique_ptr<datagen::City> city_;
};

TEST_F(PipelineTest, RunsEndToEnd) {
  const SpatialAssociationPipeline pipeline = MakePipeline();
  PipelineOptions options;
  options.min_support = 0.1;
  options.rules = core::RuleOptions{};
  options.rules->min_confidence = 0.7;

  const auto result = pipeline.Run(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().table.NumRows(), city_->districts.Size());
  EXPECT_GT(result.value().mining.CountAtLeast(2), 0u);
  EXPECT_FALSE(result.value().rules.empty());
}

TEST_F(PipelineTest, FilterLevelsAreOrdered) {
  const SpatialAssociationPipeline pipeline = MakePipeline();
  PipelineOptions options;
  options.min_support = 0.1;

  size_t counts[3];
  const FilterLevel levels[] = {FilterLevel::kNone, FilterLevel::kKc,
                                FilterLevel::kKcPlus};
  for (int i = 0; i < 3; ++i) {
    options.filter_level = levels[i];
    const auto result = pipeline.Run(options);
    ASSERT_TRUE(result.ok());
    counts[i] = result.value().mining.CountAtLeast(2);
  }
  EXPECT_GE(counts[0], counts[1]);  // Apriori >= KC.
  EXPECT_GT(counts[1], counts[2]);  // KC > KC+ (same-type pairs abound).
}

TEST_F(PipelineTest, FpGrowthMatchesApriori) {
  const SpatialAssociationPipeline pipeline = MakePipeline();
  PipelineOptions options;
  options.min_support = 0.12;

  options.algorithm = MiningAlgorithm::kApriori;
  const auto apriori = pipeline.Run(options);
  options.algorithm = MiningAlgorithm::kFpGrowth;
  const auto fp = pipeline.Run(options);
  ASSERT_TRUE(apriori.ok() && fp.ok());
  EXPECT_EQ(apriori.value().mining.CountAtLeast(1),
            fp.value().mining.CountAtLeast(1));
  for (const core::FrequentItemset& fi :
       apriori.value().mining.itemsets()) {
    EXPECT_EQ(fp.value().mining.SupportOf(fi.items).value_or(0xFFFFFFFF),
              fi.support)
        << fi.items.ToString();
  }
}

TEST_F(PipelineTest, NoRulesWhenNotRequested) {
  const SpatialAssociationPipeline pipeline = MakePipeline();
  PipelineOptions options;
  options.min_support = 0.2;
  const auto result = pipeline.Run(options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rules.empty());
}

TEST_F(PipelineTest, MineTableEntryPoint) {
  const SpatialAssociationPipeline pipeline = MakePipeline();
  PipelineOptions options;
  options.min_support = 0.15;
  const auto extracted = pipeline.Run(options);
  ASSERT_TRUE(extracted.ok());

  // Re-mining the produced table gives the same counts.
  const auto remined =
      pipeline.MineTable(extracted.value().table, options);
  ASSERT_TRUE(remined.ok());
  EXPECT_EQ(remined.value().mining.CountAtLeast(2),
            extracted.value().mining.CountAtLeast(2));
}

TEST(PipelineErrorTest, EmptyReferenceLayer) {
  Layer empty("district");
  SpatialAssociationPipeline pipeline(&empty);
  EXPECT_FALSE(pipeline.Run(PipelineOptions()).ok());
}

}  // namespace
}  // namespace feature
}  // namespace sfpm
