#include "core/fpgrowth.h"

#include <gtest/gtest.h>

#include <map>

#include "datagen/paper_example.h"
#include "util/random.h"

namespace sfpm {
namespace core {
namespace {

std::map<Itemset, uint32_t> AsMap(const AprioriResult& result) {
  std::map<Itemset, uint32_t> out;
  for (const FrequentItemset& fi : result.itemsets()) {
    out.emplace(fi.items, fi.support);
  }
  return out;
}

TransactionDb RandomDb(uint64_t seed, size_t num_items, size_t num_tx,
                       double density, size_t key_group = 0) {
  Rng rng(seed);
  TransactionDb db;
  for (size_t i = 0; i < num_items; ++i) {
    std::string key =
        key_group > 0 ? "g" + std::to_string(i / key_group) : "";
    db.AddItem("item" + std::to_string(i), key);
  }
  for (size_t t = 0; t < num_tx; ++t) {
    const size_t row = db.AddTransaction();
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.NextBool(density)) {
        EXPECT_TRUE(db.SetItem(row, static_cast<ItemId>(i)).ok());
      }
    }
  }
  return db;
}

TEST(FpGrowthTest, ClassicExample) {
  TransactionDb db;
  const ItemId i1 = db.AddItem("i1");
  const ItemId i2 = db.AddItem("i2");
  const ItemId i3 = db.AddItem("i3");
  const ItemId i4 = db.AddItem("i4");
  const ItemId i5 = db.AddItem("i5");
  db.AddTransaction({i1, i2, i5});
  db.AddTransaction({i2, i4});
  db.AddTransaction({i2, i3});
  db.AddTransaction({i1, i2, i4});
  db.AddTransaction({i1, i3});
  db.AddTransaction({i2, i3});
  db.AddTransaction({i1, i3});
  db.AddTransaction({i1, i2, i3, i5});
  db.AddTransaction({i1, i2, i3});

  const auto result = MineFpGrowth(db, 2.0 / 9.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().OfSize(1).size(), 5u);
  EXPECT_EQ(result.value().OfSize(2).size(), 6u);
  EXPECT_EQ(result.value().OfSize(3).size(), 2u);
  EXPECT_EQ(result.value().SupportOf(Itemset({i1, i2, i5})).value_or(0), 2u);
}

TEST(FpGrowthTest, InvalidArguments) {
  TransactionDb db;
  db.AddItem("a");
  EXPECT_FALSE(MineFpGrowth(db, 0.5).ok());
  db.AddTransaction({0});
  EXPECT_FALSE(MineFpGrowth(db, 0.0).ok());
  EXPECT_FALSE(MineFpGrowth(db, 1.5).ok());
}

class FpGrowthVsAprioriTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(FpGrowthVsAprioriTest, IdenticalResults) {
  const auto [seed, minsup] = GetParam();
  const TransactionDb db = RandomDb(seed, 14, 80, 0.3);
  const auto apriori = MineApriori(db, minsup);
  const auto fp = MineFpGrowth(db, minsup);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(AsMap(apriori.value()), AsMap(fp.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FpGrowthVsAprioriTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(0.05, 0.15, 0.4)));

class FpGrowthFilteredTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FpGrowthFilteredTest, SameKeyFilterMatchesAprioriKCPlus) {
  // The paper's claim: the same-feature-type step works inside any
  // frequent itemset algorithm. FP-Growth with the filter must equal
  // Apriori-KC+ exactly.
  const TransactionDb db = RandomDb(GetParam(), 12, 60, 0.35,
                                    /*key_group=*/3);
  const SameKeyFilter same_key(db);
  AprioriOptions options;
  options.min_support = 0.15;
  options.filters.push_back(&same_key);

  const auto apriori = MineApriori(db, options);
  const auto fp = MineFpGrowth(db, options);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(AsMap(apriori.value()), AsMap(fp.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpGrowthFilteredTest,
                         ::testing::Values(7u, 8u, 9u, 10u));

TEST(FpGrowthFilteredTest, BlocklistMatchesAprioriKC) {
  const TransactionDb db = RandomDb(42, 10, 60, 0.4);
  const PairBlocklistFilter phi({{0, 1}, {2, 3}, {4, 7}});
  AprioriOptions options;
  options.min_support = 0.2;
  options.filters.push_back(&phi);

  const auto apriori = MineApriori(db, options);
  const auto fp = MineFpGrowth(db, options);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(AsMap(apriori.value()), AsMap(fp.value()));
}

TEST(FpGrowthTest, MaxItemsetSizeCap) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  for (int i = 0; i < 4; ++i) db.AddTransaction({a, b, c});
  AprioriOptions options;
  options.min_support = 0.5;
  options.max_itemset_size = 2;
  const auto result = MineFpGrowth(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().MaxItemsetSize(), 2u);
}

TEST(FpGrowthTest, PaperTable2Reproduction) {
  const auto table = datagen::MakePaperTable1();
  const auto result = MineFpGrowth(table.db(), 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().CountAtLeast(2), 60u);

  AprioriOptions options;
  options.min_support = 0.5;
  const SameKeyFilter same_key(table.db());
  options.filters.push_back(&same_key);
  const auto filtered = MineFpGrowth(table.db(), options);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered.value().CountAtLeast(2), 30u);
}

}  // namespace
}  // namespace core
}  // namespace sfpm
