#include "core/support_counter.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/apriori.h"
#include "core/transaction_db.h"
#include "util/random.h"

namespace sfpm {
namespace core {
namespace {

// A random database with the given shape; density is the per-(row, item)
// presence probability.
TransactionDb RandomDb(size_t transactions, size_t items, double density,
                       uint64_t seed) {
  TransactionDb db;
  for (size_t i = 0; i < items; ++i) {
    db.AddItem("item" + std::to_string(i));
  }
  Rng rng(seed);
  for (size_t t = 0; t < transactions; ++t) {
    db.AddTransaction();
    for (ItemId i = 0; i < items; ++i) {
      if (rng.NextDouble() < density) {
        EXPECT_TRUE(db.SetItem(t, i).ok());
      }
    }
  }
  return db;
}

// A sorted, prefix-grouped candidate list like apriori_gen's: every
// 2-subset of the items, then every 3-subset of the first 10, then a few
// singles — mixed sizes, so the counter's per-candidate prefix check is
// exercised, not just the homogeneous-pass case.
std::vector<Itemset> SortedCandidates(size_t items) {
  std::vector<Itemset> out;
  for (ItemId a = 0; a < items; ++a) {
    for (ItemId b = a + 1; b < items; ++b) out.push_back({a, b});
  }
  const ItemId triple_limit = static_cast<ItemId>(items < 10 ? items : 10);
  for (ItemId a = 0; a < triple_limit; ++a) {
    for (ItemId b = a + 1; b < triple_limit; ++b) {
      for (ItemId c = b + 1; c < triple_limit; ++c) out.push_back({a, b, c});
    }
  }
  for (ItemId a = 0; a < triple_limit; ++a) out.push_back({a});
  return out;
}

TEST(SupportOfWordsIntoTest, MatchesSupportOfWordsAndMaterializesTheAnd) {
  const TransactionDb db = RandomDb(500, 8, 0.4, 1);
  const std::vector<ItemId> items = {1, 3, 6};
  const Itemset set({1, 3, 6});
  for (const auto& [begin, end] : std::vector<std::pair<size_t, size_t>>{
           {0, db.NumWords()}, {1, db.NumWords() - 1}, {2, 3}, {4, 4}}) {
    std::vector<uint64_t> out(end > begin ? end - begin : 0);
    EXPECT_EQ(db.SupportOfWordsInto(items.data(), items.size(), begin, end,
                                    out.data()),
              db.SupportOfWords(set, begin, end));
    for (size_t w = begin; w < end; ++w) {
      EXPECT_EQ(out[w - begin], db.ColumnWords(1)[w] & db.ColumnWords(3)[w] &
                                    db.ColumnWords(6)[w]);
    }
  }
}

TEST(PrefixSupportCounterTest, MatchesNaiveCountsOnRandomDbs) {
  // Shapes straddle the interesting boundaries: under one word, exactly
  // two words, a partial final word, and a multi-block range.
  const std::vector<std::pair<size_t, double>> shapes = {
      {40, 0.5}, {128, 0.3}, {200, 0.7}, {5000, 0.15}};
  uint64_t seed = 10;
  for (const auto& [transactions, density] : shapes) {
    const TransactionDb db = RandomDb(transactions, 14, density, seed++);
    const std::vector<Itemset> candidates = SortedCandidates(14);
    const std::vector<std::pair<size_t, size_t>> ranges = {
        {0, db.NumWords()},
        {0, db.NumWords() / 2},
        {db.NumWords() / 2, db.NumWords()},
        {1, db.NumWords()}};
    PrefixSupportCounter counter;
    for (const auto& [begin, end] : ranges) {
      std::vector<uint32_t> counts(candidates.size(), 0);
      SupportCountStats stats;
      counter.Count(db, candidates, begin, end, counts.data(), &stats);
      for (size_t c = 0; c < candidates.size(); ++c) {
        EXPECT_EQ(counts[c], db.SupportOfWords(candidates[c], begin, end))
            << candidates[c].ToString() << " over words [" << begin << ", "
            << end << ") with " << transactions << " transactions";
      }
      EXPECT_EQ(stats.counted, candidates.size());
      if (begin < end) {  // Empty ranges never touch the cache.
        EXPECT_GT(stats.prefix_hits, 0u);
        EXPECT_GT(stats.prefix_misses, 0u);
      }
    }
  }
}

TEST(PrefixSupportCounterTest, MiningIsIdenticalWithAndWithoutTheCache) {
  const TransactionDb db = RandomDb(3000, 16, 0.5, 99);
  AprioriOptions reference_options;
  reference_options.min_support = 0.08;
  reference_options.parallelism = 1;
  reference_options.prefix_cache = false;
  const auto reference = MineApriori(db, reference_options);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference.value().itemsets().size(), 0u);
  ASSERT_GT(reference.value().MaxItemsetSize(), 2u);

  for (size_t parallelism : {size_t{1}, size_t{3}}) {
    AprioriOptions options;
    options.min_support = 0.08;
    options.parallelism = parallelism;
    options.prefix_cache = true;
    const auto mined = MineApriori(db, options);
    ASSERT_TRUE(mined.ok());
    ASSERT_EQ(mined.value().itemsets().size(),
              reference.value().itemsets().size());
    for (size_t i = 0; i < mined.value().itemsets().size(); ++i) {
      EXPECT_EQ(mined.value().itemsets()[i].items,
                reference.value().itemsets()[i].items);
      EXPECT_EQ(mined.value().itemsets()[i].support,
                reference.value().itemsets()[i].support);
    }
    EXPECT_GT(mined.value().stats().prefix_hits, 0u);
    EXPECT_GT(mined.value().stats().and_word_ops, 0u);
  }

  // The AND-op total is a work measure, not an event count: it must not
  // depend on how the word range was chunked across workers.
  AprioriOptions serial = reference_options;
  serial.prefix_cache = true;
  AprioriOptions parallel = serial;
  parallel.parallelism = 4;
  const auto serial_run = MineApriori(db, serial);
  const auto parallel_run = MineApriori(db, parallel);
  ASSERT_TRUE(serial_run.ok());
  ASSERT_TRUE(parallel_run.ok());
  EXPECT_EQ(serial_run.value().stats().and_word_ops,
            parallel_run.value().stats().and_word_ops);
}

}  // namespace
}  // namespace core
}  // namespace sfpm
