#include "core/apriori.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace core {
namespace {

/// The textbook dataset of Agrawal & Srikant's running example.
TransactionDb ClassicDb() {
  TransactionDb db;
  const ItemId i1 = db.AddItem("i1");
  const ItemId i2 = db.AddItem("i2");
  const ItemId i3 = db.AddItem("i3");
  const ItemId i4 = db.AddItem("i4");
  const ItemId i5 = db.AddItem("i5");
  db.AddTransaction({i1, i2, i5});
  db.AddTransaction({i2, i4});
  db.AddTransaction({i2, i3});
  db.AddTransaction({i1, i2, i4});
  db.AddTransaction({i1, i3});
  db.AddTransaction({i2, i3});
  db.AddTransaction({i1, i3});
  db.AddTransaction({i1, i2, i3, i5});
  db.AddTransaction({i1, i2, i3});
  return db;
}

TEST(AprioriTest, ClassicExampleFrequentItemsets) {
  const TransactionDb db = ClassicDb();
  const auto result = MineApriori(db, 2.0 / 9.0);
  ASSERT_TRUE(result.ok());
  const AprioriResult& r = result.value();

  // The canonical answer: L1 = 5 items, L2 = 6 pairs, L3 = 2 triples.
  EXPECT_EQ(r.OfSize(1).size(), 5u);
  EXPECT_EQ(r.OfSize(2).size(), 6u);
  EXPECT_EQ(r.OfSize(3).size(), 2u);
  EXPECT_EQ(r.MaxItemsetSize(), 3u);

  EXPECT_EQ(r.SupportOf(Itemset({0, 1})).value_or(0), 4u);    // {i1,i2}
  EXPECT_EQ(r.SupportOf(Itemset({0, 1, 4})).value_or(0), 2u); // {i1,i2,i5}
  EXPECT_EQ(r.SupportOf(Itemset({0, 1, 2})).value_or(0), 2u); // {i1,i2,i3}
  EXPECT_FALSE(r.SupportOf(Itemset({3, 4})).has_value());     // {i4,i5}
}

TEST(AprioriTest, MinSupportOneKeepsEverythingCommon) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  db.AddTransaction({a, b});
  db.AddTransaction({a, b});
  const auto r = MineApriori(db, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().itemsets().size(), 3u);  // a, b, ab.
}

TEST(AprioriTest, InvalidArguments) {
  TransactionDb db;
  db.AddItem("a");
  EXPECT_FALSE(MineApriori(db, 0.5).ok());  // Empty db.
  db.AddTransaction({0});
  EXPECT_FALSE(MineApriori(db, 0.0).ok());
  EXPECT_FALSE(MineApriori(db, -0.1).ok());
  EXPECT_FALSE(MineApriori(db, 1.5).ok());
  EXPECT_TRUE(MineApriori(db, 1.0).ok());
}

TEST(AprioriTest, SupportThresholdUsesCeiling) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  // a in 3/7 transactions (42.9%), b in 4/7 (57.1%).
  for (int i = 0; i < 3; ++i) db.AddTransaction({a});
  for (int i = 0; i < 4; ++i) db.AddTransaction({b});
  const auto r = MineApriori(db, 0.5);  // Needs ceil(3.5) = 4.
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().itemsets().size(), 1u);
  EXPECT_EQ(r.value().itemsets()[0].items, Itemset({b}));
}

TEST(AprioriTest, MaxItemsetSizeCap) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  for (int i = 0; i < 4; ++i) db.AddTransaction({a, b, c});
  AprioriOptions options;
  options.min_support = 0.5;
  options.max_itemset_size = 2;
  const auto r = MineApriori(db, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().MaxItemsetSize(), 2u);
  EXPECT_EQ(r.value().CountAtLeast(2), 3u);
}

TEST(AprioriTest, StatsTrackPasses) {
  const TransactionDb db = ClassicDb();
  const auto r = MineApriori(db, 2.0 / 9.0);
  ASSERT_TRUE(r.ok());
  const MiningStats& stats = r.value().stats();
  ASSERT_GE(stats.passes.size(), 3u);
  EXPECT_EQ(stats.passes[0].k, 1u);
  EXPECT_EQ(stats.passes[0].frequent, 5u);
  EXPECT_EQ(stats.passes[1].k, 2u);
  EXPECT_EQ(stats.passes[1].frequent, 6u);
  EXPECT_EQ(stats.passes[2].frequent, 2u);
  EXPECT_EQ(stats.total_frequent, 13u);
  EXPECT_EQ(stats.total_frequent_ge2, 8u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(AprioriFilterTest, SameKeyFilterPrunesPairsAndSuperset) {
  TransactionDb db;
  const ItemId cs = db.AddItem("contains_slum", "slum");
  const ItemId ts = db.AddItem("touches_slum", "slum");
  const ItemId mh = db.AddItem("murder=high");
  for (int i = 0; i < 4; ++i) db.AddTransaction({cs, ts, mh});

  const auto plain = MineApriori(db, 0.5);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().CountAtLeast(2), 4u);  // 3 pairs + 1 triple.

  const auto filtered = MineAprioriKCPlus(db, 0.5);
  ASSERT_TRUE(filtered.ok());
  // {cs,ts} pruned; the triple {cs,ts,mh} is never generated.
  EXPECT_EQ(filtered.value().CountAtLeast(2), 2u);
  EXPECT_FALSE(filtered.value().SupportOf(Itemset({cs, ts})).has_value());
  EXPECT_TRUE(filtered.value().SupportOf(Itemset({cs, mh})).has_value());
  EXPECT_TRUE(filtered.value().SupportOf(Itemset({ts, mh})).has_value());
}

TEST(AprioriFilterTest, NoInformationLossOnCrossTypeSets) {
  // The paper's argument: removing {A, B} with equal type keeps {A, C} and
  // {B, C} when they are frequent.
  TransactionDb db;
  const ItemId a = db.AddItem("contains_slum", "slum");
  const ItemId b = db.AddItem("touches_slum", "slum");
  const ItemId c = db.AddItem("murderRate=high");
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, c});
  db.AddTransaction({b, c});

  const auto r = MineAprioriKCPlus(db, 0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().SupportOf(Itemset({a, c})).value_or(0), 3u);
  EXPECT_EQ(r.value().SupportOf(Itemset({b, c})).value_or(0), 3u);
  EXPECT_FALSE(r.value().SupportOf(Itemset({a, b})).has_value());
}

TEST(AprioriFilterTest, BlocklistFilterPrunesDeclaredPairsOnly) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  for (int i = 0; i < 4; ++i) db.AddTransaction({a, b, c});

  const PairBlocklistFilter phi({{a, b}});
  const auto r = MineAprioriKC(db, 0.5, phi);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().SupportOf(Itemset({a, b})).has_value());
  EXPECT_TRUE(r.value().SupportOf(Itemset({a, c})).has_value());
  EXPECT_TRUE(r.value().SupportOf(Itemset({b, c})).has_value());
  EXPECT_FALSE(r.value().SupportOf(Itemset({a, b, c})).has_value());
}

TEST(AprioriFilterTest, BlocklistIsOrderInsensitive) {
  const PairBlocklistFilter phi({{3, 1}});
  EXPECT_TRUE(phi.PrunePair(1, 3));
  EXPECT_TRUE(phi.PrunePair(3, 1));
  EXPECT_FALSE(phi.PrunePair(1, 2));
  EXPECT_EQ(phi.NumPairs(), 1u);
}

TEST(AprioriFilterTest, SameKeyIgnoresEmptyKeys) {
  const SameKeyFilter filter(std::vector<std::string>{"", "", "slum", "slum"});
  EXPECT_FALSE(filter.PrunePair(0, 1));  // Both empty: no group.
  EXPECT_TRUE(filter.PrunePair(2, 3));
  EXPECT_FALSE(filter.PrunePair(1, 2));
}

TEST(AprioriResultTest, Accessors) {
  const TransactionDb db = ClassicDb();
  const auto r = MineApriori(db, 2.0 / 9.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().CountAtLeast(1), 13u);
  EXPECT_EQ(r.value().CountAtLeast(2), 8u);
  EXPECT_EQ(r.value().CountAtLeast(4), 0u);
}

}  // namespace
}  // namespace core
}  // namespace sfpm
