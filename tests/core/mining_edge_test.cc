// Edge cases the differential fuzzer's mining oracle exercises (see
// docs/TESTING.md): empty database, min_support at the domain edges,
// a transaction holding every item, and duplicate transactions — always
// asserting Apriori and FP-Growth agree and that supports are exact.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/apriori.h"
#include "core/fpgrowth.h"
#include "core/transaction_db.h"

namespace sfpm {
namespace core {
namespace {

/// Canonical (itemset -> support) map for order-independent comparison.
std::map<std::vector<ItemId>, uint32_t> Canonical(const AprioriResult& r) {
  std::map<std::vector<ItemId>, uint32_t> out;
  for (const FrequentItemset& f : r.itemsets()) {
    out[f.items.items()] = f.support;
  }
  return out;
}

void ExpectEnginesAgree(const TransactionDb& db, double min_support) {
  auto a = MineApriori(db, min_support);
  auto f = MineFpGrowth(db, min_support);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(f.ok()) << f.status().message();
  EXPECT_EQ(Canonical(a.value()), Canonical(f.value())) << "min_support=" << min_support;
}

TEST(MiningEdgeTest, EmptyDatabaseIsRejectedByBothEngines) {
  TransactionDb db;
  EXPECT_FALSE(MineApriori(db, 0.5).ok());
  EXPECT_FALSE(MineFpGrowth(db, 0.5).ok());
}

TEST(MiningEdgeTest, MinSupportZeroIsRejectedByBothEngines) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  db.AddTransaction({a});
  EXPECT_FALSE(MineApriori(db, 0.0).ok());
  EXPECT_FALSE(MineFpGrowth(db, 0.0).ok());
  EXPECT_FALSE(MineApriori(db, -0.1).ok());
  EXPECT_FALSE(MineApriori(db, 1.5).ok());
}

TEST(MiningEdgeTest, MinSupportOfWholeDatabase) {
  // min_support = 1.0 is an absolute threshold of |DB|: only itemsets
  // present in every transaction survive.
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  db.AddTransaction({a, b});
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, b});

  auto r = MineApriori(db, 1.0);
  ASSERT_TRUE(r.ok());
  const auto sets = Canonical(r.value());
  const uint32_t n = static_cast<uint32_t>(db.NumTransactions());
  ASSERT_EQ(sets.size(), 3u);  // {a}, {b}, {a,b}.
  EXPECT_EQ(sets.at({a}), n);
  EXPECT_EQ(sets.at({b}), n);
  EXPECT_EQ(sets.at(std::vector<ItemId>{std::min(a, b), std::max(a, b)}), n);
  ExpectEnginesAgree(db, 1.0);
}

TEST(MiningEdgeTest, TransactionWithEveryItem) {
  // One maximal transaction on top of sparse ones: every frequent set is
  // a subset of it, and each support counts it exactly once.
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  const ItemId d = db.AddItem("d");
  db.AddTransaction({a, b, c, d});
  db.AddTransaction({a, b});
  db.AddTransaction({c});
  db.AddTransaction({d, a});

  for (double ms : {0.25, 0.5, 0.75, 1.0}) {
    ExpectEnginesAgree(db, ms);
  }
  auto r = MineApriori(db, 0.25);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().SupportOf(Itemset({a})).value_or(0), 3u);
  EXPECT_EQ(r.value().SupportOf(Itemset({a, b})).value_or(0), 2u);
  EXPECT_EQ(r.value().SupportOf(Itemset({a, b, c, d})).value_or(0), 1u);
  // The maximal itemset is frequent only at threshold 1/|DB|.
  EXPECT_EQ(r.value().MaxItemsetSize(), 4u);
}

TEST(MiningEdgeTest, DuplicateTransactionsScaleSupportExactly) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  for (int i = 0; i < 5; ++i) db.AddTransaction({a, b});
  for (int i = 0; i < 3; ++i) db.AddTransaction({a});

  auto r = MineApriori(db, 0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().SupportOf(Itemset({a})).value_or(0), 8u);
  EXPECT_EQ(r.value().SupportOf(Itemset({a, b})).value_or(0), 5u);
  for (double ms : {0.1, 0.5, 1.0}) {
    ExpectEnginesAgree(db, ms);
  }
}

TEST(MiningEdgeTest, KCPlusAgreesWithPostFilteredApriori) {
  // Lemma 1 equivalence on an edge-shaped DB (duplicates + a maximal
  // row): Apriori-KC+ with no background knowledge equals classic
  // Apriori minus itemsets holding a same-key pair.
  TransactionDb db;
  const ItemId a = db.AddItem("rel(water,close)", "water");
  const ItemId b = db.AddItem("rel(water,far)", "water");
  const ItemId c = db.AddItem("rel(school,close)", "school");
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, c});

  auto plain = MineApriori(db, 0.5);
  auto kcplus = MineAprioriKCPlus(db, 0.5);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(kcplus.ok());

  std::map<std::vector<ItemId>, uint32_t> expected;
  for (const FrequentItemset& f : plain.value().itemsets()) {
    bool same_key_pair = false;
    const auto& items = f.items.items();
    for (size_t i = 0; i < items.size() && !same_key_pair; ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        if (db.Key(items[i]) == db.Key(items[j])) {
          same_key_pair = true;
          break;
        }
      }
    }
    if (!same_key_pair) expected[items] = f.support;
  }
  EXPECT_EQ(Canonical(kcplus.value()), expected);
}

}  // namespace
}  // namespace core
}  // namespace sfpm
