#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/apriori.h"
#include "util/random.h"

namespace sfpm {
namespace core {
namespace {

/// Exhaustive reference miner: enumerate all 2^n itemsets and count.
std::map<Itemset, uint32_t> BruteForceFrequent(const TransactionDb& db,
                                               double min_support) {
  const size_t n = db.NumItems();
  const uint32_t min_count = static_cast<uint32_t>(std::max<double>(
      1.0, std::ceil(min_support * static_cast<double>(db.NumTransactions()) -
                     1e-9)));
  std::map<Itemset, uint32_t> out;
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    std::vector<ItemId> items;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) items.push_back(static_cast<ItemId>(i));
    }
    const Itemset set(std::move(items));
    const uint32_t support = db.SupportOf(set);
    if (support >= min_count) out.emplace(set, support);
  }
  return out;
}

TransactionDb RandomDb(uint64_t seed, size_t num_items, size_t num_tx,
                       double density, size_t key_group = 0) {
  Rng rng(seed);
  TransactionDb db;
  for (size_t i = 0; i < num_items; ++i) {
    std::string key =
        key_group > 0 ? "g" + std::to_string(i / key_group) : "";
    db.AddItem("item" + std::to_string(i), key);
  }
  for (size_t t = 0; t < num_tx; ++t) {
    const size_t row = db.AddTransaction();
    for (size_t i = 0; i < num_items; ++i) {
      if (rng.NextBool(density)) {
        EXPECT_TRUE(db.SetItem(row, static_cast<ItemId>(i)).ok());
      }
    }
  }
  return db;
}

class AprioriVsBruteForceTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(AprioriVsBruteForceTest, IdenticalFrequentItemsets) {
  const auto [seed, min_support] = GetParam();
  const TransactionDb db = RandomDb(seed, 10, 60, 0.35);
  const auto result = MineApriori(db, min_support);
  ASSERT_TRUE(result.ok());

  const auto expected = BruteForceFrequent(db, min_support);
  EXPECT_EQ(result.value().itemsets().size(), expected.size());
  for (const FrequentItemset& fi : result.value().itemsets()) {
    const auto it = expected.find(fi.items);
    ASSERT_NE(it, expected.end()) << fi.items.ToString() << " not expected";
    EXPECT_EQ(fi.support, it->second) << fi.items.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AprioriVsBruteForceTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0.1, 0.25, 0.5)));

class KcPlusSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KcPlusSemanticsTest, EqualsAprioriMinusSameKeyItemsets) {
  // KC+ must produce exactly the Apriori itemsets that contain no
  // same-key pair — the paper's "eliminates the exact combinations" claim.
  const TransactionDb db = RandomDb(GetParam(), 9, 50, 0.4, /*key_group=*/3);
  const auto plain = MineApriori(db, 0.2);
  const auto kcplus = MineAprioriKCPlus(db, 0.2);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(kcplus.ok());

  auto has_same_key_pair = [&db](const Itemset& s) {
    for (size_t i = 0; i < s.size(); ++i) {
      for (size_t j = i + 1; j < s.size(); ++j) {
        if (!db.Key(s[i]).empty() && db.Key(s[i]) == db.Key(s[j])) {
          return true;
        }
      }
    }
    return false;
  };

  std::set<Itemset> expected;
  for (const FrequentItemset& fi : plain.value().itemsets()) {
    if (!has_same_key_pair(fi.items)) expected.insert(fi.items);
  }
  std::set<Itemset> got;
  for (const FrequentItemset& fi : kcplus.value().itemsets()) {
    got.insert(fi.items);
    // Support values must be identical to the unfiltered run.
    EXPECT_EQ(fi.support,
              plain.value().SupportOf(fi.items).value_or(0xFFFFFFFF));
  }
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KcPlusSemanticsTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

class KcSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KcSemanticsTest, EqualsAprioriMinusBlockedPairItemsets) {
  const TransactionDb db = RandomDb(GetParam(), 8, 50, 0.4);
  const std::vector<std::pair<ItemId, ItemId>> blocked = {{0, 1}, {2, 5}};
  const PairBlocklistFilter phi(blocked);

  const auto plain = MineApriori(db, 0.2);
  const auto kc = MineAprioriKC(db, 0.2, phi);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(kc.ok());

  auto contains_blocked = [&blocked](const Itemset& s) {
    for (const auto& [a, b] : blocked) {
      if (s.Contains(a) && s.Contains(b)) return true;
    }
    return false;
  };

  size_t expected_count = 0;
  for (const FrequentItemset& fi : plain.value().itemsets()) {
    if (!contains_blocked(fi.items)) ++expected_count;
  }
  EXPECT_EQ(kc.value().itemsets().size(), expected_count);
  for (const FrequentItemset& fi : kc.value().itemsets()) {
    EXPECT_FALSE(contains_blocked(fi.items)) << fi.items.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KcSemanticsTest,
                         ::testing::Values(5u, 6u, 7u));

TEST(AprioriAntiMonotoneTest, EverySubsetOfFrequentIsFrequent) {
  const TransactionDb db = RandomDb(99, 12, 80, 0.3);
  const auto result = MineApriori(db, 0.15);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& fi : result.value().itemsets()) {
    if (fi.items.size() < 2) continue;
    for (const Itemset& sub : fi.items.AllButOneSubsets()) {
      const auto support = result.value().SupportOf(sub);
      ASSERT_TRUE(support.has_value()) << sub.ToString();
      EXPECT_GE(*support, fi.support);  // Anti-monotone support.
    }
  }
}

TEST(AprioriMonotoneSupportTest, LowerMinsupIsSuperset) {
  const TransactionDb db = RandomDb(123, 10, 60, 0.35);
  const auto loose = MineApriori(db, 0.1);
  const auto tight = MineApriori(db, 0.3);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GE(loose.value().itemsets().size(), tight.value().itemsets().size());
  for (const FrequentItemset& fi : tight.value().itemsets()) {
    EXPECT_EQ(loose.value().SupportOf(fi.items).value_or(0xFFFFFFFF),
              fi.support);
  }
}

}  // namespace
}  // namespace core
}  // namespace sfpm
