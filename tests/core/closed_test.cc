#include "core/closed.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sfpm {
namespace core {
namespace {

TransactionDb ExampleDb() {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  // {a,b} always co-occur; c sometimes joins.
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, b});
  db.AddTransaction({a, b});
  return db;
}

TEST(ClosedTest, ClosureAbsorbsEqualSupportSubsets) {
  const auto mined = MineApriori(ExampleDb(), 0.5);
  ASSERT_TRUE(mined.ok());
  const auto closed = ClosedItemsets(mined.value());

  // Closed sets: {a,b} (support 4) and {a,b,c} (support 2).
  // a and b alone have support 4 = support({a,b}): not closed.
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].items, Itemset({0, 1}));
  EXPECT_EQ(closed[0].support, 4u);
  EXPECT_EQ(closed[1].items, Itemset({0, 1, 2}));
  EXPECT_EQ(closed[1].support, 2u);
}

TEST(ClosedTest, MaximalKeepsOnlyTops) {
  const auto mined = MineApriori(ExampleDb(), 0.5);
  ASSERT_TRUE(mined.ok());
  const auto maximal = MaximalItemsets(mined.value());
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0].items, Itemset({0, 1, 2}));
}

TEST(ClosedTest, MaximalSubsetOfClosed) {
  Rng rng(5);
  TransactionDb db;
  for (int i = 0; i < 8; ++i) db.AddItem("i" + std::to_string(i));
  for (int t = 0; t < 40; ++t) {
    const size_t row = db.AddTransaction();
    for (ItemId i = 0; i < 8; ++i) {
      if (rng.NextBool(0.4)) EXPECT_TRUE(db.SetItem(row, i).ok());
    }
  }
  const auto mined = MineApriori(db, 0.15);
  ASSERT_TRUE(mined.ok());

  const auto closed = ClosedItemsets(mined.value());
  const auto maximal = MaximalItemsets(mined.value());
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), mined.value().itemsets().size());

  // Every maximal itemset must be closed (no superset at all implies no
  // equal-support superset).
  for (const FrequentItemset& m : maximal) {
    bool found = false;
    for (const FrequentItemset& c : closed) {
      if (c.items == m.items) found = true;
    }
    EXPECT_TRUE(found) << m.items.ToString();
  }
}

TEST(ClosedTest, ClosedFamilyRecoversAllSupports) {
  // Losslessness: the support of any frequent itemset equals the max
  // support among closed supersets.
  Rng rng(7);
  TransactionDb db;
  for (int i = 0; i < 7; ++i) db.AddItem("i" + std::to_string(i));
  for (int t = 0; t < 30; ++t) {
    const size_t row = db.AddTransaction();
    for (ItemId i = 0; i < 7; ++i) {
      if (rng.NextBool(0.45)) EXPECT_TRUE(db.SetItem(row, i).ok());
    }
  }
  const auto mined = MineApriori(db, 0.2);
  ASSERT_TRUE(mined.ok());
  const auto closed = ClosedItemsets(mined.value());

  for (const FrequentItemset& fi : mined.value().itemsets()) {
    uint32_t best = 0;
    for (const FrequentItemset& c : closed) {
      if (c.items.ContainsAll(fi.items)) best = std::max(best, c.support);
    }
    EXPECT_EQ(best, fi.support) << fi.items.ToString();
  }
}

TEST(ClosedTest, EmptyResultHandled) {
  TransactionDb db;
  db.AddItem("a");
  db.AddTransaction({});
  const auto mined = MineApriori(db, 1.0);
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(ClosedItemsets(mined.value()).empty());
  EXPECT_TRUE(MaximalItemsets(mined.value()).empty());
}

}  // namespace
}  // namespace core
}  // namespace sfpm
