#include "core/transaction_db.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace core {
namespace {

TEST(TransactionDbTest, AddItemIdempotentByLabel) {
  TransactionDb db;
  const ItemId a = db.AddItem("contains_slum", "slum");
  const ItemId b = db.AddItem("touches_slum", "slum");
  const ItemId a2 = db.AddItem("contains_slum", "slum");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(db.NumItems(), 2u);
  EXPECT_EQ(db.Label(a), "contains_slum");
  EXPECT_EQ(db.Key(b), "slum");
}

TEST(TransactionDbTest, AddItemCheckedDetectsKeyConflict) {
  TransactionDb db;
  ASSERT_TRUE(db.AddItemChecked("x", "k1").ok());
  EXPECT_TRUE(db.AddItemChecked("x", "k1").ok());
  EXPECT_EQ(db.AddItemChecked("x", "k2").status().code(),
            StatusCode::kAlreadyExists);
}

TEST(TransactionDbTest, FindItem) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  EXPECT_EQ(db.FindItem("a").value(), a);
  EXPECT_EQ(db.FindItem("zzz").status().code(), StatusCode::kNotFound);
}

TEST(TransactionDbTest, SetAndTest) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const size_t r0 = db.AddTransaction();
  const size_t r1 = db.AddTransaction();
  ASSERT_TRUE(db.SetItem(r0, a).ok());
  ASSERT_TRUE(db.SetItem(r1, b).ok());
  EXPECT_TRUE(db.Test(r0, a));
  EXPECT_FALSE(db.Test(r0, b));
  EXPECT_TRUE(db.Test(r1, b));
}

TEST(TransactionDbTest, OutOfRangeErrors) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  EXPECT_EQ(db.SetItem(0, a).code(), StatusCode::kOutOfRange);
  const size_t row = db.AddTransaction();
  EXPECT_EQ(db.SetItem(row, 99).code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(db.Test(5, a));
}

TEST(TransactionDbTest, SupportCounting) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  db.AddTransaction({a, b});
  db.AddTransaction({a});
  db.AddTransaction({a, b, c});
  db.AddTransaction({b, c});

  EXPECT_EQ(db.Support(a), 3u);
  EXPECT_EQ(db.Support(b), 3u);
  EXPECT_EQ(db.Support(c), 2u);
  EXPECT_EQ(db.SupportOf(Itemset({a, b})), 2u);
  EXPECT_EQ(db.SupportOf(Itemset({a, b, c})), 1u);
  EXPECT_EQ(db.SupportOf(Itemset({a, c})), 1u);
  EXPECT_EQ(db.SupportOf(Itemset()), 4u);
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset({a})), 0.75);
}

TEST(TransactionDbTest, ItemAddedAfterTransactionsHasEmptyColumn) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  db.AddTransaction({a});
  db.AddTransaction({a});
  const ItemId late = db.AddItem("late");
  EXPECT_EQ(db.Support(late), 0u);
  const size_t r = db.AddTransaction();
  ASSERT_TRUE(db.SetItem(r, late).ok());
  EXPECT_EQ(db.Support(late), 1u);
  EXPECT_EQ(db.Support(a), 2u);
}

TEST(TransactionDbTest, ManyTransactionsCrossWordBoundaries) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  // 200 transactions spans 4 bitmap words.
  for (int i = 0; i < 200; ++i) {
    const size_t r = db.AddTransaction();
    if (i % 2 == 0) ASSERT_TRUE(db.SetItem(r, a).ok());
    if (i % 3 == 0) ASSERT_TRUE(db.SetItem(r, b).ok());
  }
  EXPECT_EQ(db.Support(a), 100u);
  EXPECT_EQ(db.Support(b), 67u);
  EXPECT_EQ(db.SupportOf(Itemset({a, b})), 34u);  // Multiples of 6.
}

TEST(TransactionDbTest, TransactionItemsRoundTrip) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  const size_t r = db.AddTransaction({c, a});
  EXPECT_EQ(db.TransactionItems(r), (std::vector<ItemId>{a, c}));
  (void)b;
}

TEST(TransactionDbTest, EmptyDbFrequencies) {
  TransactionDb db;
  db.AddItem("a");
  EXPECT_DOUBLE_EQ(db.Frequency(Itemset({0})), 0.0);
  EXPECT_EQ(db.NumTransactions(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace sfpm
