#include <gtest/gtest.h>

#include "core/apriori.h"
#include "datagen/paper_example.h"

namespace sfpm {
namespace core {
namespace {

TEST(MiningStatsTest, FilteredCandidatesCountedAtK2Only) {
  const auto table = datagen::MakePaperTable1();
  const auto plain = MineApriori(table.db(), 0.5);
  const auto kcplus = MineAprioriKCPlus(table.db(), 0.5);
  ASSERT_TRUE(plain.ok() && kcplus.ok());

  // Unfiltered run never reports filtered candidates.
  for (const auto& pass : plain.value().stats().passes) {
    EXPECT_EQ(pass.filtered_candidates, 0u);
  }

  // KC+ filters exactly at k == 2 and nowhere else.
  bool saw_k2 = false;
  for (const auto& pass : kcplus.value().stats().passes) {
    if (pass.k == 2) {
      saw_k2 = true;
      EXPECT_GT(pass.filtered_candidates, 0u);
      EXPECT_LE(pass.filtered_candidates, pass.candidates);
    } else {
      EXPECT_EQ(pass.filtered_candidates, 0u) << "k=" << pass.k;
    }
  }
  EXPECT_TRUE(saw_k2);
}

TEST(MiningStatsTest, CandidateCountsShrinkWithFiltering) {
  const auto table = datagen::MakePaperTable1();
  const auto plain = MineApriori(table.db(), 0.5);
  const auto kcplus = MineAprioriKCPlus(table.db(), 0.5);
  ASSERT_TRUE(plain.ok() && kcplus.ok());

  auto total_counted = [](const MiningStats& stats) {
    size_t n = 0;
    for (const auto& pass : stats.passes) {
      n += pass.candidates - pass.filtered_candidates;
    }
    return n;
  };
  EXPECT_LT(total_counted(kcplus.value().stats()),
            total_counted(plain.value().stats()));

  // Fewer passes too: the largest KC+ itemset is smaller (4 vs 6).
  EXPECT_LT(kcplus.value().stats().passes.size(),
            plain.value().stats().passes.size());
}

TEST(MiningStatsTest, TotalsConsistentWithResult) {
  const auto table = datagen::MakePaperTable1();
  const auto result = MineApriori(table.db(), 0.5);
  ASSERT_TRUE(result.ok());
  const MiningStats& stats = result.value().stats();
  EXPECT_EQ(stats.total_frequent, result.value().itemsets().size());
  EXPECT_EQ(stats.total_frequent_ge2, result.value().CountAtLeast(2));
  size_t from_passes = 0;
  for (const auto& pass : stats.passes) from_passes += pass.frequent;
  EXPECT_EQ(from_passes, stats.total_frequent);
  EXPECT_GE(stats.total_millis, 0.0);
}

}  // namespace
}  // namespace core
}  // namespace sfpm
