#include "core/rules.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfpm {
namespace core {
namespace {

/// 4 transactions: {a,b} in 3, {a} alone in 1; c with b twice.
TransactionDb SmallDb() {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  db.AddTransaction({a, b});
  db.AddTransaction({a, b, c});
  db.AddTransaction({a, b, c});
  db.AddTransaction({a});
  return db;
}

TEST(RulesTest, ConfidenceAndSupport) {
  const TransactionDb db = SmallDb();
  const auto mined = MineApriori(db, 0.5);
  ASSERT_TRUE(mined.ok());

  RuleOptions options;
  options.min_confidence = 0.7;
  const auto rules = GenerateRules(db, mined.value(), options);

  // a -> b has confidence 3/4 = 0.75; b -> a has confidence 3/3 = 1.
  bool saw_a_to_b = false, saw_b_to_a = false;
  for (const AssociationRule& r : rules) {
    if (r.antecedent == Itemset({0}) && r.consequent == Itemset({1})) {
      saw_a_to_b = true;
      EXPECT_DOUBLE_EQ(r.confidence, 0.75);
      EXPECT_DOUBLE_EQ(r.support, 0.75);
      EXPECT_EQ(r.support_count, 3u);
      EXPECT_DOUBLE_EQ(r.lift, 0.75 / 0.75);
      EXPECT_DOUBLE_EQ(r.leverage, 0.75 - 1.0 * 0.75);
    }
    if (r.antecedent == Itemset({1}) && r.consequent == Itemset({0})) {
      saw_b_to_a = true;
      EXPECT_DOUBLE_EQ(r.confidence, 1.0);
      EXPECT_TRUE(std::isinf(r.conviction));
    }
  }
  EXPECT_TRUE(saw_a_to_b);
  EXPECT_TRUE(saw_b_to_a);
}

TEST(RulesTest, MinConfidenceFilters) {
  const TransactionDb db = SmallDb();
  const auto mined = MineApriori(db, 0.5);
  ASSERT_TRUE(mined.ok());

  RuleOptions strict;
  strict.min_confidence = 0.9;
  RuleOptions loose;
  loose.min_confidence = 0.1;
  EXPECT_LT(GenerateRules(db, mined.value(), strict).size(),
            GenerateRules(db, mined.value(), loose).size());
  for (const auto& r : GenerateRules(db, mined.value(), strict)) {
    EXPECT_GE(r.confidence, 0.9);
  }
}

TEST(RulesTest, SingleConsequentOption) {
  const TransactionDb db = SmallDb();
  const auto mined = MineApriori(db, 0.5);
  ASSERT_TRUE(mined.ok());

  RuleOptions options;
  options.min_confidence = 0.0;
  options.single_consequent = true;
  for (const auto& r : GenerateRules(db, mined.value(), options)) {
    EXPECT_EQ(r.consequent.size(), 1u);
  }
}

TEST(RulesTest, RuleCountForTriple) {
  // A single frequent triple yields 6 antecedent/consequent splits with
  // single-consequent off (2^3 - 2 = 6).
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  for (int i = 0; i < 3; ++i) db.AddTransaction({a, b, c});
  const auto mined = MineApriori(db, 1.0);
  ASSERT_TRUE(mined.ok());

  RuleOptions options;
  options.min_confidence = 0.0;
  const auto rules = GenerateRules(db, mined.value(), options);
  // 3 pairs contribute 2 rules each; the triple contributes 6.
  EXPECT_EQ(rules.size(), 12u);
}

TEST(RulesTest, ToStringUsesLabels) {
  TransactionDb db;
  const ItemId cs = db.AddItem("contains_slum", "slum");
  const ItemId mh = db.AddItem("murderRate=high");
  for (int i = 0; i < 3; ++i) db.AddTransaction({cs, mh});
  const auto mined = MineApriori(db, 1.0);
  ASSERT_TRUE(mined.ok());

  RuleOptions options;
  options.min_confidence = 0.5;
  const auto rules = GenerateRules(db, mined.value(), options);
  ASSERT_FALSE(rules.empty());
  bool found = false;
  for (const auto& r : rules) {
    if (r.ToString(db) == "contains_slum -> murderRate=high") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RulesTest, LiftBelowOneForNegativeCorrelation) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  // a and b mostly avoid each other.
  db.AddTransaction({a});
  db.AddTransaction({a});
  db.AddTransaction({a, b});
  db.AddTransaction({b});
  db.AddTransaction({b});

  const auto mined = MineApriori(db, 0.2);
  ASSERT_TRUE(mined.ok());
  RuleOptions options;
  options.min_confidence = 0.0;
  for (const auto& r : GenerateRules(db, mined.value(), options)) {
    if (r.antecedent == Itemset({a}) && r.consequent == Itemset({b})) {
      EXPECT_LT(r.lift, 1.0);
      EXPECT_LT(r.leverage, 0.0);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace sfpm
