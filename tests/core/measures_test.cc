#include "core/measures.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfpm {
namespace core {
namespace {

/// Fixed contingency table: n=100, A=40, C=50, AC=30.
Contingency Sample() {
  Contingency t;
  t.n = 100;
  t.n_a = 40;
  t.n_c = 50;
  t.n_ac = 30;
  return t;
}

TEST(MeasuresTest, BasicFrequencies) {
  const Contingency t = Sample();
  EXPECT_DOUBLE_EQ(t.Support(), 0.30);
  EXPECT_DOUBLE_EQ(t.Confidence(), 0.75);
  EXPECT_DOUBLE_EQ(t.Lift(), 30.0 * 100 / (40.0 * 50));  // 1.5
  EXPECT_DOUBLE_EQ(t.Leverage(), 0.30 - 0.40 * 0.50);    // 0.10
}

TEST(MeasuresTest, Conviction) {
  const Contingency t = Sample();
  EXPECT_DOUBLE_EQ(t.Conviction(), (1 - 0.5) / (1 - 0.75));  // 2.0
  Contingency exact = Sample();
  exact.n_ac = exact.n_a;  // Confidence 1.
  EXPECT_TRUE(std::isinf(exact.Conviction()));
}

TEST(MeasuresTest, SetMeasures) {
  const Contingency t = Sample();
  EXPECT_DOUBLE_EQ(t.Jaccard(), 30.0 / (40 + 50 - 30));  // 0.5
  EXPECT_DOUBLE_EQ(t.Cosine(), 30.0 / std::sqrt(40.0 * 50.0));
  EXPECT_DOUBLE_EQ(t.Kulczynski(), 0.5 * (30.0 / 40 + 30.0 / 50));
}

TEST(MeasuresTest, CertaintyFactor) {
  const Contingency t = Sample();
  // conf 0.75 > P(C) 0.5: (0.75 - 0.5) / (1 - 0.5) = 0.5.
  EXPECT_DOUBLE_EQ(t.CertaintyFactor(), 0.5);
  // Negative direction.
  Contingency neg = Sample();
  neg.n_ac = 10;  // conf 0.25 < 0.5: (0.25-0.5)/0.5 = -0.5.
  EXPECT_DOUBLE_EQ(neg.CertaintyFactor(), -0.5);
}

TEST(MeasuresTest, OddsRatioAndPhi) {
  const Contingency t = Sample();
  // Cells: AC=30, A!C=10, !AC=20, !A!C=40.
  EXPECT_DOUBLE_EQ(t.OddsRatio(), (30.0 * 40) / (10.0 * 20));  // 6.0
  const double phi =
      (100.0 * 30 - 40.0 * 50) / std::sqrt(40.0 * 50 * 60 * 50);
  EXPECT_DOUBLE_EQ(t.Phi(), phi);
  EXPECT_GT(t.Phi(), 0.0);
}

TEST(MeasuresTest, IndependenceIsNeutral) {
  // P(AC) = P(A)P(C): lift 1, leverage 0, phi 0, certainty 0.
  Contingency t;
  t.n = 100;
  t.n_a = 40;
  t.n_c = 50;
  t.n_ac = 20;
  EXPECT_DOUBLE_EQ(t.Lift(), 1.0);
  EXPECT_DOUBLE_EQ(t.Leverage(), 0.0);
  EXPECT_NEAR(t.Phi(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.CertaintyFactor(), 0.0);
  EXPECT_DOUBLE_EQ(t.OddsRatio(), 1.0);
}

TEST(MeasuresTest, EvaluateDispatch) {
  const Contingency t = Sample();
  EXPECT_DOUBLE_EQ(Evaluate(Measure::kSupport, t), t.Support());
  EXPECT_DOUBLE_EQ(Evaluate(Measure::kLift, t), t.Lift());
  EXPECT_DOUBLE_EQ(Evaluate(Measure::kPhi, t), t.Phi());
  EXPECT_STREQ(MeasureName(Measure::kCertaintyFactor), "certaintyFactor");
  EXPECT_STREQ(MeasureName(Measure::kOddsRatio), "oddsRatio");
}

TEST(MeasuresTest, TopRulesByMeasure) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  const ItemId b = db.AddItem("b");
  const ItemId c = db.AddItem("c");
  // a strongly implies b; c is common and weakly associated.
  for (int i = 0; i < 10; ++i) db.AddTransaction({a, b, c});
  for (int i = 0; i < 10; ++i) db.AddTransaction({c});
  for (int i = 0; i < 5; ++i) db.AddTransaction({b, c});

  const auto mined = MineApriori(db, 0.1);
  ASSERT_TRUE(mined.ok());
  RuleOptions options;
  options.min_confidence = 0.0;
  options.single_consequent = true;
  const auto rules = GenerateRules(db, mined.value(), options);
  ASSERT_GT(rules.size(), 3u);

  const auto top = TopRulesBy(Measure::kLift, rules, mined.value(), db, 3);
  ASSERT_EQ(top.size(), 3u);
  // Scores must be non-increasing.
  double prev = 1e18;
  for (const AssociationRule& rule : top) {
    const auto table = Contingency::ForRule(rule, mined.value(), db);
    ASSERT_TRUE(table.ok());
    const double score = table.value().Lift();
    EXPECT_LE(score, prev);
    prev = score;
  }
  // The strongest lift pair is a <-> b.
  EXPECT_TRUE((top[0].antecedent == Itemset({a}) &&
               top[0].consequent == Itemset({b})) ||
              (top[0].antecedent == Itemset({b}) &&
               top[0].consequent == Itemset({a})));
}

TEST(MeasuresTest, ForRuleMissingSupportFails) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  db.AddTransaction({a});
  const auto mined = MineApriori(db, 1.0);
  ASSERT_TRUE(mined.ok());
  AssociationRule rule;
  rule.antecedent = Itemset({a});
  rule.consequent = Itemset({99});
  EXPECT_FALSE(Contingency::ForRule(rule, mined.value(), db).ok());
}

}  // namespace
}  // namespace core
}  // namespace sfpm
