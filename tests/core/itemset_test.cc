#include "core/itemset.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sfpm {
namespace core {
namespace {

TEST(ItemsetTest, NormalizesOnConstruction) {
  const Itemset s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.items(), (std::vector<ItemId>{1, 3, 5}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(ItemsetTest, ContainsBinarySearch) {
  const Itemset s({2, 4, 6});
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(Itemset().Contains(0));
}

TEST(ItemsetTest, ContainsAll) {
  const Itemset s({1, 2, 3, 4});
  EXPECT_TRUE(s.ContainsAll(Itemset({2, 4})));
  EXPECT_TRUE(s.ContainsAll(Itemset()));
  EXPECT_TRUE(s.ContainsAll(s));
  EXPECT_FALSE(s.ContainsAll(Itemset({2, 5})));
  EXPECT_FALSE(Itemset({1}).ContainsAll(s));
}

TEST(ItemsetTest, UnionAndDifference) {
  const Itemset a({1, 3, 5});
  const Itemset b({2, 3, 4});
  EXPECT_EQ(a.Union(b), Itemset({1, 2, 3, 4, 5}));
  EXPECT_EQ(a.Difference(b), Itemset({1, 5}));
  EXPECT_EQ(b.Difference(a), Itemset({2, 4}));
  EXPECT_EQ(a.Union(Itemset()), a);
  EXPECT_EQ(a.Difference(a), Itemset());
}

TEST(ItemsetTest, WithAndWithout) {
  const Itemset s({1, 3});
  EXPECT_EQ(s.With(2), Itemset({1, 2, 3}));
  EXPECT_EQ(s.With(3), s);  // Idempotent.
  EXPECT_EQ(s.Without(1), Itemset({3}));
  EXPECT_EQ(s.Without(9), s);
}

TEST(ItemsetTest, AllButOneSubsets) {
  const Itemset s({1, 2, 3});
  const auto subs = s.AllButOneSubsets();
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], Itemset({2, 3}));
  EXPECT_EQ(subs[1], Itemset({1, 3}));
  EXPECT_EQ(subs[2], Itemset({1, 2}));
}

TEST(ItemsetTest, OrderingIsLexicographic) {
  EXPECT_TRUE(Itemset({1, 2}) < Itemset({1, 3}));
  EXPECT_TRUE(Itemset({1}) < Itemset({1, 2}));
  EXPECT_TRUE(Itemset({1, 9}) < Itemset({2}));
}

TEST(ItemsetTest, HashUsableInUnorderedSet) {
  std::unordered_set<Itemset, ItemsetHash> set;
  set.insert(Itemset({1, 2}));
  set.insert(Itemset({2, 1}));  // Same set after normalization.
  set.insert(Itemset({1, 2, 3}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Itemset({1, 2})));
}

TEST(ItemsetTest, ToString) {
  EXPECT_EQ(Itemset({3, 1}).ToString(), "{1, 3}");
  EXPECT_EQ(Itemset().ToString(), "{}");
}

}  // namespace
}  // namespace core
}  // namespace sfpm
