#include "io/table_io.h"

#include <gtest/gtest.h>

#include "core/apriori.h"
#include "datagen/paper_example.h"

namespace sfpm {
namespace io {
namespace {

TEST(TableIoTest, RoundTripPreservesEverything) {
  const feature::PredicateTable original = datagen::MakePaperTable1();
  const std::string csv = TableToCsv(original);
  const auto loaded = TableFromCsv(csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const feature::PredicateTable& table = loaded.value();
  EXPECT_EQ(table.NumRows(), original.NumRows());
  EXPECT_EQ(table.NumPredicates(), original.NumPredicates());
  EXPECT_EQ(table.ToString(), original.ToString());

  // Keys (feature types) survive, so KC+ behaves identically.
  for (core::ItemId i = 0; i < table.NumPredicates(); ++i) {
    EXPECT_EQ(table.db().Key(i), original.db().Key(i));
  }
}

TEST(TableIoTest, MiningLoadedTableMatchesOriginal) {
  const feature::PredicateTable original = datagen::MakePaperTable1();
  const auto loaded = TableFromCsv(TableToCsv(original));
  ASSERT_TRUE(loaded.ok());

  const auto a = core::MineAprioriKCPlus(original.db(), 0.5);
  const auto b = core::MineAprioriKCPlus(loaded.value().db(), 0.5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().CountAtLeast(2), b.value().CountAtLeast(2));
  EXPECT_EQ(a.value().itemsets().size(), b.value().itemsets().size());
}

TEST(TableIoTest, HeaderValidation) {
  EXPECT_FALSE(TableFromCsv("").ok());
  EXPECT_FALSE(TableFromCsv("notrow,contains_slum\nA,1\n").ok());
  EXPECT_FALSE(TableFromCsv("row,badlabel\nA,1\n").ok());
}

TEST(TableIoTest, CellValidation) {
  EXPECT_FALSE(TableFromCsv("row,contains_slum\nA,2\n").ok());
  EXPECT_FALSE(TableFromCsv("row,contains_slum\nA\n").ok());
  EXPECT_TRUE(TableFromCsv("row,contains_slum\nA,0\n").ok());
}

TEST(TableIoTest, EmptyTableRoundTrips) {
  feature::PredicateTable table;
  table.Declare(feature::Predicate::Spatial("contains", "slum"));
  const auto loaded = TableFromCsv(TableToCsv(table));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumRows(), 0u);
  EXPECT_EQ(loaded.value().NumPredicates(), 1u);
}

TEST(TableIoTest, FileRoundTrip) {
  const feature::PredicateTable original = datagen::MakePaperTable1();
  const std::string path = "/tmp/sfpm_table_io_test.csv";
  ASSERT_TRUE(SaveTable(original, path).ok());
  const auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().ToString(), original.ToString());
}

}  // namespace
}  // namespace io
}  // namespace sfpm
