#include "io/geojson.h"

#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace sfpm {
namespace io {
namespace {

using geom::Geometry;
using geom::ReadWkt;

TEST(GeoJsonTest, PointGeometry) {
  EXPECT_EQ(GeometryToGeoJson(ReadWkt("POINT (1 2)").value()),
            R"({"type":"Point","coordinates":[1,2]})");
}

TEST(GeoJsonTest, LineString) {
  EXPECT_EQ(GeometryToGeoJson(ReadWkt("LINESTRING (0 0, 1 1)").value()),
            R"({"type":"LineString","coordinates":[[0,0],[1,1]]})");
}

TEST(GeoJsonTest, PolygonWithHole) {
  const Geometry g =
      ReadWkt(
          "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))")
          .value();
  const std::string json = GeometryToGeoJson(g);
  EXPECT_NE(json.find("\"type\":\"Polygon\""), std::string::npos);
  // Two rings: shell and hole.
  EXPECT_NE(json.find("[[[0,0],[4,0],[4,4],[0,4],[0,0]],[[1,1],[2,1],"),
            std::string::npos);
}

TEST(GeoJsonTest, MultiGeometries) {
  EXPECT_NE(GeometryToGeoJson(ReadWkt("MULTIPOINT (1 1, 2 2)").value())
                .find("\"type\":\"MultiPoint\""),
            std::string::npos);
  EXPECT_NE(GeometryToGeoJson(
                ReadWkt("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))").value())
                .find("\"type\":\"MultiLineString\""),
            std::string::npos);
  EXPECT_NE(GeometryToGeoJson(
                ReadWkt("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))").value())
                .find("\"type\":\"MultiPolygon\""),
            std::string::npos);
}

TEST(GeoJsonTest, FeatureWithProperties) {
  const feature::Feature f(7, ReadWkt("POINT (1 2)").value(),
                           {{"name", "Nonoai"}, {"rate", "high"}});
  const std::string json = FeatureToGeoJson(f);
  EXPECT_NE(json.find("\"type\":\"Feature\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"Nonoai\""), std::string::npos);
  EXPECT_NE(json.find("\"rate\":\"high\""), std::string::npos);
}

TEST(GeoJsonTest, EscapesSpecialCharacters) {
  const feature::Feature f(0, ReadWkt("POINT (0 0)").value(),
                           {{"note", "say \"hi\"\nback\\slash"}});
  const std::string json = FeatureToGeoJson(f);
  EXPECT_NE(json.find(R"(say \"hi\"\nback\\slash)"), std::string::npos);
}

TEST(GeoJsonTest, LayerCollectionInjectsLayerProperty) {
  feature::Layer layer("slum");
  layer.Add(ReadWkt("POINT (1 1)").value(), {{"name", "x"}});
  layer.Add(ReadWkt("POINT (2 2)").value(), {});
  const std::string json = LayerToGeoJson(layer);
  EXPECT_NE(json.find("\"type\":\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"layer\":\"slum\",\"name\":\"x\""),
            std::string::npos);
  // Attribute-less feature still gets the layer tag, without a trailing
  // comma.
  EXPECT_NE(json.find("\"properties\":{\"layer\":\"slum\"}"),
            std::string::npos);
}

TEST(GeoJsonTest, MultipleLayersMerge) {
  feature::Layer a("slum");
  a.Add(ReadWkt("POINT (1 1)").value());
  feature::Layer b("school");
  b.Add(ReadWkt("POINT (2 2)").value());
  const std::string json = LayersToGeoJson({&a, &b});
  EXPECT_NE(json.find("\"layer\":\"slum\""), std::string::npos);
  EXPECT_NE(json.find("\"layer\":\"school\""), std::string::npos);
}

}  // namespace
}  // namespace io
}  // namespace sfpm
