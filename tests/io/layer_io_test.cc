#include "io/layer_io.h"

#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace sfpm {
namespace io {
namespace {

feature::Layer SampleLayer() {
  feature::Layer layer("district");
  layer.Add(geom::ReadWkt("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))").value(),
            {{"name", "Nonoai"}, {"murderRate", "high"}});
  layer.Add(geom::ReadWkt("POLYGON ((2 0, 4 0, 4 2, 2 2, 2 0))").value(),
            {{"name", "Cristal"}});
  layer.Add(geom::ReadWkt("POINT (1 1)").value(), {});
  return layer;
}

TEST(LayerIoTest, RoundTrip) {
  const feature::Layer original = SampleLayer();
  const std::string csv = LayerToCsv(original);
  const auto loaded = LayerFromCsv("district", csv);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const feature::Layer& layer = loaded.value();
  EXPECT_EQ(layer.feature_type(), "district");
  ASSERT_EQ(layer.Size(), original.Size());
  for (size_t i = 0; i < layer.Size(); ++i) {
    EXPECT_EQ(layer.at(i).geometry(), original.at(i).geometry()) << i;
    EXPECT_EQ(layer.at(i).attributes(), original.at(i).attributes()) << i;
  }
}

TEST(LayerIoTest, MissingAttributesStayAbsent) {
  const auto loaded = LayerFromCsv(
      "slum", "wkt,name\n\"POINT (1 2)\",\n\"POINT (3 4)\",called\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().at(0).attributes().empty());
  EXPECT_EQ(loaded.value().at(1).Attribute("name").value(), "called");
}

TEST(LayerIoTest, BadInputs) {
  EXPECT_FALSE(LayerFromCsv("x", "").ok());
  EXPECT_FALSE(LayerFromCsv("x", "geom,name\nPOINT (1 2),a\n").ok());
  EXPECT_FALSE(LayerFromCsv("x", "wkt\nNOT WKT\n").ok());
  EXPECT_FALSE(LayerFromCsv("x", "wkt,name\n\"POINT (1 2)\"\n").ok());
}

TEST(LayerIoTest, FileRoundTrip) {
  const feature::Layer original = SampleLayer();
  const std::string path = "/tmp/sfpm_layer_io_test.csv";
  ASSERT_TRUE(SaveLayer(original, path).ok());
  const auto loaded = LoadLayer("district", path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().Size(), original.Size());
}

}  // namespace
}  // namespace io
}  // namespace sfpm
