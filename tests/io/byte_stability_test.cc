#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "feature/feature.h"
#include "geom/geometry.h"
#include "geom/wkt.h"
#include "io/geojson.h"
#include "io/layer_io.h"
#include "io/table_io.h"
#include "util/strings.h"

namespace sfpm {
namespace io {
namespace {

/// Doubles whose decimal rendering historically loses bits under "%.17g"
/// or fixed-precision printf formatting. Shortest round-trip formatting
/// must reproduce each bit pattern exactly.
std::vector<double> AdversarialDoubles() {
  return {
      0.1,
      1.0 / 3.0,
      0.30000000000000004,           // 0.1 + 0.2
      123456789.123456789,           // More digits than a double holds.
      3.141592653589793,
      9007199254740993.0,            // 2^53 + 1 (rounds to 2^53).
      5e-324,                        // Smallest subnormal.
      std::numeric_limits<double>::denorm_min(),
      1.7976931348623157e308,        // Largest finite.
      2.2250738585072014e-308,       // Smallest normal.
      -1234.5000000000002,
      1e-7,
      6.02214076e23,
  };
}

geom::Geometry AdversarialLineString() {
  std::vector<geom::Point> points;
  for (double d : AdversarialDoubles()) {
    points.push_back({d, -d / 3.0});
  }
  return geom::Geometry(geom::LineString(std::move(points)));
}

TEST(ByteStabilityTest, WktWriteReadWriteIsStable) {
  const std::string first = geom::WriteWkt(AdversarialLineString());
  auto parsed = geom::ReadWkt(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(geom::WriteWkt(parsed.value()), first);
}

TEST(ByteStabilityTest, WktRoundTripPreservesEveryBit) {
  auto parsed = geom::ReadWkt(geom::WriteWkt(AdversarialLineString()));
  ASSERT_TRUE(parsed.ok());
  const auto& points = parsed.value().As<geom::LineString>().points();
  const std::vector<double> expected = AdversarialDoubles();
  ASSERT_EQ(points.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    // Bit-level comparison: EQ on doubles would accept -0.0 == 0.0.
    EXPECT_EQ(std::signbit(points[i].x), std::signbit(expected[i]));
    EXPECT_EQ(points[i].x, expected[i]);
    EXPECT_EQ(points[i].y, -expected[i] / 3.0);
  }
}

TEST(ByteStabilityTest, LayerCsvWriteReadWriteIsStable) {
  feature::Layer layer("adversarial");
  layer.Add(AdversarialLineString(), {{"note", "dense, quoted \"attr\""}});
  layer.Add(geom::ReadWkt("POINT (0.1 0.2)").value());
  const std::string first = LayerToCsv(layer);
  auto parsed = LayerFromCsv("adversarial", first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const std::string second = LayerToCsv(parsed.value());
  EXPECT_EQ(second, first);

  // And a third generation, through the already-round-tripped layer.
  auto reparsed = LayerFromCsv("adversarial", second);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(LayerToCsv(reparsed.value()), first);
}

TEST(ByteStabilityTest, TableCsvWriteReadWriteIsStable) {
  feature::PredicateTable table;
  for (int row = 0; row < 5; ++row) {
    table.AddRow("district_" + std::to_string(row));
    if (row % 2 == 0) {
      ASSERT_TRUE(table.SetSpatial(row, "contains", "slum").ok());
    }
    if (row % 3 == 0) {
      ASSERT_TRUE(table.SetAttribute(row, "zone", "north, \"east\"").ok());
    }
  }
  const std::string first = TableToCsv(table);
  auto parsed = TableFromCsv(first);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(TableToCsv(parsed.value()), first);
}

TEST(ByteStabilityTest, GeoJsonDoublesAreValuePreserving) {
  // GeoJSON has no reader here; stability means the rendered text is a
  // pure function of the geometry's bit patterns, unchanged by a text
  // round trip through WKT.
  const geom::Geometry g = AdversarialLineString();
  const std::string direct = GeometryToGeoJson(g);
  auto through_text = geom::ReadWkt(geom::WriteWkt(g));
  ASSERT_TRUE(through_text.ok());
  EXPECT_EQ(GeometryToGeoJson(through_text.value()), direct);
  // Shortest-form spot checks: no padded zeros, no precision loss.
  EXPECT_NE(direct.find("[0.1,"), std::string::npos) << direct;
  EXPECT_NE(direct.find("5e-324"), std::string::npos) << direct;
}

}  // namespace
}  // namespace io
}  // namespace sfpm
