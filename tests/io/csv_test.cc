#include "io/csv.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace io {
namespace {

TEST(CsvTest, SimpleRecord) {
  const auto r = ParseCsvRecord("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, EmptyFields) {
  const auto r = ParseCsvRecord(",a,,");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"", "a", "", ""}));
}

TEST(CsvTest, QuotedFields) {
  const auto r = ParseCsvRecord(R"("a,b","say ""hi""",plain)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(),
            (std::vector<std::string>{"a,b", "say \"hi\"", "plain"}));
}

TEST(CsvTest, QuotedNewline) {
  const auto doc = ParseCsv("\"line1\nline2\",x\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().size(), 1u);
  EXPECT_EQ(doc.value()[0][0], "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  const auto doc = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc.value().size(), 2u);
  EXPECT_EQ(doc.value()[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, TrailingNewlineAndBlankLines) {
  const auto doc = ParseCsv("a,b\n\nc,d\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().size(), 2u);
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(ParseCsvRecord("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvRecord("a\"b").ok());
  EXPECT_FALSE(ParseCsvRecord("\"x\"tail").ok());
}

TEST(CsvTest, WriteQuotesOnlyWhenNeeded) {
  EXPECT_EQ(WriteCsvRecord({"a", "b c", "d,e", "f\"g", "h\ni"}),
            "a,b c,\"d,e\",\"f\"\"g\",\"h\ni\"");
}

TEST(CsvTest, RoundTrip) {
  const std::vector<std::vector<std::string>> records = {
      {"wkt", "name"},
      {"POINT (1 2)", "comma, inside"},
      {"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "quote \" inside"},
      {"", "newline\ninside"},
  };
  const auto parsed = ParseCsv(WriteCsv(records));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), records);
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path = "/tmp/sfpm_csv_test.csv";
  ASSERT_TRUE(WriteFile(path, "x,y\n1,2\n").ok());
  const auto text = ReadFile(path);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "x,y\n1,2\n");
  EXPECT_FALSE(ReadFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace io
}  // namespace sfpm
