#include "stats/gain.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfpm {
namespace stats {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(6, 2), 15u);
  EXPECT_EQ(Binomial(6, 3), 20u);
  EXPECT_EQ(Binomial(6, 6), 1u);
  EXPECT_EQ(Binomial(5, 7), 0u);
  EXPECT_EQ(Binomial(5, -1), 0u);
  EXPECT_EQ(Binomial(52, 5), 2598960u);
}

TEST(ItemsetCountLowerBoundTest, PaperSection41Example) {
  // m = 6: C(6,2)+...+C(6,6) = 15+20+15+6+1 = 57, as computed in the paper.
  EXPECT_EQ(ItemsetCountLowerBound(6), 57u);
  EXPECT_EQ(ItemsetCountLowerBound(2), 1u);
  EXPECT_EQ(ItemsetCountLowerBound(1), 0u);
  EXPECT_EQ(ItemsetCountLowerBound(0), 0u);
}

TEST(MinimalGainTest, PaperTable2Example) {
  // m=6, u=2, t1=t2=2, n=2: the paper computes a minimal gain of 28.
  const auto gain = MinimalGain({2, 2}, 2);
  ASSERT_TRUE(gain.ok());
  EXPECT_EQ(gain.value(), 28u);
}

TEST(MinimalGainTest, PaperExperimentPredictions) {
  // Section 4.2: m=8, u=3, t1=t2=t3=2, n=2 predicts 148.
  EXPECT_EQ(MinimalGain({2, 2, 2}, 2).value(), 148u);
  // m=7, u=3, t1=t2=t3=2, n=1 predicts 74.
  EXPECT_EQ(MinimalGain({2, 2, 2}, 1).value(), 74u);
}

TEST(MinimalGainTest, PaperTable3Row1) {
  // Table 3 first row (n=1): t1 = 1..8.
  const uint64_t expected[] = {0, 2, 8, 22, 52, 114, 240, 494};
  for (int t1 = 1; t1 <= 8; ++t1) {
    EXPECT_EQ(MinimalGainSingleType(t1, 1).value(), expected[t1 - 1])
        << "t1=" << t1;
  }
}

TEST(MinimalGainTest, PaperTable3DoublingAcrossN) {
  // Each Table 3 row doubles the previous one: gain(t1, n+1) is slightly
  // more than double in general, but for u=1 the published table shows
  // exact doubling; verify a few columns.
  for (int t1 = 2; t1 <= 8; ++t1) {
    for (int n = 1; n <= 9; ++n) {
      EXPECT_EQ(MinimalGainSingleType(t1, n + 1).value(),
                2 * MinimalGainSingleType(t1, n).value())
          << "t1=" << t1 << " n=" << n;
    }
  }
}

TEST(MinimalGainTest, FullTable3) {
  const auto table = MinimalGainTable(8, 10);
  ASSERT_EQ(table.size(), 10u);
  ASSERT_EQ(table[0].size(), 8u);
  // Spot-check the published corners.
  EXPECT_EQ(table[0][0], 0u);       // t1=1, n=1.
  EXPECT_EQ(table[0][7], 494u);     // t1=8, n=1.
  EXPECT_EQ(table[9][1], 1024u);    // t1=2, n=10.
  EXPECT_EQ(table[9][7], 252928u);  // t1=8, n=10.
  EXPECT_EQ(table[4][4], 832u);     // t1=5, n=5.
}

TEST(MinimalGainTest, SingleRelationTypeGainsNothing) {
  // t1 = 1 means no same-type pair exists: gain must be zero.
  for (int n = 0; n <= 10; ++n) {
    EXPECT_EQ(MinimalGainSingleType(1, n).value(), 0u);
  }
  EXPECT_EQ(MinimalGain({1, 1, 1}, 5).value(), 0u);
}

TEST(MinimalGainTest, BruteForceCrossCheck) {
  // Enumerate subsets explicitly and count those keeping >= 2 relations of
  // some feature type; compare with the closed form.
  const std::vector<std::vector<int>> t_cases = {{2}, {3}, {2, 2}, {3, 2},
                                                 {4}, {2, 2, 2}};
  for (const auto& t : t_cases) {
    for (int n = 0; n <= 4; ++n) {
      int m = n;
      for (int tk : t) m += tk;
      // Assign group ids: item i belongs to group g(i), or -1 for "other".
      std::vector<int> group;
      for (size_t g = 0; g < t.size(); ++g) {
        for (int i = 0; i < t[g]; ++i) group.push_back(static_cast<int>(g));
      }
      for (int i = 0; i < n; ++i) group.push_back(-1);

      uint64_t count = 0;
      for (uint64_t mask = 0; mask < (uint64_t{1} << m); ++mask) {
        if (std::popcount(mask) < 2) continue;
        std::vector<int> per_group(t.size(), 0);
        bool has_pair = false;
        for (int i = 0; i < m; ++i) {
          if ((mask >> i) & 1 && group[i] >= 0) {
            if (++per_group[group[i]] >= 2) has_pair = true;
          }
        }
        if (has_pair) ++count;
      }
      EXPECT_EQ(MinimalGain(t, n).value(), count)
          << "t.size=" << t.size() << " n=" << n;
    }
  }
}

TEST(MinimalGainTest, InvalidInputs) {
  EXPECT_FALSE(MinimalGain({0}, 1).ok());
  EXPECT_FALSE(MinimalGain({2}, -1).ok());
  EXPECT_FALSE(MinimalGain({60, 10}, 0).ok());  // m > 62.
  EXPECT_TRUE(MinimalGain({}, 5).ok());
  EXPECT_EQ(MinimalGain({}, 5).value(), 0u);
}

}  // namespace
}  // namespace stats
}  // namespace sfpm
