#include "stats/largest_itemset.h"

#include <gtest/gtest.h>

#include "stats/gain.h"

namespace sfpm {
namespace stats {
namespace {

using core::ItemId;
using core::Itemset;
using core::TransactionDb;

TEST(AnalyzeItemsetTest, GroupsByKey) {
  TransactionDb db;
  const ItemId cs = db.AddItem("contains_slum", "slum");
  const ItemId ts = db.AddItem("touches_slum", "slum");
  const ItemId os = db.AddItem("overlaps_slum", "slum");
  const ItemId csc = db.AddItem("contains_school", "school");
  const ItemId tsc = db.AddItem("touches_school", "school");
  const ItemId river = db.AddItem("crosses_river", "river");
  const ItemId mh = db.AddItem("murderRate=high", "");

  const GainParameters p =
      AnalyzeItemset(Itemset({cs, ts, os, csc, tsc, river, mh}), db);
  EXPECT_EQ(p.m, 7);
  EXPECT_EQ(p.u, 2);
  EXPECT_EQ(p.t, (std::vector<int>{3, 2}));  // Sorted descending.
  EXPECT_EQ(p.n, 2);  // river (single relation) + attribute.
  EXPECT_FALSE(p.ToString().empty());
}

TEST(AnalyzeItemsetTest, AllSingletonsCountIntoN) {
  TransactionDb db;
  const ItemId a = db.AddItem("contains_slum", "slum");
  const ItemId b = db.AddItem("contains_school", "school");
  const GainParameters p = AnalyzeItemset(Itemset({a, b}), db);
  EXPECT_EQ(p.u, 0);
  EXPECT_EQ(p.n, 2);
  EXPECT_EQ(MinimalGain(p.t, p.n).value(), 0u);
}

TEST(AnalyzeLargestItemsetTest, PicksLargestWithBestGain) {
  TransactionDb db;
  const ItemId cs = db.AddItem("contains_slum", "slum");
  const ItemId ts = db.AddItem("touches_slum", "slum");
  const ItemId mh = db.AddItem("m=h", "");
  const ItemId csc = db.AddItem("contains_school", "school");

  // Two size-3 largest itemsets: {cs, ts, mh} has a same-type pair (gain
  // 2); {cs, csc, mh} is clean (gain 0). The analyzer must pick the first.
  for (int i = 0; i < 3; ++i) db.AddTransaction({cs, ts, mh});
  for (int i = 0; i < 3; ++i) db.AddTransaction({cs, csc, mh});

  const auto mined = core::MineApriori(db, 3.0 / 6.0);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().MaxItemsetSize(), 3u);

  const auto params = AnalyzeLargestItemset(mined.value(), db);
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params.value().m, 3);
  EXPECT_EQ(params.value().u, 1);
  EXPECT_EQ(params.value().t, (std::vector<int>{2}));
  EXPECT_EQ(params.value().n, 1);
}

TEST(AnalyzeLargestItemsetTest, NotFoundWithoutPairs) {
  TransactionDb db;
  const ItemId a = db.AddItem("a");
  db.AddTransaction({a});
  const auto mined = core::MineApriori(db, 0.5);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(AnalyzeLargestItemset(mined.value(), db).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace stats
}  // namespace sfpm
