#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace sfpm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMeanAndVariance) {
  Rng rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementDistinctSorted) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(100, 10);
    ASSERT_EQ(sample.size(), 10u);
    for (size_t i = 0; i < sample.size(); ++i) {
      EXPECT_LT(sample[i], 100u);
      if (i > 0) EXPECT_LT(sample[i - 1], sample[i]);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace sfpm
