#include "util/stopwatch.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace sfpm {
namespace {

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  const double a = watch.ElapsedSeconds();
  const double b = watch.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(StopwatchTest, UnitsAgree) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double seconds = watch.ElapsedSeconds();
  EXPECT_GE(watch.ElapsedMillis(), seconds * 1e3);
  EXPECT_GE(watch.ElapsedMicros(), seconds * 1e6);
}

TEST(StopwatchTest, LapReturnsElapsedAndRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double first = watch.Lap();
  EXPECT_GE(first, 0.004);
  // The clock restarted at the Lap, so the running elapsed must be smaller
  // than the first lap's reading taken right after.
  EXPECT_LT(watch.ElapsedSeconds(), first);
}

TEST(StopwatchTest, ConsecutiveLapsCoverTheWholeInterval) {
  Stopwatch total;
  Stopwatch lapper;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double lap1 = lapper.Lap();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double lap2 = lapper.Lap();
  // Laps tile the interval with no gap: their sum can't exceed the total
  // elapsed time measured around them.
  EXPECT_LE(lap1 + lap2, total.ElapsedSeconds());
  EXPECT_GT(lap1, 0.0);
  EXPECT_GT(lap2, 0.0);
}

TEST(StopwatchTest, LapMillisScales) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_GE(watch.LapMillis(), 2.0);
}

}  // namespace
}  // namespace sfpm
