#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sfpm {
namespace {

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](size_t) { ++calls; });  // begin > end.
  std::atomic<int> chunk_calls{0};
  pool.ParallelForChunks(0, 0, [&](size_t, size_t, size_t) { ++chunk_calls; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(chunk_calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Indices are disjoint across chunks, so plain ints are race-free.
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, hits.size(), [&](size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ChunksPartitionTheRangeContiguously) {
  ThreadPool pool(3);
  std::vector<std::array<size_t, 3>> chunks(3, {0, 0, 0});
  std::atomic<size_t> seen{0};
  pool.ParallelForChunks(10, 20, [&](size_t begin, size_t end, size_t chunk) {
    chunks[chunk] = {begin, end, chunk};
    ++seen;
  });
  ASSERT_EQ(seen.load(), 3u);
  EXPECT_EQ(chunks[0][0], 10u);
  EXPECT_EQ(chunks[2][1], 20u);
  // Dense, ordered, non-overlapping.
  EXPECT_EQ(chunks[0][1], chunks[1][0]);
  EXPECT_EQ(chunks[1][1], chunks[2][0]);
  // Chunking depends only on (range, threads): 10 elements over 3 chunks
  // split at begin + len * chunk / chunks.
  EXPECT_EQ(chunks[0][1] - chunks[0][0], 3u);
  EXPECT_EQ(chunks[1][1] - chunks[1][0], 3u);
  EXPECT_EQ(chunks[2][1] - chunks[2][0], 4u);
}

TEST(ThreadPoolTest, FewerElementsThanThreadsShrinksChunkCount) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelForChunks(0, 3, [&](size_t begin, size_t end, size_t) {
    EXPECT_EQ(end - begin, 1u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, SizeOneRunsInlineOnTheCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_inline = true;
  pool.ParallelFor(0, 100, [&](size_t) {
    all_inline &= std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(all_inline);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](size_t i) {
                                  if (i == 37) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, LowestChunkExceptionWinsDeterministically) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.ParallelForChunks(0, 4, [](size_t, size_t, size_t chunk) {
        throw std::runtime_error(std::to_string(chunk));
      });
      FAIL() << "expected a throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ThreadPoolTest, UsableAfterAnException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 8, [](size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.ParallelFor(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 4);
}

TEST(ParallelismTest, ResolveZeroMeansDefault) {
  EXPECT_EQ(ResolveParallelism(0), DefaultParallelism());
  EXPECT_EQ(ResolveParallelism(5), 5u);
  EXPECT_GE(DefaultParallelism(), 1u);
}

TEST(ParallelismTest, EnvOverrideWins) {
  ASSERT_EQ(setenv("SFPM_THREADS", "3", 1), 0);
  EXPECT_EQ(DefaultParallelism(), 3u);
  EXPECT_EQ(ResolveParallelism(0), 3u);
  EXPECT_EQ(ResolveParallelism(2), 2u);  // Explicit knob beats the env.
  ASSERT_EQ(setenv("SFPM_THREADS", "garbage", 1), 0);
  EXPECT_GE(DefaultParallelism(), 1u);  // Bad values fall through.
  ASSERT_EQ(unsetenv("SFPM_THREADS"), 0);
}

TEST(ParallelismTest, HardwareConcurrencyIsAtLeastOne) {
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(HardwareConcurrency(),
            hw == 0 ? 1u : static_cast<size_t>(hw));
  EXPECT_GE(HardwareConcurrency(), 1u);
}

TEST(ParallelismTest, EnvZeroMeansHardwareConcurrency) {
  // "0 threads" is an explicit request for the hardware concurrency in
  // every spelling (SFPM_THREADS=0, --threads 0, parallelism = 0), not a
  // malformed value.
  ASSERT_EQ(setenv("SFPM_THREADS", "0", 1), 0);
  EXPECT_EQ(DefaultParallelism(), HardwareConcurrency());
  EXPECT_EQ(ResolveParallelism(0), HardwareConcurrency());
  ASSERT_EQ(setenv("SFPM_THREADS", "00", 1), 0);
  EXPECT_EQ(DefaultParallelism(), HardwareConcurrency());
  ASSERT_EQ(unsetenv("SFPM_THREADS"), 0);
  EXPECT_EQ(DefaultParallelism(), HardwareConcurrency());
}

TEST(ParallelismTest, EnvRejectsNegativeOverflowAndOversized) {
  const unsigned hw = std::thread::hardware_concurrency();
  const size_t fallback = hw == 0 ? 1 : static_cast<size_t>(hw);
  // strtoul would happily wrap "-3" to a huge unsigned; the parser must
  // treat it (and anything over kMaxThreads) as malformed, not as a
  // request for billions of workers.
  for (const char* bad : {"-3", "+4", " 4", "4x", "99999999999999999999",
                          "1000000"}) {
    ASSERT_EQ(setenv("SFPM_THREADS", bad, 1), 0) << bad;
    EXPECT_EQ(DefaultParallelism(), fallback) << bad;
  }
  ASSERT_EQ(unsetenv("SFPM_THREADS"), 0);
}

}  // namespace
}  // namespace sfpm
