#include "util/strings.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace {

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split(",a,,b,", ','),
            (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(StringsTest, SplitNoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello\t\n "), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("contains_slum", "contains"));
  EXPECT_FALSE(StartsWith("slum", "contains"));
  EXPECT_TRUE(EndsWith("contains_slum", "_slum"));
  EXPECT_FALSE(EndsWith("slum", "schools"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
  EXPECT_EQ(ToUpper("MiXeD123"), "MIXED123");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace sfpm
