#include "util/status.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  const struct {
    Status status;
    StatusCode code;
    const char* name;
  } cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::ParseError("e"), StatusCode::kParseError, "ParseError"},
      {Status::Unsupported("f"), StatusCode::kUnsupported, "Unsupported"},
      {Status::Internal("g"), StatusCode::kInternal, "Internal"},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnNotOk(int x) {
  SFPM_RETURN_NOT_OK(FailWhenNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_EQ(UseReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SFPM_ASSIGN_OR_RETURN(const int half, Half(x));
  SFPM_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
}

}  // namespace
}  // namespace sfpm
