#include "util/args.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfpm {
namespace {

/// Builds argv-style storage from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {
    for (std::string& token : tokens_) pointers_.push_back(token.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> tokens_;
  std::vector<char*> pointers_;
};

TEST(ArgsTest, FlagValuePairs) {
  Argv argv({"--table", "t.csv", "--minsup", "0.1"});
  const Args args(argv.argc(), argv.argv());
  EXPECT_TRUE(args.Has("table"));
  EXPECT_EQ(args.Get("table"), "t.csv");
  EXPECT_EQ(args.Get("minsup"), "0.1");
  EXPECT_EQ(args.Get("absent", "fallback"), "fallback");
  EXPECT_FALSE(args.Has("absent"));
}

TEST(ArgsTest, EqualsSyntaxAndRepeats) {
  Argv argv({"--relevant=a.csv", "--relevant", "b.csv", "--relevant=c.csv"});
  const Args args(argv.argc(), argv.argv());
  const std::vector<std::string> want = {"a.csv", "b.csv", "c.csv"};
  EXPECT_EQ(args.All("relevant"), want);
}

TEST(ArgsTest, BooleanFlagBeforeAnotherFlag) {
  Argv argv({"--stats", "--out", "x.csv", "--directions"});
  const Args args(argv.argc(), argv.argv());
  EXPECT_TRUE(args.Has("stats"));
  EXPECT_EQ(args.Get("stats"), "");
  EXPECT_EQ(args.Get("out"), "x.csv");
  EXPECT_TRUE(args.Has("directions"));
}

// Regression: a negative number after a flag is that flag's value, not a
// mysterious flag of its own — `sfpm generate-city --seed -5` must see
// seed="-5".
TEST(ArgsTest, NegativeNumberIsAValue) {
  Argv argv({"--seed", "-5", "--n", "-2"});
  const Args args(argv.argc(), argv.argv());
  EXPECT_EQ(args.Get("seed"), "-5");
  EXPECT_EQ(args.Get("n"), "-2");
}

// Regression: `--5`-style tokens (double dash followed by digits, with or
// without a sign) are numeric values, not flags named "5" — they attach to
// the preceding flag instead of opening a new one.
TEST(ArgsTest, DashDashDigitsIsAValue) {
  Argv argv({"--offset", "--5", "--delta", "--2.5", "--shift", "---3"});
  const Args args(argv.argc(), argv.argv());
  EXPECT_EQ(args.Get("offset"), "--5");
  EXPECT_EQ(args.Get("delta"), "--2.5");
  EXPECT_EQ(args.Get("shift"), "---3");
}

TEST(ArgsTest, PositionalTokens) {
  Argv argv({"input.csv", "--out", "x.csv", "other.csv"});
  const Args args(argv.argc(), argv.argv());
  const std::vector<std::string> want = {"input.csv", "other.csv"};
  EXPECT_EQ(args.positional(), want);
}

TEST(ArgsTest, ValuesExposesEveryFlag) {
  Argv argv({"--a", "1", "--b=2", "--c"});
  const Args args(argv.argc(), argv.argv());
  ASSERT_EQ(args.values().size(), 3u);
  EXPECT_EQ(args.values().at("a"), std::vector<std::string>{"1"});
  EXPECT_EQ(args.values().at("b"), std::vector<std::string>{"2"});
  EXPECT_EQ(args.values().at("c"), std::vector<std::string>{""});
}

TEST(ArgsTest, TrailingFlagIsBoolean) {
  Argv argv({"--out", "x.csv", "--stats"});
  const Args args(argv.argc(), argv.argv());
  EXPECT_TRUE(args.Has("stats"));
  EXPECT_EQ(args.Get("stats"), "");
}

}  // namespace
}  // namespace sfpm
