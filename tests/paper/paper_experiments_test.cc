#include <gtest/gtest.h>

#include "core/apriori.h"
#include "datagen/synthetic_predicates.h"
#include "stats/gain.h"
#include "stats/largest_itemset.h"

namespace sfpm {
namespace {

/// Figures 6 & 7 dataset and the Section 4.2 Formula 1 validations.
class PaperDataset2Test : public ::testing::Test {
 protected:
  PaperDataset2Test() : table_(datagen::MakePaperDataset2()) {}
  feature::PredicateTable table_;
};

TEST_F(PaperDataset2Test, Figure6ReductionAboveFiftyFivePercent) {
  // "the number of frequent sets is reduced in more than 55% for any value
  // of minimum support".
  for (double minsup : {0.05, 0.08, 0.11, 0.14, 0.17, 0.20}) {
    const auto apriori = core::MineApriori(table_.db(), minsup);
    const auto kcplus = core::MineAprioriKCPlus(table_.db(), minsup);
    ASSERT_TRUE(apriori.ok() && kcplus.ok());
    const double base = static_cast<double>(apriori.value().CountAtLeast(2));
    ASSERT_GT(base, 0.0);
    const double reduction = 1.0 - kcplus.value().CountAtLeast(2) / base;
    EXPECT_GT(reduction, 0.40) << "minsup " << minsup;
    EXPECT_LT(reduction, 0.75) << "minsup " << minsup;
  }
}

TEST_F(PaperDataset2Test, FormulaCheckAtSeventeenPercent) {
  // Paper: at minsup 17% the largest itemset has m=7, u=3,
  // t1=t2=t3=2, n=1; the predicted gain of 74 equals the real gain.
  const auto apriori = core::MineApriori(table_.db(), 0.17);
  const auto kcplus = core::MineAprioriKCPlus(table_.db(), 0.17);
  ASSERT_TRUE(apriori.ok() && kcplus.ok());

  const auto params =
      stats::AnalyzeLargestItemset(apriori.value(), table_.db());
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params.value().m, 7);
  EXPECT_EQ(params.value().u, 3);
  EXPECT_EQ(params.value().t, (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(params.value().n, 1);

  const uint64_t predicted =
      stats::MinimalGain(params.value().t, params.value().n).value();
  EXPECT_EQ(predicted, 74u);
  const size_t real_gain =
      apriori.value().CountAtLeast(2) - kcplus.value().CountAtLeast(2);
  EXPECT_EQ(real_gain, 74u);  // Exact, as the paper reports.
}

TEST_F(PaperDataset2Test, FormulaCheckAtFivePercent) {
  // Paper: at minsup 5% the largest itemset has m=8, u=3, t=(2,2,2), n=2;
  // the prediction (148) is a lower bound on the real gain.
  const auto apriori = core::MineApriori(table_.db(), 0.05);
  const auto kcplus = core::MineAprioriKCPlus(table_.db(), 0.05);
  ASSERT_TRUE(apriori.ok() && kcplus.ok());

  const auto params =
      stats::AnalyzeLargestItemset(apriori.value(), table_.db());
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params.value().m, 8);
  EXPECT_EQ(params.value().u, 3);
  EXPECT_EQ(params.value().t, (std::vector<int>{2, 2, 2}));
  EXPECT_EQ(params.value().n, 2);

  const uint64_t predicted =
      stats::MinimalGain(params.value().t, params.value().n).value();
  EXPECT_EQ(predicted, 148u);
  const size_t real_gain =
      apriori.value().CountAtLeast(2) - kcplus.value().CountAtLeast(2);
  EXPECT_GE(real_gain, predicted);
}

/// Figures 4 & 5 dataset.
class PaperDataset1Test : public ::testing::Test {
 protected:
  PaperDataset1Test() : ds_(datagen::MakePaperDataset1()) {}
  datagen::PaperDataset1 ds_;
};

TEST_F(PaperDataset1Test, Figure4OrderingAndShape) {
  const auto phi = ds_.dependencies.MakeFilter(ds_.table.db());
  for (double minsup : {0.05, 0.10, 0.15}) {
    const auto apriori = core::MineApriori(ds_.table.db(), minsup);
    const auto kc = core::MineAprioriKC(ds_.table.db(), minsup, phi);
    const auto kcplus = core::MineAprioriKCPlus(ds_.table.db(), minsup, &phi);
    ASSERT_TRUE(apriori.ok() && kc.ok() && kcplus.ok());

    const size_t a = apriori.value().CountAtLeast(2);
    const size_t k = kc.value().CountAtLeast(2);
    const size_t p = kcplus.value().CountAtLeast(2);
    // Strict ordering Apriori > KC > KC+ at every minsup, as in Figure 4.
    EXPECT_GT(a, k) << minsup;
    EXPECT_GT(k, p) << minsup;
    // KC+ removes more than half relative to KC ("around 50%").
    EXPECT_GT(1.0 - static_cast<double>(p) / k, 0.35) << minsup;
  }
}

TEST_F(PaperDataset1Test, FewerItemsetsAtHigherSupport) {
  const auto lo = core::MineApriori(ds_.table.db(), 0.05);
  const auto hi = core::MineApriori(ds_.table.db(), 0.15);
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_GT(lo.value().CountAtLeast(2), hi.value().CountAtLeast(2));
}

TEST_F(PaperDataset1Test, FilteredMiningIsNeverSlowerByMuch) {
  // Figure 5's qualitative claim: KC+ does not cost more than Apriori —
  // it prunes candidates, so it counts fewer sets. Rather than assert
  // wall-clock (noisy), assert the work proxy: candidates counted.
  const auto phi = ds_.dependencies.MakeFilter(ds_.table.db());
  const auto apriori = core::MineApriori(ds_.table.db(), 0.05);
  const auto kcplus = core::MineAprioriKCPlus(ds_.table.db(), 0.05, &phi);
  ASSERT_TRUE(apriori.ok() && kcplus.ok());

  auto counted = [](const core::MiningStats& stats) {
    size_t total = 0;
    for (const auto& pass : stats.passes) {
      total += pass.candidates - pass.filtered_candidates;
    }
    return total;
  };
  EXPECT_LT(counted(kcplus.value().stats()),
            counted(apriori.value().stats()));
}

}  // namespace
}  // namespace sfpm
