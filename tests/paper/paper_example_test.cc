#include <gtest/gtest.h>

#include "core/apriori.h"
#include "core/rules.h"
#include "datagen/paper_example.h"
#include "stats/gain.h"
#include "stats/largest_itemset.h"

namespace sfpm {
namespace {

using core::Itemset;
using core::TransactionDb;

/// Resolves a list of predicate labels to an Itemset of the table's db.
Itemset Items(const feature::PredicateTable& table,
              std::initializer_list<const char*> labels) {
  std::vector<core::ItemId> ids;
  for (const char* label : labels) {
    const auto id = table.db().FindItem(label);
    EXPECT_TRUE(id.ok()) << label;
    ids.push_back(id.value_or(0));
  }
  return Itemset(std::move(ids));
}

class PaperTable1Test : public ::testing::Test {
 protected:
  PaperTable1Test() : table_(datagen::MakePaperTable1()) {}
  feature::PredicateTable table_;
};

TEST_F(PaperTable1Test, SixDistrictsElevenPredicates) {
  EXPECT_EQ(table_.NumRows(), 6u);
  // 4 attribute values (murderRate/theftRate x high/low) + 7 spatial.
  EXPECT_EQ(table_.NumPredicates(), 11u);
  EXPECT_EQ(table_.RowName(0), "Teresopolis");
  EXPECT_EQ(table_.RowName(4), "Nonoai");
}

TEST_F(PaperTable1Test, SingleItemSupports) {
  const TransactionDb& db = table_.db();
  EXPECT_EQ(db.Support(db.FindItem("contains_slum").value()), 6u);
  EXPECT_EQ(db.Support(db.FindItem("touches_slum").value()), 3u);
  EXPECT_EQ(db.Support(db.FindItem("overlaps_slum").value()), 5u);
  EXPECT_EQ(db.Support(db.FindItem("covers_slum").value()), 2u);
  EXPECT_EQ(db.Support(db.FindItem("contains_school").value()), 5u);
  EXPECT_EQ(db.Support(db.FindItem("touches_school").value()), 6u);
  EXPECT_EQ(db.Support(db.FindItem("contains_policeCenter").value()), 2u);
  EXPECT_EQ(db.Support(db.FindItem("murderRate=high").value()), 4u);
  EXPECT_EQ(db.Support(db.FindItem("theftRate=low").value()), 4u);
}

TEST_F(PaperTable1Test, Table2HasExactly60FrequentItemsets) {
  const auto result = core::MineApriori(table_.db(), 0.5);
  ASSERT_TRUE(result.ok());
  // The paper: "a total of 60 frequent itemsets with two or more elements
  // is generated".
  EXPECT_EQ(result.value().CountAtLeast(2), 60u);
  EXPECT_EQ(result.value().MaxItemsetSize(), 6u);
  // Size distribution implied by the published Table 2.
  EXPECT_EQ(result.value().OfSize(2).size(), 17u);
  EXPECT_EQ(result.value().OfSize(3).size(), 21u);
  EXPECT_EQ(result.value().OfSize(4).size(), 15u);
  EXPECT_EQ(result.value().OfSize(5).size(), 6u);
  EXPECT_EQ(result.value().OfSize(6).size(), 1u);
}

TEST_F(PaperTable1Test, Table2LargestItemsetIsThePublishedOne) {
  const auto result = core::MineApriori(table_.db(), 0.5);
  ASSERT_TRUE(result.ok());
  const auto largest = result.value().OfSize(6);
  ASSERT_EQ(largest.size(), 1u);
  EXPECT_EQ(largest[0].items,
            Items(table_, {"murderRate=high", "theftRate=low",
                           "contains_slum", "overlaps_slum",
                           "contains_school", "touches_school"}));
  EXPECT_EQ(largest[0].support, 3u);
}

TEST_F(PaperTable1Test, Table2SpecificItemsetsPresent) {
  const auto result = core::MineApriori(table_.db(), 0.5);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  // Spot-check itemsets printed in Table 2.
  EXPECT_TRUE(r.SupportOf(Items(table_, {"murderRate=high",
                                         "theftRate=low"})).has_value());
  EXPECT_TRUE(r.SupportOf(Items(table_, {"contains_slum", "touches_slum"}))
                  .has_value());
  EXPECT_TRUE(
      r.SupportOf(Items(table_, {"contains_school", "touches_school"}))
          .has_value());
  EXPECT_TRUE(r.SupportOf(Items(table_, {"touches_slum", "touches_school"}))
                  .has_value());
  // And ones that must NOT be frequent.
  EXPECT_FALSE(r.SupportOf(Items(table_, {"touches_slum", "overlaps_slum"}))
                   .has_value());
  EXPECT_FALSE(
      r.SupportOf(Items(table_, {"murderRate=high", "touches_slum"}))
          .has_value());
}

TEST_F(PaperTable1Test, ThirtyItemsetsContainSameFeatureTypePairs) {
  const auto result = core::MineApriori(table_.db(), 0.5);
  ASSERT_TRUE(result.ok());
  const TransactionDb& db = table_.db();

  size_t with_pair = 0;
  for (const core::FrequentItemset& fi : result.value().itemsets()) {
    if (fi.items.size() < 2) continue;
    bool has = false;
    for (size_t i = 0; i < fi.items.size() && !has; ++i) {
      for (size_t j = i + 1; j < fi.items.size() && !has; ++j) {
        const std::string& key = db.Key(fi.items[i]);
        has = !key.empty() && key == db.Key(fi.items[j]);
      }
    }
    with_pair += has;
  }
  // The paper's prose says 31 of the 60 are bold; the count implied by
  // the published Table 1/Table 2 data is 30 (see EXPERIMENTS.md).
  EXPECT_EQ(with_pair, 30u);
}

TEST_F(PaperTable1Test, KcPlusEliminatesExactlyTheSameTypeItemsets) {
  const auto plain = core::MineApriori(table_.db(), 0.5);
  const auto kcplus = core::MineAprioriKCPlus(table_.db(), 0.5);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(kcplus.ok());
  EXPECT_EQ(kcplus.value().CountAtLeast(2), 30u);  // 60 - 30.
  EXPECT_EQ(kcplus.value().MaxItemsetSize(), 4u);

  // The meaningless pair of the paper's running example is gone...
  EXPECT_FALSE(
      kcplus.value()
          .SupportOf(Items(table_, {"contains_slum", "touches_slum"}))
          .has_value());
  // ...but the cross-type information survives, as Section 3 argues.
  EXPECT_TRUE(kcplus.value()
                  .SupportOf(Items(table_, {"contains_slum",
                                            "murderRate=high"}))
                  .has_value());
  EXPECT_TRUE(kcplus.value()
                  .SupportOf(Items(table_, {"touches_slum",
                                            "touches_school"}))
                  .has_value());
}

TEST_F(PaperTable1Test, LowerBoundFormulaHolds) {
  // Section 4.1: with m = 6 the lower bound is 57 <= 60.
  const auto result = core::MineApriori(table_.db(), 0.5);
  ASSERT_TRUE(result.ok());
  const size_t m = result.value().MaxItemsetSize();
  EXPECT_LE(stats::ItemsetCountLowerBound(static_cast<int>(m)),
            result.value().CountAtLeast(2));
}

TEST_F(PaperTable1Test, MinimalGainPredictionOnTable2) {
  // Paper: m=6, u=2, t1=t2=2, n=2 gives a minimal gain of 28; the real
  // gain here is 60 - 30 = 30 >= 28.
  const auto plain = core::MineApriori(table_.db(), 0.5);
  ASSERT_TRUE(plain.ok());
  const auto params =
      stats::AnalyzeLargestItemset(plain.value(), table_.db());
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params.value().m, 6);
  EXPECT_EQ(params.value().u, 2);
  EXPECT_EQ(params.value().t, (std::vector<int>{2, 2}));
  EXPECT_EQ(params.value().n, 2);
  EXPECT_EQ(stats::MinimalGain(params.value().t, params.value().n).value(),
            28u);

  const auto kcplus = core::MineAprioriKCPlus(table_.db(), 0.5);
  ASSERT_TRUE(kcplus.ok());
  const size_t real_gain =
      plain.value().CountAtLeast(2) - kcplus.value().CountAtLeast(2);
  EXPECT_GE(real_gain, 28u);
  EXPECT_EQ(real_gain, 30u);
}

TEST_F(PaperTable1Test, MeaninglessRulesDisappear) {
  // Without filtering, rules like contains_slum -> touches_slum exist;
  // with KC+, they cannot (the pair itemset is never generated).
  const auto plain = core::MineApriori(table_.db(), 0.5);
  const auto kcplus = core::MineAprioriKCPlus(table_.db(), 0.5);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(kcplus.ok());

  core::RuleOptions options;
  options.min_confidence = 0.5;
  auto has_same_type_rule = [this](const std::vector<core::AssociationRule>&
                                       rules) {
    for (const auto& r : rules) {
      for (core::ItemId a : r.antecedent.items()) {
        for (core::ItemId c : r.consequent.items()) {
          const std::string& key = table_.db().Key(a);
          if (!key.empty() && key == table_.db().Key(c)) return true;
        }
      }
    }
    return false;
  };
  EXPECT_TRUE(has_same_type_rule(
      core::GenerateRules(table_.db(), plain.value(), options)));
  EXPECT_FALSE(has_same_type_rule(
      core::GenerateRules(table_.db(), kcplus.value(), options)));
}

}  // namespace
}  // namespace sfpm
