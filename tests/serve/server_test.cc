#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/snapshot_holder.h"
#include "serve_test_util.h"
#include "store/reader.h"

namespace sfpm {
namespace serve {
namespace {

using obs::json::Value;

/// Holder + running server on an ephemeral port.
class ServeServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    path_ = UniqueSnapshotPath();
    WriteServeSnapshot(path_);
    ASSERT_TRUE(holder_.Load({path_}).ok());
    server_ = std::make_unique<Server>(&holder_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::string path_;
  SnapshotHolder holder_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeServerTest, AnswersEveryQueryTypeOverTheSocket) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  for (const std::string& request :
       {std::string("{\"q\":\"patterns\",\"id\":1}"),
        std::string("{\"q\":\"rules\",\"id\":2}"),
        std::string("{\"q\":\"predicates\",\"transaction\":0,\"id\":3}"),
        std::string(
            "{\"q\":\"window\",\"layer\":\"school\",\"bounds\":[0,0,10,10],"
            "\"id\":4}"),
        std::string("{\"q\":\"relate\",\"layer_a\":\"district\",\"id_a\":0,"
                    "\"layer_b\":\"school\",\"id_b\":0,\"id\":5}"),
        std::string("{\"q\":\"status\",\"id\":6}")}) {
    const Value response = client.Query(request);
    ASSERT_NE(response.Find("ok"), nullptr) << request;
    EXPECT_TRUE(response.Find("ok")->boolean) << request;
  }
}

TEST_F(ServeServerTest, PipelinesManyRequestsOnOneConnection) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // Queue several frames before reading anything; responses come back in
  // order with the ids echoed.
  std::string wire;
  for (int i = 0; i < 20; ++i) {
    wire += EncodeFrame("{\"q\":\"status\",\"id\":" + std::to_string(i) + "}");
  }
  ASSERT_TRUE(client.SendRaw(wire));
  for (int i = 0; i < 20; ++i) {
    auto parsed = obs::json::Parse(client.RecvFrame());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().Find("id")->number, static_cast<double>(i));
  }
}

TEST_F(ServeServerTest, MalformedFrameGetsErrorThenClose) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // A zero-length frame violates framing: one bad_frame response, EOF.
  ASSERT_TRUE(client.SendRaw(std::string(4, '\0')));
  auto parsed = obs::json::Parse(client.RecvFrame());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("error")->Find("code")->string, "bad_frame");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServeServerTest, OversizedFrameIsRejectedWithoutBuffering) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  StartServer(options);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // Only the length prefix arrives; the server must reject on sight.
  ASSERT_TRUE(client.SendRaw(
      EncodeFrame(std::string(1000, 'x')).substr(0, 4)));
  auto parsed = obs::json::Parse(client.RecvFrame());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("error")->Find("code")->string, "bad_frame");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(ServeServerTest, OverloadedConnectionsAreToldSo) {
  ServerOptions options;
  options.max_inflight = 1;
  options.workers = 1;
  StartServer(options);

  // First client occupies the single admission slot (proven by a served
  // round trip), so the second is rejected from the accept thread.
  TestClient first(server_->port());
  ASSERT_TRUE(first.connected());
  EXPECT_TRUE(first.Query("{\"q\":\"status\"}").Find("ok")->boolean);

  TestClient second(server_->port());
  ASSERT_TRUE(second.connected());
  auto parsed = obs::json::Parse(second.RecvFrame());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().Find("error")->Find("code")->string, "overloaded");
  EXPECT_TRUE(second.AtEof());

  // The first connection is unaffected by the rejection next door.
  EXPECT_TRUE(first.Query("{\"q\":\"patterns\"}").Find("ok")->boolean);
}

TEST_F(ServeServerTest, HotSwapMidStreamKeepsTheConnectionAndOldViewAlive) {
  StartServer();
  const std::string v2 = UniqueSnapshotPath("_v2");
  WriteServeSnapshotV2(v2);

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(client.Query("{\"q\":\"status\"}")
                .Find("result")->Find("generation")->number,
            1.0);

  // Satellite 5: a query-side reference taken before the swap must stay
  // fully readable after it — the old mmap lives until this shared_ptr
  // drops (ASan would flag a use-after-unmap here if it did not).
  std::shared_ptr<const ServingSnapshot> old_snap = holder_.Current();
  const store::TxDbView& old_view = *old_snap->txdb;
  const std::string_view old_name = old_view.row_names[6];

  TestClient admin(server_->port());
  ASSERT_TRUE(admin.connected());
  const Value reloaded =
      admin.Query("{\"q\":\"reload\",\"paths\":[\"" + v2 + "\"]}");
  ASSERT_NE(reloaded.Find("result"), nullptr);
  EXPECT_EQ(reloaded.Find("result")->Find("generation")->number, 2.0);

  // The pre-swap connection keeps working and now sees generation 2.
  EXPECT_EQ(client.Query("{\"q\":\"status\"}")
                .Find("result")->Find("generation")->number,
            2.0);

  // And the old generation's zero-copy pointers are still valid.
  EXPECT_EQ(old_name, "district_6");
  EXPECT_TRUE(old_snap->TestBit(0, 6));
  EXPECT_EQ(old_snap->generation, 1u);
}

TEST_F(ServeServerTest, ConcurrentClientsAgainstConcurrentReloads) {
  ServerOptions options;
  options.workers = 4;
  StartServer(options);
  const std::string v2 = UniqueSnapshotPath("_swap");
  WriteServeSnapshotV2(v2);

  // The TSan target: every response must be a well-formed success while
  // the snapshot is swapped out from under the queries repeatedly.
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      TestClient client(server_->port());
      if (!client.connected()) {
        failures.fetch_add(1);
        return;
      }
      const std::string requests[] = {
          "{\"q\":\"patterns\"}",
          "{\"q\":\"rules\"}",
          "{\"q\":\"predicates\",\"transaction\":6}",
          "{\"q\":\"window\",\"layer\":\"school\",\"bounds\":[0,0,30,10]}",
          "{\"q\":\"relate\",\"layer_a\":\"district\",\"id_a\":0,"
          "\"layer_b\":\"school\",\"id_b\":0}",
      };
      for (int i = 0; i < 50; ++i) {
        const std::string response =
            client.RoundTrip(requests[(t + i) % 5]);
        auto parsed = obs::json::Parse(response);
        if (!parsed.ok() || parsed.value().Find("ok") == nullptr ||
            !parsed.value().Find("ok")->boolean) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int swap = 0; swap < 10; ++swap) {
    ASSERT_TRUE(holder_.Load({swap % 2 == 0 ? v2 : path_}).ok());
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(holder_.generation(), 11u);
}

TEST_F(ServeServerTest, ShutdownQueryDrainsGracefully) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const Value response = client.Query("{\"q\":\"shutdown\",\"id\":\"bye\"}");
  ASSERT_NE(response.Find("result"), nullptr);
  EXPECT_TRUE(response.Find("result")->Find("draining")->boolean);
  EXPECT_EQ(response.Find("id")->string, "bye");
  server_->Wait();  // Must return: the accept loop saw the request.
  EXPECT_TRUE(server_->shutting_down());
}

TEST_F(ServeServerTest, RequestShutdownUnblocksWait) {
  StartServer();
  std::thread waiter([&] { server_->Wait(); });
  server_->RequestShutdown();
  waiter.join();
  EXPECT_TRUE(server_->shutting_down());
}

TEST_F(ServeServerTest, StartFailsCleanlyWithoutASnapshot) {
  SnapshotHolder empty;
  Server server(&empty, ServerOptions{});
  EXPECT_FALSE(server.Start().ok());
}

/// Plain HTTP GET against the telemetry port; whole response text.
std::string TelemetryGet(uint16_t port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  EXPECT_EQ(send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string TelemetryBody(uint16_t port, const std::string& path) {
  const std::string response = TelemetryGet(port, path);
  EXPECT_NE(response.find(" 200 "), std::string::npos) << path << ": "
                                                       << response;
  const size_t header_end = response.find("\r\n\r\n");
  return header_end == std::string::npos ? ""
                                         : response.substr(header_end + 4);
}

TEST_F(ServeServerTest, TelemetryEndpointsServeMetricsVarzAndTraces) {
  ServerOptions options;
  options.metrics_port = 0;
  options.slow_query_ms = 0;  // Every request lands in the slow log.
  options.trace_sample = 1;   // Every request lands in /tracez.
  StartServer(options);
  ASSERT_NE(server_->metrics_port(), 0);

  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_TRUE(client.Query("{\"q\":\"status\"}").Find("ok")->boolean);
  EXPECT_TRUE(client.Query("{\"q\":\"patterns\"}").Find("ok")->boolean);

  EXPECT_EQ(TelemetryBody(server_->metrics_port(), "/healthz"), "ok\n");

  const std::string metrics =
      TelemetryBody(server_->metrics_port(), "/metrics");
  EXPECT_NE(metrics.find("# TYPE sfpm_serve_queries counter\n"),
            std::string::npos);
  EXPECT_NE(metrics.find("sfpm_serve_latency_ms_patterns_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE sfpm_serve_inflight gauge\n"),
            std::string::npos);
  const std::string content_type = TelemetryGet(
      server_->metrics_port(), "/metrics");
  EXPECT_NE(content_type.find(
                "Content-Type: text/plain; version=0.0.4; charset=utf-8"),
            std::string::npos);

  const std::string varz = TelemetryBody(server_->metrics_port(), "/varz");
  auto parsed = obs::json::Parse(varz);
  ASSERT_TRUE(parsed.ok()) << varz;
  const Value& root = parsed.value();
  EXPECT_EQ(root.Find("generation")->number, 1.0);
  EXPECT_EQ(root.Find("port")->number,
            static_cast<double>(server_->port()));
  ASSERT_NE(root.Find("latency_ms"), nullptr);
  EXPECT_NE(root.Find("latency_ms")->Find("patterns"), nullptr);
  EXPECT_GE(root.Find("slow_query_total")->number, 2.0);
  ASSERT_NE(root.Find("slow_queries"), nullptr);
  EXPECT_FALSE(root.Find("slow_queries")->array.empty());
  EXPECT_GE(root.Find("trace_total")->number, 2.0);

  // The engine-side rings agree with what /varz reported.
  EXPECT_GE(server_->slow_queries().total(), 2u);
  EXPECT_GE(server_->sampled_traces().total(), 2u);

  const std::string tracez =
      TelemetryBody(server_->metrics_port(), "/tracez");
  auto trace = obs::json::Parse(tracez);
  ASSERT_TRUE(trace.ok()) << tracez;
  const Value* events = trace.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->array.empty());

  EXPECT_NE(TelemetryGet(server_->metrics_port(), "/nope").find(" 404 "),
            std::string::npos);

  // Drain: /healthz flips while the endpoint keeps serving scrapes.
  server_->RequestShutdown();
  server_->Wait();
  EXPECT_EQ(TelemetryBody(server_->metrics_port(), "/healthz"),
            "draining\n");
}

TEST_F(ServeServerTest, MetricsPortDisabledByDefault) {
  StartServer();
  EXPECT_EQ(server_->metrics_port(), 0);
  EXPECT_EQ(server_->slow_queries().total(), 0u);
}

TEST_F(ServeServerTest, TelemetryStartFailureTearsDownCleanly) {
  // Occupy a port, then ask the server to bind its telemetry there.
  MetricsHttpServer squatter({}, [](const std::string&, std::string*,
                                    std::string*) { return false; });
  ASSERT_TRUE(squatter.Start().ok());
  path_ = UniqueSnapshotPath();
  WriteServeSnapshot(path_);
  ASSERT_TRUE(holder_.Load({path_}).ok());
  ServerOptions options;
  options.metrics_port = static_cast<int>(squatter.port());
  Server server(&holder_, options);
  EXPECT_FALSE(server.Start().ok());
  EXPECT_EQ(server.metrics_port(), 0);
  // The query port was released too: a fresh server can start on defaults.
  Server retry(&holder_, ServerOptions{});
  EXPECT_TRUE(retry.Start().ok());
  retry.RequestShutdown();
  retry.Wait();
}

}  // namespace
}  // namespace serve
}  // namespace sfpm
