#include "serve/query.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "obs/json.h"
#include "serve/snapshot_holder.h"
#include "serve_test_util.h"

namespace sfpm {
namespace serve {
namespace {

using obs::json::Parse;
using obs::json::Value;

/// One holder + engine over the standard serve snapshot.
class ServeQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueSnapshotPath();
    WriteServeSnapshot(path_);
    ASSERT_TRUE(holder_.Load({path_}).ok());
    engine_ = std::make_unique<QueryEngine>(&holder_);
  }

  /// Handle + parse; every response must at least be valid JSON.
  Value Ask(const std::string& payload) {
    const HandleResult handled = engine_->Handle(payload);
    auto parsed = Parse(handled.response);
    EXPECT_TRUE(parsed.ok()) << handled.response;
    return parsed.ok() ? parsed.value() : Value();
  }

  static void ExpectError(const Value& response, const std::string& code) {
    ASSERT_NE(response.Find("ok"), nullptr);
    EXPECT_FALSE(response.Find("ok")->boolean);
    ASSERT_NE(response.Find("error"), nullptr);
    EXPECT_EQ(response.Find("error")->Find("code")->string, code);
  }

  std::string path_;
  SnapshotHolder holder_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(ServeQueryTest, PatternsReturnsAllBySupportDescending) {
  const Value r = Ask("{\"q\":\"patterns\",\"id\":1}");
  EXPECT_TRUE(r.Find("ok")->boolean);
  EXPECT_EQ(r.Find("id")->number, 1.0);
  const Value* result = r.Find("result");
  EXPECT_EQ(result->Find("total")->number, 3.0);
  const auto& sets = result->Find("itemsets")->array;
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].Find("support")->number, 35.0);
  EXPECT_EQ(sets[0].Find("items")->array[0].string, "contains_slum");
}

TEST_F(ServeQueryTest, PatternsMinSupportAndContainsFilter) {
  const Value r = Ask(
      "{\"q\":\"patterns\",\"min_support\":25,"
      "\"contains\":[\"touches_street\"]}");
  const Value* result = r.Find("result");
  ASSERT_NE(result, nullptr) << "not ok";
  EXPECT_EQ(result->Find("total")->number, 1.0);
  EXPECT_EQ(result->Find("itemsets")->array[0].Find("support")->number, 30.0);
}

TEST_F(ServeQueryTest, PatternsLimitKeepsCountingTotal) {
  const Value r = Ask("{\"q\":\"patterns\",\"limit\":1}");
  const Value* result = r.Find("result");
  EXPECT_EQ(result->Find("total")->number, 3.0);
  EXPECT_EQ(result->Find("returned")->number, 1.0);
  EXPECT_EQ(result->Find("itemsets")->array.size(), 1u);
}

TEST_F(ServeQueryTest, PatternsUnknownLabelIsNotFound) {
  ExpectError(Ask("{\"q\":\"patterns\",\"contains\":[\"nope\"]}"),
              "not_found");
}

TEST_F(ServeQueryTest, RulesDefaultConfidenceAndLift) {
  const Value r = Ask("{\"q\":\"rules\"}");
  const Value* result = r.Find("result");
  ASSERT_NE(result, nullptr);
  // Only {touches_street} -> contains_slum reaches 21/30 = 0.7.
  ASSERT_EQ(result->Find("rules")->array.size(), 1u);
  const Value& rule = result->Find("rules")->array[0];
  EXPECT_EQ(rule.Find("antecedent")->array[0].string, "touches_street");
  EXPECT_EQ(rule.Find("consequent")->string, "contains_slum");
  EXPECT_NEAR(rule.Find("confidence")->number, 0.7, 1e-9);
  // lift = 0.7 / (35 / 70 transactions) = 1.4.
  EXPECT_NEAR(rule.Find("lift")->number, 1.4, 1e-9);
}

TEST_F(ServeQueryTest, RulesLooseConfidenceFindsBothDirections) {
  const Value r = Ask("{\"q\":\"rules\",\"min_confidence\":0.5}");
  EXPECT_EQ(r.Find("result")->Find("rules")->array.size(), 2u);
}

TEST_F(ServeQueryTest, PredicatesByRowNameAndByIndexAgree) {
  const Value by_name = Ask("{\"q\":\"predicates\",\"row\":\"district_6\"}");
  const Value* result = by_name.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("transaction")->number, 6.0);
  // Row 6: divisible by 2 and 3, so both predicates hold.
  ASSERT_EQ(result->Find("items")->array.size(), 2u);

  const Value by_index = Ask("{\"q\":\"predicates\",\"transaction\":6}");
  EXPECT_EQ(by_index.Find("result")->Find("row")->string, "district_6");
  EXPECT_EQ(by_index.Find("result")->Find("items")->array.size(), 2u);
}

TEST_F(ServeQueryTest, PredicatesUnknownRowIsNotFound) {
  ExpectError(Ask("{\"q\":\"predicates\",\"row\":\"nope\"}"), "not_found");
  ExpectError(Ask("{\"q\":\"predicates\",\"transaction\":70}"), "not_found");
}

TEST_F(ServeQueryTest, WindowFindsSchoolInsideFirstDistrict) {
  const Value r = Ask(
      "{\"q\":\"window\",\"layer\":\"school\",\"bounds\":[0,0,10,10],"
      "\"wkt\":true}");
  const Value* result = r.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("total")->number, 1.0);
  const Value& feature = result->Find("features")->array[0];
  EXPECT_EQ(feature.Find("id")->number, 0.0);
  EXPECT_EQ(feature.Find("wkt")->string, "POINT (5 5)");
}

TEST_F(ServeQueryTest, WindowUnknownLayerIsNotFound) {
  ExpectError(
      Ask("{\"q\":\"window\",\"layer\":\"nope\",\"bounds\":[0,0,1,1]}"),
      "not_found");
}

TEST_F(ServeQueryTest, WindowBadBoundsIsBadRequest) {
  ExpectError(Ask("{\"q\":\"window\",\"layer\":\"school\",\"bounds\":[1]}"),
              "bad_request");
}

TEST_F(ServeQueryTest, RelateDistrictContainsSchool) {
  const Value r = Ask(
      "{\"q\":\"relate\",\"layer_a\":\"district\",\"id_a\":0,"
      "\"layer_b\":\"school\",\"id_b\":0}");
  const Value* result = r.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("relation")->string, "contains");
  EXPECT_EQ(result->Find("converse")->string, "within");
}

TEST_F(ServeQueryTest, RelateIdOutOfRangeIsNotFound) {
  ExpectError(Ask("{\"q\":\"relate\",\"layer_a\":\"district\",\"id_a\":9,"
                  "\"layer_b\":\"school\",\"id_b\":0}"),
              "not_found");
}

TEST_F(ServeQueryTest, StatusReportsInventoryAndMetrics) {
  Ask("{\"q\":\"patterns\"}");  // At least one query on the books.
  const Value r = Ask("{\"q\":\"status\"}");
  const Value* result = r.Find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->Find("generation")->number, 1.0);
  EXPECT_EQ(result->Find("transactions")->number, 70.0);
  EXPECT_EQ(result->Find("layers")->array.size(), 2u);
  EXPECT_EQ(result->Find("patterns")->Find("itemsets")->number, 3.0);
  const Value* metrics = result->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(metrics->Find("counters")->Find("serve.queries")->number, 2.0);
  EXPECT_NE(metrics->Find("latency_ms")->Find("patterns"), nullptr);
}

TEST_F(ServeQueryTest, ReloadBumpsGeneration) {
  const std::string v2 = UniqueSnapshotPath("_v2");
  WriteServeSnapshotV2(v2);
  const Value r =
      Ask("{\"q\":\"reload\",\"paths\":[\"" + v2 + "\"]}");
  ASSERT_NE(r.Find("result"), nullptr);
  EXPECT_EQ(r.Find("result")->Find("generation")->number, 2.0);
  // The new generation answers with the new support.
  const Value after = Ask("{\"q\":\"patterns\",\"min_size\":2}");
  EXPECT_EQ(
      after.Find("result")->Find("itemsets")->array[0].Find("support")->number,
      22.0);
}

TEST_F(ServeQueryTest, ReloadBadPathKeepsServingOldGeneration) {
  const Value r = Ask("{\"q\":\"reload\",\"paths\":[\"/nonexistent.sfpm\"]}");
  ASSERT_NE(r.Find("ok"), nullptr);
  EXPECT_FALSE(r.Find("ok")->boolean);
  EXPECT_EQ(Ask("{\"q\":\"status\"}").Find("result")->Find("generation")
                ->number,
            1.0);
}

TEST_F(ServeQueryTest, ShutdownSetsFlagAndAcknowledges) {
  const HandleResult handled = engine_->Handle("{\"q\":\"shutdown\"}");
  EXPECT_TRUE(handled.shutdown);
  auto parsed = Parse(handled.response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().Find("result")->Find("draining")->boolean);
}

TEST_F(ServeQueryTest, MalformedAndUnknownRequests) {
  ExpectError(Ask("not json at all"), "bad_request");
  ExpectError(Ask("[1,2,3]"), "bad_request");
  ExpectError(Ask("{\"q\":\"frobnicate\"}"), "unknown_query");
  ExpectError(Ask("{\"q\":\"patterns\",\"limit\":-3}"), "bad_request");
}

TEST_F(ServeQueryTest, IdIsEchoedVerbatim) {
  const Value r = Ask("{\"q\":\"status\",\"id\":\"req-17\"}");
  EXPECT_EQ(r.Find("id")->string, "req-17");
}

TEST_F(ServeQueryTest, EveryEngineResponseCarriesARequestId) {
  const Value ok = Ask("{\"q\":\"status\"}");
  ASSERT_NE(ok.Find("rid"), nullptr);
  EXPECT_EQ(ok.Find("rid")->string, "r1");
  const Value error = Ask("{\"q\":\"frobnicate\"}");
  ASSERT_NE(error.Find("rid"), nullptr);
  EXPECT_EQ(error.Find("rid")->string, "r2");
  // Parse failures get an id too — they went through the engine.
  EXPECT_EQ(Ask("not json").Find("rid")->string, "r3");
}

TEST_F(ServeQueryTest, QueryTypeLabelBoundsCardinality) {
  EXPECT_EQ(QueryTypeLabel("patterns"), "patterns");
  EXPECT_EQ(QueryTypeLabel("status"), "status");
  EXPECT_EQ(QueryTypeLabel("frobnicate"), "other");
  EXPECT_EQ(QueryTypeLabel("DROP TABLE"), "other");
  EXPECT_EQ(QueryTypeLabel(""), "other");
}

TEST(ServeSlowQueryTest, ThresholdZeroRecordsEveryQuery) {
  const std::string path = UniqueSnapshotPath("_slow");
  WriteServeSnapshot(path);
  SnapshotHolder holder;
  ASSERT_TRUE(holder.Load({path}).ok());
  QueryEngine engine(&holder);
  obs::SlowQueryLog slow_log(4);
  EngineTelemetry telemetry;
  telemetry.slow_query_ms = 0;  // Everything is "slow".
  telemetry.slow_log = &slow_log;
  engine.Handle("{\"q\":\"status\"}");
  engine.Handle("{\"q\":\"patterns\"}");
  ASSERT_EQ(slow_log.total(), 0u) << "recorded before telemetry was set";
  engine.set_telemetry(telemetry);
  engine.Handle("{\"q\":\"status\"}");
  engine.Handle("{\"q\":\"patterns\"}");
  const auto entries = slow_log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].type, "status");
  EXPECT_EQ(entries[1].type, "patterns");
  EXPECT_EQ(entries[1].generation, 1u);
  EXPECT_FALSE(entries[1].request_id.empty());
  // The span tree names the request and the typed query phase.
  EXPECT_NE(entries[1].spans.find("request"), std::string::npos);
  EXPECT_NE(entries[1].spans.find("query/patterns"), std::string::npos);
}

TEST(ServeSlowQueryTest, NegativeThresholdDisablesTheLog) {
  const std::string path = UniqueSnapshotPath("_noslow");
  WriteServeSnapshot(path);
  SnapshotHolder holder;
  ASSERT_TRUE(holder.Load({path}).ok());
  QueryEngine engine(&holder);
  obs::SlowQueryLog slow_log(4);
  EngineTelemetry telemetry;
  telemetry.slow_query_ms = -1;
  telemetry.slow_log = &slow_log;
  engine.set_telemetry(telemetry);
  engine.Handle("{\"q\":\"status\"}");
  EXPECT_EQ(slow_log.total(), 0u);
}

TEST(ServeTraceSampleTest, EveryNthRequestIsCaptured) {
  const std::string path = UniqueSnapshotPath("_sample");
  WriteServeSnapshot(path);
  SnapshotHolder holder;
  ASSERT_TRUE(holder.Load({path}).ok());
  QueryEngine engine(&holder);
  SampledTraces traces(8);
  EngineTelemetry telemetry;
  telemetry.trace_sample = 3;
  telemetry.traces = &traces;
  engine.set_telemetry(telemetry);
  for (int i = 0; i < 7; ++i) engine.Handle("{\"q\":\"status\"}");
  // Sequence numbers 3 and 6 hit seq % 3 == 0.
  const auto entries = traces.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].seq, 3u);
  EXPECT_EQ(entries[1].seq, 6u);
  EXPECT_EQ(entries[0].type, "status");
  ASSERT_FALSE(entries[0].spans.empty());
  EXPECT_EQ(entries[0].spans[0].name, "request");
}

}  // namespace
}  // namespace serve
}  // namespace sfpm
