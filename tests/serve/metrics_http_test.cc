#include "serve/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace sfpm {
namespace serve {
namespace {

/// Sends raw bytes to 127.0.0.1:port and reads the whole response (the
/// server always closes after one request).
std::string RawRequest(uint16_t port, const std::string& bytes) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    ADD_FAILURE() << "connect: " << strerror(errno);
    return "";
  }
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: x\r\n"
                              "Connection: close\r\n\r\n");
}

/// Serves /hello with a fixed body; everything else 404s.
MetricsHttpServer::Handler HelloHandler(std::string* last_path = nullptr) {
  return [last_path](const std::string& path, std::string* content_type,
                     std::string* body) {
    if (last_path != nullptr) *last_path = path;
    if (path != "/hello") return false;
    *content_type = "text/plain";
    *body = "hi\n";
    return true;
  };
}

TEST(MetricsHttpTest, ServesHandlerPathsAnd404sTheRest) {
  MetricsHttpServer server({}, HelloHandler());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);  // Ephemeral port was bound and read back.
  const std::string ok = Get(server.port(), "/hello");
  EXPECT_NE(ok.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(ok.find("\r\n\r\nhi\n"), std::string::npos);
  const std::string missing = Get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404 "), std::string::npos) << missing;
  server.Stop();
}

TEST(MetricsHttpTest, QueryStringIsStrippedBeforeTheHandler) {
  std::string last_path;
  MetricsHttpServer server({}, HelloHandler(&last_path));
  ASSERT_TRUE(server.Start().ok());
  const std::string ok = Get(server.port(), "/hello?window=30s&x=1");
  EXPECT_NE(ok.find(" 200 "), std::string::npos) << ok;
  EXPECT_EQ(last_path, "/hello");
  server.Stop();
}

TEST(MetricsHttpTest, NonGetIs405) {
  MetricsHttpServer server({}, HelloHandler());
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequest(
      server.port(), "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405 "), std::string::npos) << response;
  server.Stop();
}

TEST(MetricsHttpTest, MalformedRequestLineIs400) {
  MetricsHttpServer server({}, HelloHandler());
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequest(server.port(), "nonsense\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400 "), std::string::npos) << response;
  server.Stop();
}

TEST(MetricsHttpTest, StartOnTakenPortFailsWithoutSideEffects) {
  MetricsHttpServer first({}, HelloHandler());
  ASSERT_TRUE(first.Start().ok());
  MetricsHttpServer::Options options;
  options.port = first.port();
  MetricsHttpServer second(options, HelloHandler());
  EXPECT_FALSE(second.Start().ok());
  EXPECT_EQ(second.port(), 0);
  // The first server is unaffected.
  EXPECT_NE(Get(first.port(), "/hello").find(" 200 "), std::string::npos);
}

TEST(MetricsHttpTest, StopIsIdempotentAndServerKeepsServingUntilThen) {
  MetricsHttpServer server({}, HelloHandler());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(Get(server.port(), "/hello").find(" 200 "), std::string::npos);
  EXPECT_NE(Get(server.port(), "/hello").find(" 200 "), std::string::npos);
  server.Stop();
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace sfpm
