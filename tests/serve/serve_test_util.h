// Shared fixtures of the serve tests: tiny snapshot builders (a pattern
// set + transaction db + two spatial layers, enough to exercise every
// query type) and a blocking loopback client speaking the framed JSON
// protocol of docs/SERVE.md.

#ifndef SFPM_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define SFPM_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "core/itemset.h"
#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "geom/wkt.h"
#include "obs/json.h"
#include "serve/protocol.h"
#include "store/writer.h"

namespace sfpm {
namespace serve {

/// Two layers: districts (two squares) and schools (three points; the
/// first inside district 0, the second inside district 1, the third in
/// neither).
inline feature::Layer DistrictLayer() {
  feature::Layer layer("district");
  for (const char* wkt : {"POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
                          "POLYGON ((20 0, 30 0, 30 10, 20 10, 20 0))"}) {
    auto g = geom::ReadWkt(wkt);
    EXPECT_TRUE(g.ok()) << wkt;
    layer.Add(g.value(), {{"name", "d"}});
  }
  return layer;
}

inline feature::Layer SchoolLayer() {
  feature::Layer layer("school");
  for (const char* wkt :
       {"POINT (5 5)", "POINT (25 5)", "POINT (50 50)"}) {
    auto g = geom::ReadWkt(wkt);
    EXPECT_TRUE(g.ok()) << wkt;
    layer.Add(g.value(), {{"name", "s"}});
  }
  return layer;
}

/// 70 transactions (two bitmap words) over three predicate items.
inline feature::PredicateTable ServeTable() {
  feature::PredicateTable table;
  for (int row = 0; row < 70; ++row) {
    table.AddRow("district_" + std::to_string(row));
    if (row % 2 == 0) {
      EXPECT_TRUE(table.SetSpatial(row, "contains", "slum").ok());
    }
    if (row % 3 == 0) {
      EXPECT_TRUE(table.SetSpatial(row, "touches", "street").ok());
    }
  }
  return table;
}

/// Supports chosen so exactly one rule clears the default 0.7 confidence:
/// {touches_street} -> contains_slum at 21/30 = 0.7.
inline store::PatternSet ServePatterns() {
  store::PatternSet ps;
  ps.labels = {"contains_slum", "touches_street"};
  ps.keys = {"slum", "street"};
  ps.itemsets = {{core::Itemset({0}), 35},
                 {core::Itemset({1}), 30},
                 {core::Itemset({0, 1}), 21}};
  ps.min_support = 0.15;
  ps.algorithm = "apriori";
  ps.filter = "kc+";
  return ps;
}

/// One snapshot carrying every served section type.
inline std::string WriteServeSnapshot(const std::string& path) {
  store::SnapshotWriter w;
  w.AddLayer(DistrictLayer());
  w.AddLayer(SchoolLayer());
  w.AddTable(ServeTable());
  w.AddPatternSet(ServePatterns());
  EXPECT_TRUE(w.WriteTo(path).ok()) << path;
  return path;
}

/// A second-generation snapshot, distinguishable from the first: one more
/// itemset and a fourth school.
inline std::string WriteServeSnapshotV2(const std::string& path) {
  store::SnapshotWriter w;
  w.AddLayer(DistrictLayer());
  feature::Layer schools = SchoolLayer();
  auto g = geom::ReadWkt("POINT (7 7)");
  EXPECT_TRUE(g.ok());
  schools.Add(g.value(), {{"name", "s"}});
  w.AddLayer(schools);
  w.AddTable(ServeTable());
  store::PatternSet ps = ServePatterns();
  ps.itemsets[2].support = 22;  // Distinguishes generation 2 in queries.
  w.AddPatternSet(ps);
  EXPECT_TRUE(w.WriteTo(path).ok()) << path;
  return path;
}

/// A per-test unique snapshot path. gtest_discover_tests runs every TEST
/// as its own ctest process, in parallel — tests sharing one TempDir file
/// would rewrite it under a sibling's live mmap (SIGBUS).
inline std::string UniqueSnapshotPath(const std::string& suffix = "") {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "/" + info->test_suite_name() + "_" +
         info->name() + suffix + ".sfpm";
}

/// Blocking loopback client: one connection, framed request/response.
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    connected_ = connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0;
  }

  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  /// Sends raw bytes (framed or deliberately malformed).
  bool SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads exactly one framed payload; empty on EOF/error.
  std::string RecvFrame() {
    std::string header = RecvExactly(4);
    if (header.size() != 4) return "";
    uint32_t length = 0;
    std::memcpy(&length, header.data(), 4);
    return RecvExactly(length);
  }

  /// One framed request, one framed response.
  std::string RoundTrip(const std::string& request_json) {
    if (!SendRaw(EncodeFrame(request_json))) return "";
    return RecvFrame();
  }

  /// RoundTrip + JSON parse; fails the test on transport/parse errors.
  obs::json::Value Query(const std::string& request_json) {
    const std::string response = RoundTrip(request_json);
    EXPECT_FALSE(response.empty()) << "no response to: " << request_json;
    auto parsed = obs::json::Parse(response);
    EXPECT_TRUE(parsed.ok()) << response;
    return parsed.ok() ? parsed.value() : obs::json::Value();
  }

  /// True when the peer has closed (a clean EOF on the next read).
  bool AtEof() { return RecvExactly(1).empty(); }

 private:
  std::string RecvExactly(size_t n) {
    std::string out;
    out.reserve(n);
    char buf[4096];
    while (out.size() < n) {
      const ssize_t got =
          recv(fd_, buf, std::min(sizeof(buf), n - out.size()), 0);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        return out.size() == n ? out : std::string();
      }
      out.append(buf, static_cast<size_t>(got));
    }
    return out;
  }

  int fd_ = -1;
  bool connected_ = false;
};

}  // namespace serve
}  // namespace sfpm

#endif  // SFPM_TESTS_SERVE_SERVE_TEST_UTIL_H_
