#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace sfpm {
namespace serve {
namespace {

TEST(ServeFrameTest, EncodeRoundTripsThroughDecoder) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame("{\"q\":\"status\"}"));
  auto payload = decoder.Next();
  ASSERT_TRUE(payload.ok()) << payload.status().message();
  EXPECT_EQ(payload.value(), "{\"q\":\"status\"}");
  EXPECT_EQ(decoder.buffered(), 0u);
  // And the stream is clean again: no phantom second frame.
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kNotFound);
}

TEST(ServeFrameTest, ByteAtATimeChunkingReassembles) {
  const std::string wire = EncodeFrame("hello") + EncodeFrame("world");
  FrameDecoder decoder;
  std::vector<std::string> out;
  for (char byte : wire) {
    decoder.Feed(std::string_view(&byte, 1));
    for (;;) {
      auto payload = decoder.Next();
      if (!payload.ok()) break;
      out.push_back(payload.value());
    }
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "hello");
  EXPECT_EQ(out[1], "world");
}

TEST(ServeFrameTest, ManyFramesInOneFeed) {
  std::string wire;
  for (int i = 0; i < 100; ++i) wire += EncodeFrame(std::to_string(i));
  FrameDecoder decoder;
  decoder.Feed(wire);
  for (int i = 0; i < 100; ++i) {
    auto payload = decoder.Next();
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(payload.value(), std::to_string(i));
  }
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kNotFound);
}

TEST(ServeFrameTest, ZeroLengthFramePoisons) {
  FrameDecoder decoder;
  decoder.Feed(std::string(4, '\0'));
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned decoders stay poisoned: framing is unrecoverable.
  decoder.Feed(EncodeFrame("ok"));
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeFrameTest, OversizedDeclaredLengthPoisonsBeforeBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  decoder.Feed(EncodeFrame(std::string(17, 'x')).substr(0, 4));
  EXPECT_EQ(decoder.Next().status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(ServeFrameTest, FrameAtTheLimitIsAccepted) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  decoder.Feed(EncodeFrame(std::string(16, 'x')));
  auto payload = decoder.Next();
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload.value().size(), 16u);
}

TEST(ServeFrameTest, BufferCompactionKeepsLongStreamsBounded) {
  FrameDecoder decoder;
  const std::string frame = EncodeFrame(std::string(1000, 'a'));
  for (int i = 0; i < 1000; ++i) {
    decoder.Feed(frame);
    ASSERT_TRUE(decoder.Next().ok());
  }
  // Without compaction a megabyte of consumed history would linger.
  EXPECT_LT(decoder.buffered(), 2 * frame.size());
}

TEST(ServeParseRequestTest, ValidRequest) {
  auto request = ParseRequest("{\"q\":\"patterns\",\"id\":7,\"limit\":3}");
  ASSERT_TRUE(request.ok()) << request.status().message();
  EXPECT_EQ(request.value().query, "patterns");
  EXPECT_EQ(RequestIdJson(request.value().body), "7");
  const obs::json::Value* limit = request.value().body.Find("limit");
  ASSERT_NE(limit, nullptr);
  EXPECT_EQ(limit->number, 3.0);
}

TEST(ServeParseRequestTest, RejectsNonJson) {
  EXPECT_EQ(ParseRequest("not json").status().code(),
            StatusCode::kParseError);
}

TEST(ServeParseRequestTest, RejectsNonObject) {
  EXPECT_EQ(ParseRequest("[1,2]").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeParseRequestTest, RejectsMissingOrEmptyQ) {
  EXPECT_FALSE(ParseRequest("{\"id\":1}").ok());
  EXPECT_FALSE(ParseRequest("{\"q\":\"\"}").ok());
  EXPECT_FALSE(ParseRequest("{\"q\":3}").ok());
}

TEST(ServeEnvelopeTest, OkResponseParsesBack) {
  const std::string response = OkResponse("\"abc\"", "{\"n\":1}");
  auto parsed = obs::json::Parse(response);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().Find("id")->string, "abc");
  EXPECT_TRUE(parsed.value().Find("ok")->boolean);
  EXPECT_EQ(parsed.value().Find("result")->Find("n")->number, 1.0);
}

TEST(ServeEnvelopeTest, ErrorResponseCarriesCodeAndMessage) {
  const std::string response =
      ErrorResponse("null", ErrorCode::kOverloaded, "try \"later\"");
  auto parsed = obs::json::Parse(response);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_FALSE(parsed.value().Find("ok")->boolean);
  const obs::json::Value* error = parsed.value().Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string, "overloaded");
  EXPECT_EQ(error->Find("message")->string, "try \"later\"");
}

TEST(ServeEnvelopeTest, EveryErrorCodeHasAStableName) {
  for (ErrorCode code :
       {ErrorCode::kBadFrame, ErrorCode::kBadRequest, ErrorCode::kUnknownQuery,
        ErrorCode::kNotFound, ErrorCode::kOverloaded, ErrorCode::kShuttingDown,
        ErrorCode::kInternal}) {
    EXPECT_STRNE(ErrorCodeName(code), "");
  }
}

TEST(ServeValueToJsonTest, RoundTripsNestedValues) {
  const std::string text =
      "{\"a\":[1,true,null,\"s\"],\"b\":{\"c\":2.5}}";
  auto parsed = obs::json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  auto reparsed = obs::json::Parse(ValueToJson(parsed.value()));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().Find("a")->array.size(), 4u);
  EXPECT_EQ(reparsed.value().Find("b")->Find("c")->number, 2.5);
}

TEST(ServeValueToJsonTest, IdDefaultsToNull) {
  auto request = ParseRequest("{\"q\":\"status\"}");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(RequestIdJson(request.value().body), "null");
}

}  // namespace
}  // namespace serve
}  // namespace sfpm
