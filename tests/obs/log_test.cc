#include "obs/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace sfpm {
namespace obs {
namespace {

TEST(LoggerTest, FormatIsDeterministicLogfmt) {
  EXPECT_EQ(Logger::Format(LogLevel::kInfo, "listening",
                           {{"port", uint64_t{8437}}}, 0),
            "ts=1970-01-01T00:00:00.000Z level=info msg=listening port=8437");
  EXPECT_EQ(Logger::Format(LogLevel::kWarn, "slow query",
                           {{"rid", "r17"}, {"latency_ms", 102.5}},
                           1754650000123),
            "ts=2025-08-08T10:46:40.123Z level=warn msg=\"slow query\" "
            "rid=r17 latency_ms=102.5");
}

TEST(LoggerTest, FieldRenderingPerType) {
  EXPECT_EQ(Logger::Format(LogLevel::kError, "m",
                           {{"d", 2.5},
                            {"u", uint64_t{42}},
                            {"i", -3},
                            {"b", true},
                            {"s", "plain"}},
                           0),
            "ts=1970-01-01T00:00:00.000Z level=error msg=m d=2.5 u=42 i=-3 "
            "b=true s=plain");
}

TEST(LoggerTest, QuotingAndEscaping) {
  // Spaces, '=', quotes, backslashes, newlines, tabs, and the empty
  // string all force quotes; specials are escaped.
  EXPECT_EQ(
      Logger::Format(LogLevel::kInfo, "m",
                     {{"a", "has space"},
                      {"b", "k=v"},
                      {"c", "say \"hi\""},
                      {"d", "back\\slash"},
                      {"e", "line\nbreak\ttab"},
                      {"f", ""}},
                     0),
      "ts=1970-01-01T00:00:00.000Z level=info msg=m a=\"has space\" "
      "b=\"k=v\" c=\"say \\\"hi\\\"\" d=\"back\\\\slash\" "
      "e=\"line\\nbreak\\ttab\" f=\"\"");
}

TEST(LoggerTest, LevelNamesAreStable) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "error");
}

TEST(LoggerTest, MinLevelGatesOutput) {
  Logger logger(nullptr);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kDebug));  // Default is info.
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kInfo));
  logger.set_min_level(LogLevel::kError);
  EXPECT_FALSE(logger.ShouldLog(LogLevel::kWarn));
  EXPECT_TRUE(logger.ShouldLog(LogLevel::kError));
}

TEST(LoggerTest, WritesOneLinePerEventToTheSink) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  Logger logger(sink);
  logger.Info("first", {{"n", 1}});
  logger.set_min_level(LogLevel::kError);
  logger.Info("suppressed");
  logger.Error("second");
  std::rewind(sink);
  std::string content;
  char buf[4096];
  size_t read;
  while ((read = std::fread(buf, 1, sizeof(buf), sink)) > 0) {
    content.append(buf, read);
  }
  std::fclose(sink);
  EXPECT_NE(content.find("msg=first n=1\n"), std::string::npos);
  EXPECT_EQ(content.find("suppressed"), std::string::npos);
  EXPECT_NE(content.find("level=error msg=second\n"), std::string::npos);
}

// Concurrent writers must never interleave within a line (exercised under
// TSan by the check.sh sanitizer stage).
TEST(LoggerTest, ConcurrentWritersKeepLinesWhole) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  Logger logger(sink);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&logger, t] {
      for (int i = 0; i < kLines; ++i) {
        logger.Info("tick", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& w : writers) w.join();
  std::rewind(sink);
  std::string content;
  char buf[4096];
  size_t read;
  while ((read = std::fread(buf, 1, sizeof(buf), sink)) > 0) {
    content.append(buf, read);
  }
  std::fclose(sink);
  int lines = 0;
  size_t pos = 0;
  while ((pos = content.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, kThreads * kLines);
  // Every line starts with the timestamp key — no torn writes.
  pos = 0;
  for (int i = 0; i < lines; ++i) {
    EXPECT_EQ(content.compare(pos, 3, "ts="), 0) << "line " << i;
    pos = content.find('\n', pos) + 1;
  }
}

TEST(SlowQueryLogTest, RingBoundsEntriesButCountsAll) {
  SlowQueryLog log(2);
  EXPECT_EQ(log.total(), 0u);
  EXPECT_TRUE(log.Entries().empty());
  for (uint64_t i = 1; i <= 5; ++i) {
    SlowQueryEntry entry;
    entry.seq = i;
    entry.request_id = "r" + std::to_string(i);
    entry.type = "patterns";
    entry.latency_ms = static_cast<double>(i);
    log.Record(std::move(entry));
  }
  EXPECT_EQ(log.total(), 5u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);  // Capacity caps retention, oldest first.
  EXPECT_EQ(entries[0].seq, 4u);
  EXPECT_EQ(entries[1].seq, 5u);
  EXPECT_EQ(entries[1].request_id, "r5");
}

}  // namespace
}  // namespace obs
}  // namespace sfpm
