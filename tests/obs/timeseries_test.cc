#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace sfpm {
namespace obs {
namespace {

// Two SampleNow calls need distinct steady-clock readings for a window to
// span them; a millisecond is orders of magnitude above the clock's
// resolution.
void NudgeClock() {
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
}

TEST(TimeSeriesTest, SampleCountTracksCalls) {
  MetricsRegistry registry;
  RingSampler sampler(&registry);
  EXPECT_EQ(sampler.samples(), 0u);
  sampler.SampleNow();
  sampler.SampleNow();
  EXPECT_EQ(sampler.samples(), 2u);
}

TEST(TimeSeriesTest, CounterRateNeedsTwoSamplesSpanningTheWindow) {
  MetricsRegistry registry;
  RingSampler sampler(&registry);
  Counter& counter = registry.GetCounter("ts.hits");
  counter.Add(5);
  sampler.SampleNow();
  EXPECT_EQ(sampler.CounterRate("ts.hits", 60000.0), 0.0);  // One sample.
  NudgeClock();
  counter.Add(100);
  sampler.SampleNow();
  EXPECT_GT(sampler.CounterRate("ts.hits", 60000.0), 0.0);
  // A zero-width window excludes everything but the newest sample.
  EXPECT_EQ(sampler.CounterRate("ts.hits", 0.0), 0.0);
  EXPECT_EQ(sampler.CounterRate("ts.unknown", 60000.0), 0.0);
}

TEST(TimeSeriesTest, FlatCounterRatesToZero) {
  MetricsRegistry registry;
  RingSampler sampler(&registry);
  registry.GetCounter("ts.idle").Add(7);
  sampler.SampleNow();
  NudgeClock();
  sampler.SampleNow();
  EXPECT_EQ(sampler.CounterRate("ts.idle", 60000.0), 0.0);
}

TEST(TimeSeriesTest, GaugeValueIsTheNewestSample) {
  MetricsRegistry registry;
  RingSampler sampler(&registry);
  EXPECT_FALSE(sampler.GaugeValue("ts.level").has_value());
  Gauge& gauge = registry.GetGauge("ts.level");
  gauge.Set(1.5);
  sampler.SampleNow();
  NudgeClock();
  gauge.Set(4.25);
  sampler.SampleNow();
  ASSERT_TRUE(sampler.GaugeValue("ts.level").has_value());
  EXPECT_EQ(*sampler.GaugeValue("ts.level"), 4.25);
}

TEST(TimeSeriesTest, HistogramWindowIsTheBucketwiseDelta) {
  MetricsRegistry registry;
  RingSampler sampler(&registry);
  Histogram& hist = registry.GetHistogram("ts.wait_ms", {1.0, 10.0});
  hist.Observe(0.5);
  hist.Observe(5.0);
  sampler.SampleNow();
  EXPECT_FALSE(
      sampler.HistogramWindow("ts.wait_ms", 60000.0).has_value());
  NudgeClock();
  hist.Observe(0.5);
  hist.Observe(100.0);
  sampler.SampleNow();
  const auto window = sampler.HistogramWindow("ts.wait_ms", 60000.0);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->count, 2u);  // Only the observations between samples.
  ASSERT_EQ(window->counts.size(), 3u);
  EXPECT_EQ(window->counts[0], 1u);
  EXPECT_EQ(window->counts[1], 0u);
  EXPECT_EQ(window->counts[2], 1u);
  EXPECT_DOUBLE_EQ(window->sum, 100.5);
  EXPECT_FALSE(sampler.HistogramWindow("ts.unknown", 60000.0).has_value());
}

TEST(TimeSeriesTest, CapacityBoundsTheRing) {
  MetricsRegistry registry;
  RingSampler::Options options;
  options.capacity = 2;
  RingSampler sampler(&registry, options);
  Gauge& gauge = registry.GetGauge("ts.wrap");
  for (int i = 1; i <= 5; ++i) {
    gauge.Set(static_cast<double>(i));
    sampler.SampleNow();
    NudgeClock();
  }
  // The newest survives any number of wraps.
  ASSERT_TRUE(sampler.GaugeValue("ts.wrap").has_value());
  EXPECT_EQ(*sampler.GaugeValue("ts.wrap"), 5.0);
}

TEST(TimeSeriesTest, TickerThreadSamplesOnItsOwn) {
  MetricsRegistry registry;
  registry.GetCounter("ts.alive").Add(1);
  RingSampler::Options options;
  options.interval_ms = 5.0;
  RingSampler sampler(&registry, options);
  sampler.Start();
  sampler.Start();  // Idempotent.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.samples() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(sampler.samples(), 0u);
  sampler.Stop();
  sampler.Stop();  // Idempotent.
  const uint64_t after_stop = sampler.samples();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(sampler.samples(), after_stop);  // Ticker really joined.
}

}  // namespace
}  // namespace obs
}  // namespace sfpm
