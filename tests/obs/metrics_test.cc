#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace sfpm {
namespace obs {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndAdds) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.counter");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(MetricsTest, GetCounterReturnsStableReference) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("same");
  Counter& b = registry.GetCounter("same");
  EXPECT_EQ(&a, &b);
  a.Add(7);
  EXPECT_EQ(b.Value(), 7u);
}

// The sharding contract: N threads x M increments aggregate to exactly
// N*M — integer sums lose nothing regardless of interleaving or which
// shard each thread lands on.
TEST(MetricsTest, ShardedCounterAggregatesExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("sharded");
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrements = 10000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (size_t i = 0; i < kIncrements; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kIncrements);
}

// Readers racing writers must stay data-race free (exercised under TSan by
// the check.sh sanitizer stage) and never observe a value above the final
// total.
TEST(MetricsTest, ConcurrentReadsDuringWrites) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("raced");
  constexpr size_t kThreads = 4;
  constexpr size_t kIncrements = 20000;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (size_t i = 0; i < kIncrements; ++i) counter.Add();
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t value = counter.Value();
    EXPECT_LE(value, kThreads * kIncrements);
    EXPECT_GE(value, last);  // Monotonic: increments are never lost.
    last = value;
  }
  for (std::thread& thread : writers) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kIncrements);
}

TEST(MetricsTest, GaugeRoundTripsDoublesExactly) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("gauge");
  EXPECT_EQ(gauge.Value(), 0.0);
  const double values[] = {1.0, -0.0, 3.141592653589793, 1e-300, 17.25};
  for (const double v : values) {
    gauge.Set(v);
    EXPECT_EQ(gauge.Value(), v);
  }
  gauge.Set(123.456);
  EXPECT_EQ(gauge.Value(), 123.456);  // Bit-exact, not approximately.
}

TEST(MetricsTest, HistogramBucketsAndSum) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("hist", {1.0, 10.0, 100.0});
  hist.Observe(0.5);    // <= 1
  hist.Observe(1.0);    // <= 1 (upper bounds are inclusive)
  hist.Observe(5.0);    // <= 10
  hist.Observe(99.0);   // <= 100
  hist.Observe(1000.0); // overflow bucket
  const HistogramData data = hist.Data();
  ASSERT_EQ(data.bounds.size(), 3u);
  ASSERT_EQ(data.counts.size(), 4u);
  EXPECT_EQ(data.counts[0], 2u);
  EXPECT_EQ(data.counts[1], 1u);
  EXPECT_EQ(data.counts[2], 1u);
  EXPECT_EQ(data.counts[3], 1u);
  EXPECT_EQ(data.count, 5u);
  EXPECT_DOUBLE_EQ(data.sum, 0.5 + 1.0 + 5.0 + 99.0 + 1000.0);
}

TEST(MetricsTest, HistogramShardedCountsAggregateExactly) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("sharded_hist", {10.0});
  constexpr size_t kThreads = 6;
  constexpr size_t kObservations = 5000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (size_t i = 0; i < kObservations; ++i) hist.Observe(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramData data = hist.Data();
  EXPECT_EQ(data.count, kThreads * kObservations);
  EXPECT_EQ(data.counts[0], kThreads * kObservations);
  EXPECT_EQ(data.sum, static_cast<double>(kThreads * kObservations));
}

TEST(MetricsTest, SnapshotCapturesEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(3);
  registry.GetGauge("g").Set(2.5);
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("c"), 1u);
  EXPECT_EQ(snapshot.counters.at("c"), 3u);
  ASSERT_EQ(snapshot.gauges.count("g"), 1u);
  EXPECT_EQ(snapshot.gauges.at("g"), 2.5);
  ASSERT_EQ(snapshot.histograms.count("h"), 1u);
  EXPECT_EQ(snapshot.histograms.at("h").count, 1u);
}

TEST(MetricsTest, DeltaSinceSubtractsCountersKeepsGauges) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(10);
  registry.GetGauge("g").Set(1.0);
  registry.GetHistogram("h", {5.0}).Observe(1.0);
  const MetricsSnapshot before = registry.Snapshot();

  registry.GetCounter("c").Add(7);
  registry.GetCounter("fresh").Add(2);  // Born after the first snapshot.
  registry.GetGauge("g").Set(9.0);
  registry.GetHistogram("h", {5.0}).Observe(2.0);
  const MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("c"), 7u);
  EXPECT_EQ(delta.counters.at("fresh"), 2u);
  EXPECT_EQ(delta.gauges.at("g"), 9.0);  // Gauges keep the current value.
  EXPECT_EQ(delta.histograms.at("h").count, 1u);
  EXPECT_EQ(delta.histograms.at("h").sum, 2.0);
}

// One name may live in all three kind namespaces at once — the registry
// keys instruments by (kind, name), so a Counter re-registered as a Gauge
// is a new, independent instrument rather than a collision.
TEST(MetricsTest, KindNamespacesAreIndependent) {
  MetricsRegistry registry;
  registry.GetCounter("dual.name").Add(5);
  registry.GetGauge("dual.name").Set(2.5);
  registry.GetHistogram("dual.name", {1.0}).Observe(0.5);
  EXPECT_EQ(registry.GetCounter("dual.name").Value(), 5u);
  EXPECT_EQ(registry.GetGauge("dual.name").Value(), 2.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("dual.name"), 5u);
  EXPECT_EQ(snapshot.gauges.at("dual.name"), 2.5);
  EXPECT_EQ(snapshot.histograms.at("dual.name").count, 1u);
}

TEST(MetricsTest, DropZerosPrunesIdleCountersAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("live").Add(3);
  registry.GetCounter("idle");  // Registered, never incremented.
  registry.GetGauge("zero_gauge").Set(0.0);
  registry.GetHistogram("warm", {1.0}).Observe(0.5);
  registry.GetHistogram("cold", {1.0});
  MetricsSnapshot snapshot = registry.Snapshot();
  snapshot.DropZeros();
  EXPECT_EQ(snapshot.counters.count("live"), 1u);
  EXPECT_EQ(snapshot.counters.count("idle"), 0u);
  // A zero gauge is a real reading, not an idle instrument.
  EXPECT_EQ(snapshot.gauges.count("zero_gauge"), 1u);
  EXPECT_EQ(snapshot.histograms.count("warm"), 1u);
  EXPECT_EQ(snapshot.histograms.count("cold"), 0u);
}

// The DeltaSince wart DropZeros exists for: instruments untouched during
// the measured phase show up as zero-valued counters in the delta and
// used to clutter every report.
TEST(MetricsTest, DeltaSinceThenDropZerosKeepsOnlyTouchedInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("before_only").Add(10);
  registry.GetHistogram("stale", {1.0}).Observe(0.5);
  const MetricsSnapshot before = registry.Snapshot();
  registry.GetCounter("during").Add(1);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  EXPECT_EQ(delta.counters.count("before_only"), 1u);  // Present, zero.
  delta.DropZeros();
  EXPECT_EQ(delta.counters.count("before_only"), 0u);
  EXPECT_EQ(delta.counters.at("during"), 1u);
  EXPECT_EQ(delta.histograms.count("stale"), 0u);
}

struct QuantileCase {
  const char* name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  double q;
  double expected;
};

// Bucket-bound estimator: answers are always one of the configured upper
// bounds (or 0 for an empty histogram); the overflow bucket clamps to the
// last finite bound.
TEST(MetricsTest, QuantileTableDriven) {
  const QuantileCase cases[] = {
      {"empty", {1.0, 10.0}, {0, 0, 0}, 0.5, 0.0},
      {"no_bounds", {}, {}, 0.5, 0.0},
      {"single_bucket", {5.0}, {3, 0}, 0.99, 5.0},
      {"median_in_first", {1.0, 10.0, 100.0}, {8, 1, 0, 1}, 0.5, 1.0},
      {"p90_in_second", {1.0, 10.0, 100.0}, {8, 1, 0, 1}, 0.9, 10.0},
      {"overflow_clamps", {1.0, 10.0, 100.0}, {8, 1, 0, 1}, 0.999, 100.0},
      {"all_mass_overflow", {1.0, 10.0}, {0, 0, 7}, 0.5, 10.0},
      {"q_zero_clamps_to_first_observation", {1.0, 10.0}, {1, 1, 0}, 0.0, 1.0},
      {"q_one_is_max_bucket", {1.0, 10.0}, {1, 1, 0}, 1.0, 10.0},
      {"q_above_one_clamps", {1.0, 10.0}, {1, 1, 0}, 2.0, 10.0},
      {"q_negative_clamps", {1.0, 10.0}, {1, 1, 0}, -1.0, 1.0},
  };
  for (const QuantileCase& c : cases) {
    HistogramData data;
    data.bounds = c.bounds;
    data.counts = c.counts;
    for (const uint64_t n : c.counts) data.count += n;
    EXPECT_EQ(data.Quantile(c.q), c.expected) << c.name;
  }
}

TEST(MetricsTest, DenseThreadIdStablePerThread) {
  const size_t here = DenseThreadId();
  EXPECT_EQ(DenseThreadId(), here);
  size_t other = here;
  std::thread([&other] { other = DenseThreadId(); }).join();
  EXPECT_NE(other, here);
}

TEST(MetricsTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace obs
}  // namespace sfpm
