#include "obs/report.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/json.h"

namespace sfpm {
namespace obs {
namespace {

/// Builds a registry + tracer with a representative run recorded.
struct FakeRun {
  MetricsRegistry registry;
  Tracer tracer{&registry};
  MetricsSnapshot delta;
  std::vector<TraceSpan> spans;

  FakeRun() {
    tracer.set_enabled(true);
    const MetricsSnapshot before = registry.Snapshot();
    {
      Tracer::Span outer = tracer.StartSpan("extract");
      outer.SetAttr("threads", 2.0);
      registry.GetCounter("relate.calls").Add(431);
      registry.GetGauge("extract.total_millis").Set(2.125);
      registry.GetHistogram("extract.row.envelope_candidates", {1.0, 10.0})
          .Observe(4.0);
      Tracer::Span inner = tracer.StartSpan("extract/join");
    }
    delta = registry.Snapshot().DeltaSince(before);
    spans = tracer.spans();
  }
};

TEST(ReportTest, RunReportJsonHasSchemaFields) {
  FakeRun run;
  RunReport report;
  report.tool = "extract";
  report.command = "sfpm extract --out t.csv";
  report.config = {{"out", "t.csv"}, {"threads", "2"}};

  const std::string text = RunReportToJson(report, run.delta, run.spans);
  const auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());

  const json::Value* version = root.Find("sfpm_report_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number, static_cast<double>(kRunReportVersion));
  EXPECT_EQ(root.Find("tool")->string, "extract");
  EXPECT_EQ(root.Find("command")->string, "sfpm extract --out t.csv");

  const json::Value* config = root.Find("config");
  ASSERT_NE(config, nullptr);
  ASSERT_TRUE(config->is_object());
  EXPECT_EQ(config->Find("out")->string, "t.csv");
  EXPECT_EQ(config->Find("threads")->string, "2");

  const json::Value* spans = root.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  ASSERT_EQ(spans->array.size(), 2u);
  const json::Value& outer = spans->array[0];
  EXPECT_EQ(outer.Find("name")->string, "extract");
  EXPECT_EQ(outer.Find("parent")->type, json::Value::Type::kNull);
  EXPECT_EQ(outer.Find("depth")->number, 0.0);
  EXPECT_NE(outer.Find("start_ms"), nullptr);
  EXPECT_NE(outer.Find("dur_ms"), nullptr);
  EXPECT_EQ(outer.Find("attrs")->Find("threads")->number, 2.0);
  EXPECT_EQ(outer.Find("counters")->Find("relate.calls")->number, 431.0);
  const json::Value& inner = spans->array[1];
  EXPECT_EQ(inner.Find("name")->string, "extract/join");
  EXPECT_EQ(inner.Find("parent")->number, 0.0);

  const json::Value* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("counters")->Find("relate.calls")->number, 431.0);
  EXPECT_EQ(metrics->Find("gauges")->Find("extract.total_millis")->number,
            2.125);
  const json::Value* hist =
      metrics->Find("histograms")->Find("extract.row.envelope_candidates");
  ASSERT_NE(hist, nullptr);
  ASSERT_TRUE(hist->Find("bounds")->is_array());
  ASSERT_EQ(hist->Find("bounds")->array.size(), 2u);
  ASSERT_EQ(hist->Find("counts")->array.size(), 3u);
  EXPECT_EQ(hist->Find("counts")->array[1].number, 1.0);  // 4.0 <= 10.
  EXPECT_EQ(hist->Find("count")->number, 1.0);
  EXPECT_EQ(hist->Find("sum")->number, 4.0);
}

TEST(ReportTest, ChromeTraceJsonSchemaRoot) {
  FakeRun run;
  const std::string text = ChromeTraceJson(run.spans);
  const auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& root = parsed.value();
  EXPECT_EQ(root.Find("displayTimeUnit")->string, "ms");
  ASSERT_TRUE(root.Find("traceEvents")->is_array());
  EXPECT_EQ(root.Find("traceEvents")->array.size(), 2u);
}

TEST(ReportTest, EmptyRunStillValid) {
  MetricsRegistry registry;
  RunReport report;
  report.tool = "mine";
  const std::string text =
      RunReportToJson(report, registry.Snapshot(), {});
  const auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().Find("spans")->array.empty());
  EXPECT_TRUE(parsed.value().Find("metrics")->Find("counters")->object.empty());
}

TEST(ReportTest, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/obs_report_test.json";
  ASSERT_TRUE(WriteTextFile(path, "{\"ok\": true}").ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buffer[64] = {};
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, read), "{\"ok\": true}");
}

TEST(ReportTest, WriteTextFileFailsOnBadPath) {
  EXPECT_FALSE(WriteTextFile("/nonexistent_dir_xyz/file.json", "{}").ok());
}

}  // namespace
}  // namespace obs
}  // namespace sfpm
