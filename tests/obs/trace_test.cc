#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"

namespace sfpm {
namespace obs {
namespace {

const TraceSpan* FindSpan(const std::vector<TraceSpan>& spans,
                          const std::string& name) {
  for (const TraceSpan& span : spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  {
    Tracer::Span span = tracer.StartSpan("phase");
    span.SetAttr("x", 1.0);
  }
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TraceTest, RecordsNestedSpansWithParents) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    {
      Tracer::Span inner = tracer.StartSpan("inner");
      Tracer::Span innermost = tracer.StartSpan("inner/leaf");
    }
    Tracer::Span sibling = tracer.StartSpan("sibling");
  }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);

  const TraceSpan* outer = FindSpan(spans, "outer");
  const TraceSpan* inner = FindSpan(spans, "inner");
  const TraceSpan* leaf = FindSpan(spans, "inner/leaf");
  const TraceSpan* sibling = FindSpan(spans, "sibling");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(sibling, nullptr);

  EXPECT_EQ(outer->parent, TraceSpan::kNoParent);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(spans[inner->parent].name, "outer");
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(spans[leaf->parent].name, "inner");
  EXPECT_EQ(leaf->depth, 2u);
  // The sibling opened after inner closed, so it nests under outer.
  EXPECT_EQ(spans[sibling->parent].name, "outer");
  EXPECT_EQ(sibling->depth, 1u);

  for (const TraceSpan& span : spans) {
    EXPECT_GE(span.dur_ms, 0.0);
    EXPECT_GE(span.start_ms, 0.0);
  }
}

TEST(TraceTest, SpanAttrsAreRecorded) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Span span = tracer.StartSpan("with_attrs");
    span.SetAttr("threads", 4.0);
    span.SetAttr("rows", 110.0);
  }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 2u);
  EXPECT_EQ(spans[0].attrs[0].first, "threads");
  EXPECT_EQ(spans[0].attrs[0].second, 4.0);
  EXPECT_EQ(spans[0].attrs[1].first, "rows");
  EXPECT_EQ(spans[0].attrs[1].second, 110.0);
}

TEST(TraceTest, SpanRecordsCounterDeltas) {
  MetricsRegistry registry;
  registry.GetCounter("work.before").Add(100);
  Tracer tracer(&registry);
  tracer.set_enabled(true);
  {
    Tracer::Span span = tracer.StartSpan("work");
    registry.GetCounter("work.items").Add(42);
    registry.GetCounter("work.before").Add(5);
  }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  // Only counters that moved during the span appear, as deltas.
  ASSERT_EQ(spans[0].counters.size(), 2u);
  EXPECT_EQ(spans[0].counters[0].first, "work.before");
  EXPECT_EQ(spans[0].counters[0].second, 5u);
  EXPECT_EQ(spans[0].counters[1].first, "work.items");
  EXPECT_EQ(spans[0].counters[1].second, 42u);
}

TEST(TraceTest, EndIsIdempotentAndMoveSafe) {
  Tracer tracer;
  tracer.set_enabled(true);
  Tracer::Span span = tracer.StartSpan("once");
  span.End();
  span.End();  // No double record.
  Tracer::Span moved = std::move(span);
  moved.End();
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(TraceTest, SpansFromDifferentThreadsNestIndependently) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Span main_span = tracer.StartSpan("main_phase");
    std::thread([&tracer] {
      Tracer::Span worker_span = tracer.StartSpan("worker_phase");
    }).join();
  }
  const std::vector<TraceSpan> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  const TraceSpan* worker = FindSpan(spans, "worker_phase");
  ASSERT_NE(worker, nullptr);
  // Nesting is per thread: the worker's span is a root, not a child of the
  // main thread's open span.
  EXPECT_EQ(worker->parent, TraceSpan::kNoParent);
  EXPECT_EQ(worker->depth, 0u);
}

TEST(TraceTest, ClearDropsSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  { Tracer::Span span = tracer.StartSpan("gone"); }
  ASSERT_EQ(tracer.spans().size(), 1u);
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TraceTest, ToTreeStringIndentsByDepth) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    Tracer::Span inner = tracer.StartSpan("inner");
  }
  const std::string tree = tracer.ToTreeString();
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("  inner"), std::string::npos);
}

TEST(TraceTest, ChromeTraceJsonParsesAndHasEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    Tracer::Span outer = tracer.StartSpan("outer");
    outer.SetAttr("scale", 2.0);
    Tracer::Span inner = tracer.StartSpan("inner");
  }
  const std::string trace = ChromeTraceJson(tracer.spans());
  const auto parsed = json::Parse(trace);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const json::Value* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array.size(), 2u);
  for (const json::Value& event : events->array) {
    ASSERT_TRUE(event.is_object());
    const json::Value* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("dur"), nullptr);
    EXPECT_NE(event.Find("pid"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
  }
  const json::Value* args = events->array[0].Find("args");
  ASSERT_NE(args, nullptr);
  const json::Value* scale = args->Find("scale");
  ASSERT_NE(scale, nullptr);
  EXPECT_EQ(scale->number, 2.0);
}

}  // namespace
}  // namespace obs
}  // namespace sfpm
