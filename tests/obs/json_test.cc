#include "obs/json.h"

#include <gtest/gtest.h>

#include <string>

namespace sfpm {
namespace obs {
namespace json {
namespace {

TEST(JsonWriterTest, ObjectWithMixedValues) {
  Writer w;
  w.BeginObject()
      .Key("s").String("hi")
      .Key("n").Number(uint64_t{42})
      .Key("d").Number(1.5)
      .Key("b").Bool(true)
      .Key("z").Null()
      .EndObject();
  EXPECT_EQ(w.str(), "{\"s\":\"hi\",\"n\":42,\"d\":1.5,\"b\":true,\"z\":null}");
}

TEST(JsonWriterTest, NestedContainersManageCommas) {
  Writer w;
  w.BeginObject().Key("a").BeginArray().Number(uint64_t{1}).Number(uint64_t{2})
      .BeginObject().Key("k").String("v").EndObject().EndArray().EndObject();
  EXPECT_EQ(w.str(), "{\"a\":[1,2,{\"k\":\"v\"}]}");
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  Writer w;
  w.String("a\"b\\c\n\t\x01");
  EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonWriterTest, DoublesRoundTrip) {
  Writer w;
  w.BeginArray().Number(0.1).Number(1e300).Number(-2.5).EndArray();
  const auto parsed = Parse(w.str());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().array.size(), 3u);
  EXPECT_EQ(parsed.value().array[0].number, 0.1);
  EXPECT_EQ(parsed.value().array[1].number, 1e300);
  EXPECT_EQ(parsed.value().array[2].number, -2.5);
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_EQ(Parse("null").value().type, Value::Type::kNull);
  EXPECT_TRUE(Parse("true").value().boolean);
  EXPECT_FALSE(Parse("false").value().boolean);
  EXPECT_EQ(Parse("-12.5e1").value().number, -125.0);
  EXPECT_EQ(Parse("\"text\"").value().string, "text");
}

TEST(JsonParseTest, ParsesNestedStructures) {
  const auto parsed = Parse(R"({"a": [1, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(parsed.ok());
  const Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const Value* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 2u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].Find("b")->string, "c");
  EXPECT_EQ(root.Find("d")->Find("e")->type, Value::Type::kNull);
}

TEST(JsonParseTest, PreservesMemberOrder) {
  const auto parsed = Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(parsed.ok());
  const Value& root = parsed.value();
  ASSERT_EQ(root.object.size(), 3u);
  EXPECT_EQ(root.object[0].first, "z");
  EXPECT_EQ(root.object[1].first, "a");
  EXPECT_EQ(root.object[2].first, "m");
}

TEST(JsonParseTest, DecodesEscapesAndUnicode) {
  const auto simple = Parse(R"("a\"\\\/\n\t")");
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple.value().string, "a\"\\/\n\t");

  // \uXXXX escapes decode to UTF-8: A (1 byte), e-acute (2), euro (3).
  const auto unicode = Parse(R"("\u0041\u00e9\u20ac")");
  ASSERT_TRUE(unicode.ok());
  EXPECT_EQ(unicode.value().string, "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("[1] trailing").ok());
  EXPECT_FALSE(Parse("nul").ok());
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  Writer w;
  w.BeginObject()
      .Key("name").String("extract")
      .Key("metrics").BeginObject()
          .Key("relate.calls").Number(uint64_t{431})
          .Key("millis").Number(2.125)
      .EndObject()
      .Key("spans").BeginArray().EndArray()
      .EndObject();
  const auto parsed = Parse(w.str());
  ASSERT_TRUE(parsed.ok());
  const Value& root = parsed.value();
  EXPECT_EQ(root.Find("name")->string, "extract");
  EXPECT_EQ(root.Find("metrics")->Find("relate.calls")->number, 431.0);
  EXPECT_EQ(root.Find("metrics")->Find("millis")->number, 2.125);
  EXPECT_TRUE(root.Find("spans")->is_array());
}

}  // namespace
}  // namespace json
}  // namespace obs
}  // namespace sfpm
