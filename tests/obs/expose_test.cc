#include "obs/expose.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace sfpm {
namespace obs {
namespace {

TEST(ExposeTest, PrometheusNamePrefixesAndSanitizes) {
  EXPECT_EQ(PrometheusName("serve.queries"), "sfpm_serve_queries");
  EXPECT_EQ(PrometheusName("serve.latency_ms.patterns"),
            "sfpm_serve_latency_ms_patterns");
  // Anything outside [a-zA-Z0-9_] flattens to '_'.
  EXPECT_EQ(PrometheusName("weird-name with/chars"),
            "sfpm_weird_name_with_chars");
  EXPECT_EQ(PrometheusName(""), "sfpm_");
}

TEST(ExposeTest, CounterSample) {
  MetricsSnapshot snapshot;
  snapshot.counters["serve.queries"] = 42;
  EXPECT_EQ(PrometheusText(snapshot),
            "# HELP sfpm_serve_queries sfpm instrument serve.queries\n"
            "# TYPE sfpm_serve_queries counter\n"
            "sfpm_serve_queries 42\n");
}

TEST(ExposeTest, GaugeSampleRoundTripsTheDouble) {
  MetricsSnapshot snapshot;
  snapshot.gauges["serve.inflight"] = 2.5;
  EXPECT_EQ(PrometheusText(snapshot),
            "# HELP sfpm_serve_inflight sfpm instrument serve.inflight\n"
            "# TYPE sfpm_serve_inflight gauge\n"
            "sfpm_serve_inflight 2.5\n");
}

TEST(ExposeTest, HistogramBucketsAreCumulativeWithInfAndSumCount) {
  MetricsSnapshot snapshot;
  HistogramData& h = snapshot.histograms["serve.latency_ms.status"];
  h.bounds = {1.0, 10.0, 100.0};
  h.counts = {8, 1, 0, 1};  // Per-bucket; exposition must cumulate.
  h.count = 10;
  h.sum = 150.5;
  const std::string prom = "sfpm_serve_latency_ms_status";
  EXPECT_EQ(
      PrometheusText(snapshot),
      "# HELP " + prom + " sfpm instrument serve.latency_ms.status\n" +
          "# TYPE " + prom + " histogram\n" +
          prom + "_bucket{le=\"1\"} 8\n" +
          prom + "_bucket{le=\"10\"} 9\n" +
          prom + "_bucket{le=\"100\"} 9\n" +
          prom + "_bucket{le=\"+Inf\"} 10\n" +
          prom + "_sum 150.5\n" +
          prom + "_count 10\n");
}

TEST(ExposeTest, RendersEveryKindFromALiveRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("test.hits").Add(3);
  registry.GetGauge("test.level").Set(0.25);
  registry.GetHistogram("test.wait_ms", {5.0}).Observe(2.0);
  const std::string text = PrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE sfpm_test_hits counter\nsfpm_test_hits 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sfpm_test_level gauge\nsfpm_test_level 0.25\n"),
            std::string::npos);
  EXPECT_NE(text.find("sfpm_test_wait_ms_bucket{le=\"5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sfpm_test_wait_ms_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sfpm_test_wait_ms_sum 2\n"), std::string::npos);
  EXPECT_NE(text.find("sfpm_test_wait_ms_count 1\n"), std::string::npos);
}

TEST(ExposeTest, EmptySnapshotIsEmptyText) {
  EXPECT_EQ(PrometheusText(MetricsSnapshot()), "");
}

TEST(ExposeTest, ContentTypeIsTheExpositionVersion) {
  EXPECT_EQ(std::string(kPrometheusContentType),
            "text/plain; version=0.0.4; charset=utf-8");
}

}  // namespace
}  // namespace obs
}  // namespace sfpm
