// The migration contract of the four stats structs: each run publishes its
// counters to the global metrics registry, and the legacy structs are thin
// views reconstructed from a registry delta — byte-identical ToString
// output, bit-exact counters at every thread count.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/apriori.h"
#include "core/fpgrowth.h"
#include "core/transaction_db.h"
#include "feature/extractor.h"
#include "feature/feature.h"
#include "geom/geometry.h"
#include "obs/metrics.h"

namespace sfpm {
namespace {

using core::AprioriOptions;
using core::MiningStats;
using core::TransactionDb;
using feature::ExtractionStats;
using feature::Layer;
using feature::PredicateExtractor;
using geom::LinearRing;
using geom::Point;
using geom::Polygon;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

Polygon Square(double x0, double y0, double size) {
  return Polygon(LinearRing(
      {{x0, y0}, {x0 + size, y0}, {x0 + size, y0 + size}, {x0, y0 + size}}));
}

/// A small scene with fast-path hits and full-engine refinements.
struct Scene {
  Layer districts{"district"};
  Layer slums{"slum"};
  Layer schools{"school"};

  Scene() {
    for (int i = 0; i < 6; ++i) {
      districts.Add(Square(i * 10.0, 0, 10),
                    {{"name", "d" + std::to_string(i)}});
    }
    for (int i = 0; i < 6; ++i) {
      slums.Add(Square(i * 10.0 + 2, 2, 2));   // Strictly inside district i.
      slums.Add(Square(i * 10.0 + 8, 4, 4));   // Straddles i and i+1.
      slums.Add(Square(i * 10.0 + 2.5, 2.5, 1));  // Nested in the first slum.
    }
    for (int i = 0; i < 6; ++i) {
      schools.Add(Point(i * 10.0 + 5, 5));
    }
  }
};

TransactionDb MiningDb() {
  TransactionDb db;
  const core::ItemId a = db.AddItem("a");
  const core::ItemId b = db.AddItem("b");
  const core::ItemId c = db.AddItem("c");
  const core::ItemId d = db.AddItem("d");
  const core::ItemId e = db.AddItem("e");
  for (int t = 0; t < 40; ++t) {
    std::vector<core::ItemId> items{a};
    if (t % 2 == 0) items.push_back(b);
    if (t % 3 == 0) items.push_back(c);
    if (t % 4 == 0) items.push_back(d);
    if (t % 2 == 0 && t % 3 == 0) items.push_back(e);
    db.AddTransaction(items);
  }
  return db;
}

ExtractionStats RunExtraction(size_t threads, MetricsSnapshot* delta) {
  Scene scene;
  PredicateExtractor extractor(&scene.districts);
  extractor.AddRelevantLayer(&scene.slums);
  extractor.AddRelevantLayer(&scene.schools);
  feature::ExtractorOptions options;
  options.parallelism = threads;
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  ExtractionStats stats;
  const auto table = extractor.Extract(options, &stats);
  EXPECT_TRUE(table.ok());
  *delta = MetricsRegistry::Global().Snapshot().DeltaSince(before);
  return stats;
}

TEST(LegacyStatsViewTest, ExtractionStatsRoundTripsByteStable) {
  MetricsSnapshot delta;
  const ExtractionStats in_run = RunExtraction(1, &delta);
  const ExtractionStats view = ExtractionStats::FromMetrics(delta);
  EXPECT_EQ(view.ToString(), in_run.ToString());
  EXPECT_EQ(view.rows, in_run.rows);
  EXPECT_EQ(view.threads, in_run.threads);
  EXPECT_EQ(view.envelope_candidates, in_run.envelope_candidates);
  EXPECT_EQ(view.total_millis, in_run.total_millis);  // Bit-exact double.
  EXPECT_EQ(view.relate.calls, in_run.relate.calls);
  EXPECT_EQ(view.relate.fast_disjoint, in_run.relate.fast_disjoint);
  EXPECT_EQ(view.relate.miss_boundary, in_run.relate.miss_boundary);

  // The inference tier's counters travel through the registry too; the
  // scene's nested slums guarantee they are exercised, not just zero.
  EXPECT_EQ(view.relate.inferred, in_run.relate.inferred);
  EXPECT_EQ(view.relate.inferred_skipped, in_run.relate.inferred_skipped);
  EXPECT_EQ(view.relate.converse_hits, in_run.relate.converse_hits);
  EXPECT_EQ(view.infer_pivot_pairs, in_run.infer_pivot_pairs);
  EXPECT_EQ(view.infer_pivot_calls, in_run.infer_pivot_calls);
  EXPECT_GT(in_run.infer_pivot_pairs, 0u);
  EXPECT_GT(in_run.relate.inferred + in_run.relate.inferred_skipped, 0u);
}

// The registry aggregates per-thread shards by exact integer sums, so the
// same work reports the same counters at every thread count — including
// the histogram, which the extractor observes during its serial merge.
TEST(LegacyStatsViewTest, ExtractionCountersBitExactAcrossThreadCounts) {
  MetricsSnapshot serial_delta;
  MetricsSnapshot parallel_delta;
  const ExtractionStats serial = RunExtraction(1, &serial_delta);
  const ExtractionStats parallel = RunExtraction(4, &parallel_delta);
  ASSERT_EQ(serial.threads, 1u);
  ASSERT_EQ(parallel.threads, 4u);

  EXPECT_EQ(serial_delta.counters, parallel_delta.counters);
  const auto& serial_hist =
      serial_delta.histograms.at("extract.row.envelope_candidates");
  const auto& parallel_hist =
      parallel_delta.histograms.at("extract.row.envelope_candidates");
  EXPECT_EQ(serial_hist.counts, parallel_hist.counts);
  EXPECT_EQ(serial_hist.count, parallel_hist.count);
  EXPECT_EQ(serial_hist.sum, parallel_hist.sum);  // Bit-exact: serial merge.
}

TEST(LegacyStatsViewTest, MiningStatsRoundTripsByteStable) {
  const TransactionDb db = MiningDb();
  AprioriOptions options;
  options.min_support = 0.25;
  options.parallelism = 1;
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const auto mined = core::MineApriori(db, options);
  ASSERT_TRUE(mined.ok());
  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DeltaSince(before);

  const MiningStats& in_run = mined.value().stats();
  const MiningStats view = MiningStats::FromMetrics(delta);
  EXPECT_EQ(view.ToString(), in_run.ToString());
  ASSERT_EQ(view.passes.size(), in_run.passes.size());
  for (size_t i = 0; i < view.passes.size(); ++i) {
    EXPECT_EQ(view.passes[i].k, in_run.passes[i].k);
    EXPECT_EQ(view.passes[i].candidates, in_run.passes[i].candidates);
    EXPECT_EQ(view.passes[i].filtered_candidates,
              in_run.passes[i].filtered_candidates);
    EXPECT_EQ(view.passes[i].frequent, in_run.passes[i].frequent);
    EXPECT_EQ(view.passes[i].millis, in_run.passes[i].millis);
    EXPECT_EQ(view.passes[i].count_millis, in_run.passes[i].count_millis);
    EXPECT_EQ(view.passes[i].and_word_ops, in_run.passes[i].and_word_ops);
    EXPECT_EQ(view.passes[i].prefix_hits, in_run.passes[i].prefix_hits);
    EXPECT_EQ(view.passes[i].prefix_misses, in_run.passes[i].prefix_misses);
  }
  EXPECT_EQ(view.total_frequent, in_run.total_frequent);
  EXPECT_EQ(view.total_frequent_ge2, in_run.total_frequent_ge2);
  EXPECT_EQ(view.total_millis, in_run.total_millis);
  EXPECT_EQ(view.threads, in_run.threads);
  EXPECT_EQ(view.and_word_ops, in_run.and_word_ops);
  EXPECT_EQ(view.prefix_hits, in_run.prefix_hits);
  EXPECT_EQ(view.prefix_misses, in_run.prefix_misses);
}

TEST(LegacyStatsViewTest, FpGrowthPublishesTotals) {
  const TransactionDb db = MiningDb();
  AprioriOptions options;
  options.min_support = 0.25;
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const auto mined = core::MineFpGrowth(db, options);
  ASSERT_TRUE(mined.ok());
  const MetricsSnapshot delta =
      MetricsRegistry::Global().Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counters.at("mine.total_frequent"),
            mined.value().stats().total_frequent);
  EXPECT_GT(delta.counters.at("fpgrowth.trees"), 0u);
  EXPECT_GT(delta.counters.at("fpgrowth.nodes"), 0u);
  const MiningStats view = MiningStats::FromMetrics(delta);
  EXPECT_EQ(view.ToString(), mined.value().stats().ToString());
}

TEST(LegacyStatsViewTest, RtreeQueryCountersMove) {
  MetricsSnapshot delta;
  RunExtraction(1, &delta);
  EXPECT_GT(delta.counters.at("rtree.queries"), 0u);
  EXPECT_GT(delta.counters.at("rtree.query.node_visits"), 0u);
  EXPECT_GT(delta.counters.at("rtree.query.leaf_hits"), 0u);
}

}  // namespace
}  // namespace sfpm
