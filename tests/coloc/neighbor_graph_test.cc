#include "coloc/neighbor_graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "feature/feature.h"
#include "geom/point.h"
#include "qsr/distance.h"
#include "util/random.h"

namespace sfpm {
namespace coloc {
namespace {

using feature::Layer;
using geom::Point;

NeighborGraphOptions Opts(double distance) {
  NeighborGraphOptions options;
  options.distance = distance;
  return options;
}

TEST(NeighborGraphTest, RejectsBadInput) {
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  b.Add(Point(0, 0));
  EXPECT_FALSE(NeighborGraph::Build({&a}, Opts(1.0)).ok());
  EXPECT_FALSE(NeighborGraph::Build({&a, &b}, Opts(0.0)).ok());
  EXPECT_FALSE(NeighborGraph::Build({&a, &b}, Opts(-1.0)).ok());
  Layer a2("a");
  a2.Add(Point(1, 1));
  EXPECT_FALSE(NeighborGraph::Build({&a, &a2}, Opts(1.0)).ok());
  // An empty layer is legal: it contributes a type with zero nodes.
  Layer empty("c");
  const auto graph = NeighborGraph::Build({&a, &empty}, Opts(1.0));
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().TypeSize(1), 0u);
  EXPECT_EQ(graph.value().num_edges(), 0u);
}

TEST(NeighborGraphTest, NodeIdsGroupedByType) {
  Layer a("a"), b("b"), c("c");
  a.Add(Point(0, 0));
  a.Add(Point(1, 0));
  b.Add(Point(0, 1));
  c.Add(Point(1, 1));
  c.Add(Point(2, 1));
  c.Add(Point(3, 1));
  const auto graph = NeighborGraph::Build({&a, &b, &c}, Opts(0.5));
  ASSERT_TRUE(graph.ok());
  const NeighborGraph& g = graph.value();
  EXPECT_EQ(g.num_types(), 3u);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.TypeBegin(0), 0u);
  EXPECT_EQ(g.TypeBegin(1), 2u);
  EXPECT_EQ(g.TypeBegin(2), 3u);
  EXPECT_EQ(g.TypeSize(0), 2u);
  EXPECT_EQ(g.TypeSize(1), 1u);
  EXPECT_EQ(g.TypeSize(2), 3u);
  EXPECT_EQ(g.TypeOf(0), 0u);
  EXPECT_EQ(g.TypeOf(2), 1u);
  EXPECT_EQ(g.TypeOf(5), 2u);
  EXPECT_EQ(g.InstanceOf(5), 2u);
}

TEST(NeighborGraphTest, HandComputedAdjacency) {
  // a0-(0,0), a1-(0,10); b0-(1,0). R=1.5: only a0~b0.
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  a.Add(Point(0, 10));
  b.Add(Point(1, 0));
  const auto graph = NeighborGraph::Build({&a, &b}, Opts(1.5));
  ASSERT_TRUE(graph.ok());
  const NeighborGraph& g = graph.value();
  EXPECT_EQ(g.num_edges(), 2u);  // One undirected pair, two slots.
  EXPECT_TRUE(g.AreNeighbors(0, 2));
  EXPECT_TRUE(g.AreNeighbors(2, 0));
  EXPECT_FALSE(g.AreNeighbors(1, 2));
  EXPECT_FALSE(g.AreNeighbors(2, 1));
  const auto [first, last] = g.Neighbors(2, 0);
  ASSERT_EQ(last - first, 1);
  EXPECT_EQ(*first, 0u);
}

TEST(NeighborGraphTest, NoSameTypeEdges) {
  // Two a-instances on top of each other never become neighbours.
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  a.Add(Point(0, 0));
  b.Add(Point(5, 5));
  const auto graph = NeighborGraph::Build({&a, &b}, Opts(1.0));
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().num_edges(), 0u);
  EXPECT_FALSE(graph.value().AreNeighbors(0, 1));
}

TEST(NeighborGraphTest, BandsFollowQuantizer) {
  const auto quantizer =
      qsr::DistanceQuantizer::Create({{"near", 2.0}, {"mid", 5.0}}, "far");
  ASSERT_TRUE(quantizer.ok());
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  b.Add(Point(1, 0));   // Distance 1 -> band 0.
  b.Add(Point(4, 0));   // Distance 4 -> band 1.
  b.Add(Point(6, 0));   // Distance 6 -> band 2 (within R = 10).
  NeighborGraphOptions options = Opts(10.0);
  options.quantizer = &quantizer.value();
  const auto graph = NeighborGraph::Build({&a, &b}, options);
  ASSERT_TRUE(graph.ok());
  const NeighborGraph& g = graph.value();
  ASSERT_EQ(g.band_names().size(), 3u);
  EXPECT_EQ(g.BandOf(0, 1), 0);
  EXPECT_EQ(g.BandOf(0, 2), 1);
  EXPECT_EQ(g.BandOf(0, 3), 2);
  EXPECT_EQ(g.BandOf(1, 0), 0);
  EXPECT_EQ(g.BandOf(3, 0), 2);
}

TEST(NeighborGraphTest, BitIdenticalAtEveryThreadCount) {
  Rng rng(42);
  Layer a("a"), b("b"), c("c");
  for (int i = 0; i < 200; ++i) {
    a.Add(Point(rng.NextDouble(0, 50), rng.NextDouble(0, 50)));
    b.Add(Point(rng.NextDouble(0, 50), rng.NextDouble(0, 50)));
    if (i % 2 == 0) c.Add(Point(rng.NextDouble(0, 50), rng.NextDouble(0, 50)));
  }
  NeighborGraphOptions serial = Opts(2.5);
  serial.threads = 1;
  const auto reference = NeighborGraph::Build({&a, &b, &c}, serial);
  ASSERT_TRUE(reference.ok());
  for (const size_t threads : {2u, 3u, 8u}) {
    NeighborGraphOptions parallel = Opts(2.5);
    parallel.threads = threads;
    const auto graph = NeighborGraph::Build({&a, &b, &c}, parallel);
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph.value().offsets(), reference.value().offsets())
        << threads << " threads";
    EXPECT_EQ(graph.value().neighbors(), reference.value().neighbors())
        << threads << " threads";
    EXPECT_EQ(graph.value().bands(), reference.value().bands())
        << threads << " threads";
  }
}

TEST(NeighborGraphTest, SymmetricAndSorted) {
  Rng rng(7);
  Layer a("a"), b("b");
  for (int i = 0; i < 80; ++i) {
    a.Add(Point(rng.NextDouble(0, 20), rng.NextDouble(0, 20)));
    b.Add(Point(rng.NextDouble(0, 20), rng.NextDouble(0, 20)));
  }
  const auto graph = NeighborGraph::Build({&a, &b}, Opts(1.5));
  ASSERT_TRUE(graph.ok());
  const NeighborGraph& g = graph.value();
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    for (uint64_t e = g.offsets()[u]; e < g.offsets()[u + 1]; ++e) {
      const uint32_t w = g.neighbors()[e];
      EXPECT_NE(g.TypeOf(u), g.TypeOf(w));
      EXPECT_TRUE(g.AreNeighbors(w, u));
      if (e > g.offsets()[u]) EXPECT_LT(g.neighbors()[e - 1], w);
    }
  }
}

}  // namespace
}  // namespace coloc
}  // namespace sfpm
