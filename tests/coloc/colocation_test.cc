#include "coloc/colocation.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sfpm {
namespace coloc {
namespace {

using feature::Layer;
using geom::Point;

/// Finds a pattern by member types (sorted).
const ColocationPattern* Find(const std::vector<ColocationPattern>& patterns,
                              std::vector<std::string> types) {
  std::sort(types.begin(), types.end());
  for (const ColocationPattern& p : patterns) {
    if (p.types == types) return &p;
  }
  return nullptr;
}

TEST(ColocationTest, InvalidArguments) {
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  b.Add(Point(0, 0));
  ColocationOptions options;
  EXPECT_FALSE(MineColocations({&a}, options).ok());
  options.neighbor_distance = 0.0;
  EXPECT_FALSE(MineColocations({&a, &b}, options).ok());
  options.neighbor_distance = 1.0;
  options.min_prevalence = 1.5;
  EXPECT_FALSE(MineColocations({&a, &b}, options).ok());
  options.min_prevalence = 0.5;
  Layer a2("a");
  a2.Add(Point(1, 1));
  EXPECT_FALSE(MineColocations({&a, &a2}, options).ok());
}

TEST(ColocationTest, HandComputedParticipationIndex) {
  // Type A: 4 points; type B: 2 points. Neighbour pairs (R = 1.5):
  //   A0-(0,0) ~ B0-(1,0); A1-(0,10) ~ B1-(1,10); A2, A3 isolated.
  // pr(A) = 2/4 = 0.5, pr(B) = 2/2 = 1.0 -> PI = 0.5, 2 row instances.
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  a.Add(Point(0, 10));
  a.Add(Point(50, 50));
  a.Add(Point(60, 60));
  b.Add(Point(1, 0));
  b.Add(Point(1, 10));

  ColocationOptions options;
  options.neighbor_distance = 1.5;
  options.min_prevalence = 0.4;
  const auto patterns = MineColocations({&a, &b}, options);
  ASSERT_TRUE(patterns.ok());
  const ColocationPattern* ab = Find(patterns.value(), {"a", "b"});
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->participation_index, 0.5);
  EXPECT_EQ(ab->num_row_instances, 2u);

  // Raising the threshold above 0.5 prunes it.
  options.min_prevalence = 0.6;
  const auto strict = MineColocations({&a, &b}, options);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(Find(strict.value(), {"a", "b"}), nullptr);
}

TEST(ColocationTest, TripleRequiresClique) {
  // A triangle of three types within R of each other forms {a, b, c};
  // a fourth configuration where a-b and b-c are close but a-c is not
  // must NOT produce a row instance.
  Layer a("a"), b("b"), c("c");
  // Clique site.
  a.Add(Point(0, 0));
  b.Add(Point(1, 0));
  c.Add(Point(0.5, 0.8));
  // Chain site (a-b close, b-c close, a-c far).
  a.Add(Point(100, 0));
  b.Add(Point(101, 0));
  c.Add(Point(102, 0));

  ColocationOptions options;
  options.neighbor_distance = 1.3;
  options.min_prevalence = 0.2;
  const auto patterns = MineColocations({&a, &b, &c}, options);
  ASSERT_TRUE(patterns.ok());

  const ColocationPattern* abc = Find(patterns.value(), {"a", "b", "c"});
  ASSERT_NE(abc, nullptr);
  EXPECT_EQ(abc->num_row_instances, 1u);  // Only the clique site.
  EXPECT_DOUBLE_EQ(abc->participation_index, 0.5);  // 1 of 2 per type.
}

TEST(ColocationTest, AntiMonotonePrevalence) {
  Rng rng(77);
  Layer a("a"), b("b"), c("c");
  for (int i = 0; i < 40; ++i) {
    const Point site(rng.NextDouble(0, 100), rng.NextDouble(0, 100));
    a.Add(Point(site.x + rng.NextDouble(-1, 1),
                site.y + rng.NextDouble(-1, 1)));
    if (rng.NextBool(0.7)) {
      b.Add(Point(site.x + rng.NextDouble(-1, 1),
                  site.y + rng.NextDouble(-1, 1)));
    }
    if (rng.NextBool(0.5)) {
      c.Add(Point(site.x + rng.NextDouble(-1, 1),
                  site.y + rng.NextDouble(-1, 1)));
    }
  }
  ColocationOptions options;
  options.neighbor_distance = 3.0;
  options.min_prevalence = 0.0;
  const auto patterns = MineColocations({&a, &b, &c}, options);
  ASSERT_TRUE(patterns.ok());

  const ColocationPattern* abc = Find(patterns.value(), {"a", "b", "c"});
  if (abc != nullptr) {
    for (const auto& pair : {std::vector<std::string>{"a", "b"},
                             std::vector<std::string>{"a", "c"},
                             std::vector<std::string>{"b", "c"}}) {
      const ColocationPattern* sub = Find(patterns.value(), pair);
      ASSERT_NE(sub, nullptr);
      EXPECT_GE(sub->participation_index, abc->participation_index);
    }
  }
}

TEST(ColocationTest, WorksOnPolygonsToo) {
  // Unlike the original point-based formulation, the oracle uses geometry
  // distance, so areal features participate naturally.
  Layer districts("district"), slums("slum");
  districts.Add(geom::Polygon(
      geom::LinearRing({{0, 0}, {10, 0}, {10, 10}, {0, 10}})));
  slums.Add(geom::Polygon(
      geom::LinearRing({{11, 0}, {13, 0}, {13, 2}, {11, 2}})));  // 1 away.
  ColocationOptions options;
  options.neighbor_distance = 2.0;
  options.min_prevalence = 0.9;
  const auto patterns = MineColocations({&districts, &slums}, options);
  ASSERT_TRUE(patterns.ok());
  EXPECT_NE(Find(patterns.value(), {"district", "slum"}), nullptr);
}

TEST(ColocationTest, MaxPatternSizeCap) {
  Layer a("a"), b("b"), c("c");
  a.Add(Point(0, 0));
  b.Add(Point(0.1, 0));
  c.Add(Point(0, 0.1));
  ColocationOptions options;
  options.neighbor_distance = 1.0;
  options.min_prevalence = 0.5;
  options.max_pattern_size = 2;
  const auto patterns = MineColocations({&a, &b, &c}, options);
  ASSERT_TRUE(patterns.ok());
  for (const ColocationPattern& p : patterns.value()) {
    EXPECT_LE(p.types.size(), 2u);
  }
}

TEST(ColocationTest, NoSelfPairsByConstruction) {
  // The qualitative analogue of KC+'s point: co-location never relates a
  // type to itself, so {slum, slum} cannot appear.
  Layer a("a"), b("b");
  for (int i = 0; i < 5; ++i) {
    a.Add(Point(i * 0.1, 0));
    b.Add(Point(i * 0.1, 0.05));
  }
  ColocationOptions options;
  options.neighbor_distance = 1.0;
  options.min_prevalence = 0.1;
  const auto patterns = MineColocations({&a, &b}, options);
  ASSERT_TRUE(patterns.ok());
  for (const ColocationPattern& p : patterns.value()) {
    std::set<std::string> unique(p.types.begin(), p.types.end());
    EXPECT_EQ(unique.size(), p.types.size());
  }
}

}  // namespace
}  // namespace coloc
}  // namespace sfpm
