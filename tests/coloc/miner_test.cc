#include "coloc/miner.h"

#include <gtest/gtest.h>

#include <vector>

#include "coloc/neighbor_graph.h"
#include "core/candidate_filter.h"
#include "feature/feature.h"
#include "geom/point.h"
#include "qsr/distance.h"
#include "util/random.h"

namespace sfpm {
namespace coloc {
namespace {

using feature::Layer;
using geom::Point;

Result<NeighborGraph> Grid(const feature::LayerSet& layers, double distance,
                           const qsr::DistanceQuantizer* quantizer = nullptr) {
  NeighborGraphOptions options;
  options.distance = distance;
  options.quantizer = quantizer;
  return NeighborGraph::Build(layers, options);
}

const MinedColocation* Find(const std::vector<MinedColocation>& mined,
                            std::vector<uint32_t> types) {
  for (const MinedColocation& m : mined) {
    if (m.types == types) return &m;
  }
  return nullptr;
}

TEST(ColocMinerTest, RejectsBadThreshold) {
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  b.Add(Point(0.5, 0));
  const auto graph = Grid({&a, &b}, 1.0);
  ASSERT_TRUE(graph.ok());
  ColocMinerOptions options;
  options.min_prevalence = -0.1;
  EXPECT_FALSE(MineGraph(graph.value(), options).ok());
  options.min_prevalence = 1.1;
  EXPECT_FALSE(MineGraph(graph.value(), options).ok());
}

TEST(ColocMinerTest, HandComputedPair) {
  // a: 4 instances, 2 with a b-neighbour; b: 2 instances, both matched.
  // PI = min(2/4, 2/2) = 0.5, 2 rows.
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  a.Add(Point(0, 10));
  a.Add(Point(50, 50));
  a.Add(Point(60, 60));
  b.Add(Point(1, 0));
  b.Add(Point(1, 10));
  const auto graph = Grid({&a, &b}, 1.5);
  ASSERT_TRUE(graph.ok());
  ColocMinerOptions options;
  options.min_prevalence = 0.4;
  const auto mined = MineGraph(graph.value(), options);
  ASSERT_TRUE(mined.ok());
  const MinedColocation* ab = Find(mined.value(), {0, 1});
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->participation_index, 0.5);
  EXPECT_EQ(ab->rows, 2u);
  // Without a quantizer the graded prevalence collapses to the crisp PI.
  EXPECT_DOUBLE_EQ(ab->fuzzy_prevalence, 0.5);
}

TEST(ColocMinerTest, StarAndCliqueModesAgree) {
  Rng rng(99);
  Layer a("a"), b("b"), c("c");
  for (int i = 0; i < 60; ++i) {
    a.Add(Point(rng.NextDouble(0, 30), rng.NextDouble(0, 30)));
    b.Add(Point(rng.NextDouble(0, 30), rng.NextDouble(0, 30)));
    c.Add(Point(rng.NextDouble(0, 30), rng.NextDouble(0, 30)));
  }
  const auto graph = Grid({&a, &b, &c}, 3.0);
  ASSERT_TRUE(graph.ok());
  ColocMinerOptions clique;
  clique.min_prevalence = 0.0;
  ColocMinerOptions star = clique;
  star.star_join = true;
  const auto lhs = MineGraph(graph.value(), clique);
  const auto rhs = MineGraph(graph.value(), star);
  ASSERT_TRUE(lhs.ok());
  ASSERT_TRUE(rhs.ok());
  ASSERT_EQ(lhs.value().size(), rhs.value().size());
  for (size_t i = 0; i < lhs.value().size(); ++i) {
    EXPECT_EQ(lhs.value()[i].types, rhs.value()[i].types);
    EXPECT_DOUBLE_EQ(lhs.value()[i].participation_index,
                     rhs.value()[i].participation_index);
    EXPECT_DOUBLE_EQ(lhs.value()[i].fuzzy_prevalence,
                     rhs.value()[i].fuzzy_prevalence);
    EXPECT_EQ(lhs.value()[i].rows, rhs.value()[i].rows);
  }
}

TEST(ColocMinerTest, FuzzyPrevalenceGradesByBand) {
  // One a with two b-neighbours: b0 in band 0 (full weight), b1 in band 1
  // (weight 2/3 with 3 bands). Position a: best row is the band-0 one ->
  // grade 1. Position b: b0 grades 1, b1 grades 2/3 -> fuzzy ratio
  // (1 + 2/3) / 2 = 5/6. Fuzzy PI = min(1, 5/6) = 5/6; crisp PI = 1.
  const auto quantizer =
      qsr::DistanceQuantizer::Create({{"near", 2.0}, {"mid", 5.0}}, "far");
  ASSERT_TRUE(quantizer.ok());
  Layer a("a"), b("b");
  a.Add(Point(0, 0));
  b.Add(Point(1, 0));
  b.Add(Point(4, 0));
  const auto graph = Grid({&a, &b}, 10.0, &quantizer.value());
  ASSERT_TRUE(graph.ok());
  ColocMinerOptions options;
  options.min_prevalence = 0.5;
  const auto mined = MineGraph(graph.value(), options);
  ASSERT_TRUE(mined.ok());
  const MinedColocation* ab = Find(mined.value(), {0, 1});
  ASSERT_NE(ab, nullptr);
  EXPECT_DOUBLE_EQ(ab->participation_index, 1.0);
  EXPECT_DOUBLE_EQ(ab->fuzzy_prevalence, 5.0 / 6.0);
}

TEST(ColocMinerTest, FuzzyNeverExceedsCrisp) {
  const auto quantizer =
      qsr::DistanceQuantizer::Create({{"near", 1.0}, {"mid", 2.0}}, "far");
  ASSERT_TRUE(quantizer.ok());
  Rng rng(3);
  Layer a("a"), b("b"), c("c");
  for (int i = 0; i < 50; ++i) {
    a.Add(Point(rng.NextDouble(0, 20), rng.NextDouble(0, 20)));
    b.Add(Point(rng.NextDouble(0, 20), rng.NextDouble(0, 20)));
    c.Add(Point(rng.NextDouble(0, 20), rng.NextDouble(0, 20)));
  }
  const auto graph = Grid({&a, &b, &c}, 3.0, &quantizer.value());
  ASSERT_TRUE(graph.ok());
  ColocMinerOptions options;
  options.min_prevalence = 0.0;
  const auto mined = MineGraph(graph.value(), options);
  ASSERT_TRUE(mined.ok());
  for (const MinedColocation& m : mined.value()) {
    EXPECT_GE(m.fuzzy_prevalence, 0.0);
    EXPECT_LE(m.fuzzy_prevalence, m.participation_index);
  }
}

TEST(ColocMinerTest, MaxSizeCapsGrowth) {
  Layer a("a"), b("b"), c("c");
  a.Add(Point(0, 0));
  b.Add(Point(0.1, 0));
  c.Add(Point(0, 0.1));
  const auto graph = Grid({&a, &b, &c}, 1.0);
  ASSERT_TRUE(graph.ok());
  ColocMinerOptions options;
  options.min_prevalence = 0.5;
  options.max_size = 2;
  const auto mined = MineGraph(graph.value(), options);
  ASSERT_TRUE(mined.ok());
  for (const MinedColocation& m : mined.value()) {
    EXPECT_LE(m.types.size(), 2u);
  }
  EXPECT_EQ(Find(mined.value(), {0, 1, 2}), nullptr);
}

TEST(ColocMinerTest, PairFilterPrunesSupersets) {
  // Blocking (a, b) at size 2 must also remove {a, b, c}.
  Layer a("a"), b("b"), c("c");
  a.Add(Point(0, 0));
  b.Add(Point(0.1, 0));
  c.Add(Point(0, 0.1));
  const auto graph = Grid({&a, &b, &c}, 1.0);
  ASSERT_TRUE(graph.ok());
  const core::PairBlocklistFilter blocklist({{0, 1}});
  ColocMinerOptions options;
  options.min_prevalence = 0.1;
  options.filters = {&blocklist};
  const auto mined = MineGraph(graph.value(), options);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(Find(mined.value(), {0, 1}), nullptr);
  EXPECT_EQ(Find(mined.value(), {0, 1, 2}), nullptr);
  EXPECT_NE(Find(mined.value(), {0, 2}), nullptr);
  EXPECT_NE(Find(mined.value(), {1, 2}), nullptr);
}

TEST(ColocMinerTest, ResultsSortedBySizeThenTypes) {
  Rng rng(12);
  Layer a("a"), b("b"), c("c");
  for (int i = 0; i < 40; ++i) {
    a.Add(Point(rng.NextDouble(0, 10), rng.NextDouble(0, 10)));
    b.Add(Point(rng.NextDouble(0, 10), rng.NextDouble(0, 10)));
    c.Add(Point(rng.NextDouble(0, 10), rng.NextDouble(0, 10)));
  }
  const auto graph = Grid({&a, &b, &c}, 2.0);
  ASSERT_TRUE(graph.ok());
  ColocMinerOptions options;
  options.min_prevalence = 0.0;
  const auto mined = MineGraph(graph.value(), options);
  ASSERT_TRUE(mined.ok());
  for (size_t i = 1; i < mined.value().size(); ++i) {
    const MinedColocation& prev = mined.value()[i - 1];
    const MinedColocation& cur = mined.value()[i];
    if (prev.types.size() != cur.types.size()) {
      EXPECT_LT(prev.types.size(), cur.types.size());
    } else {
      EXPECT_LT(prev.types, cur.types);
    }
  }
}

}  // namespace
}  // namespace coloc
}  // namespace sfpm
