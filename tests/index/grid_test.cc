#include "index/grid.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace sfpm {
namespace index {
namespace {

using geom::Envelope;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(GridIndexTest, EmptyQueries) {
  GridIndex grid(10.0);
  std::vector<uint64_t> out;
  grid.Query(Envelope(0, 0, 100, 100), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(grid.Size(), 0u);
}

TEST(GridIndexTest, EntrySpanningManyCells) {
  GridIndex grid(1.0);
  grid.Insert(Envelope(0, 0, 10, 10), 7);  // Covers ~121 cells.
  EXPECT_GE(grid.NumCells(), 100u);

  std::vector<uint64_t> out;
  grid.Query(Envelope(5, 5, 6, 6), &out);
  ASSERT_EQ(out.size(), 1u);  // Deduplicated despite many cells.
  EXPECT_EQ(out[0], 7u);
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex grid(10.0);
  grid.Insert(Envelope(-25, -25, -15, -15), 1);
  grid.Insert(Envelope(15, 15, 25, 25), 2);
  std::vector<uint64_t> out;
  grid.Query(Envelope(-20, -20, -18, -18), &out);
  EXPECT_EQ(out, (std::vector<uint64_t>{1}));
}

TEST(GridIndexTest, MatchesBruteForce) {
  Rng rng(7);
  GridIndex grid(25.0);
  std::vector<std::pair<Envelope, uint64_t>> entries;
  for (uint64_t i = 0; i < 500; ++i) {
    const double x = rng.NextDouble(-500, 500);
    const double y = rng.NextDouble(-500, 500);
    const Envelope env(x, y, x + rng.NextDouble(0, 40),
                       y + rng.NextDouble(0, 40));
    entries.emplace_back(env, i);
    grid.Insert(env, i);
  }

  for (int q = 0; q < 100; ++q) {
    const double x = rng.NextDouble(-500, 500);
    const double y = rng.NextDouble(-500, 500);
    const Envelope query(x, y, x + rng.NextDouble(0, 120),
                         y + rng.NextDouble(0, 120));
    std::vector<uint64_t> got;
    grid.Query(query, &got);
    std::vector<uint64_t> expected;
    for (const auto& [env, id] : entries) {
      if (env.Intersects(query)) expected.push_back(id);
    }
    EXPECT_EQ(Sorted(got), Sorted(expected)) << "query " << q;
  }
}

TEST(GridIndexTest, QueryWithinDistanceMatchesBruteForce) {
  Rng rng(11);
  GridIndex grid(20.0);
  std::vector<std::pair<Envelope, uint64_t>> entries;
  for (uint64_t i = 0; i < 300; ++i) {
    const double x = rng.NextDouble(0, 800);
    const double y = rng.NextDouble(0, 800);
    const Envelope env(x, y, x + 5, y + 5);
    entries.emplace_back(env, i);
    grid.Insert(env, i);
  }

  const Envelope probe(400, 400, 410, 410);
  for (double dist : {0.0, 15.0, 60.0, 300.0}) {
    std::vector<uint64_t> got;
    grid.QueryWithinDistance(probe, dist, &got);
    std::vector<uint64_t> expected;
    for (const auto& [env, id] : entries) {
      if (env.Distance(probe) <= dist) expected.push_back(id);
    }
    EXPECT_EQ(Sorted(got), Sorted(expected)) << "dist " << dist;
  }
}

class GridCellSizeTest : public ::testing::TestWithParam<double> {};

TEST_P(GridCellSizeTest, CorrectAcrossCellSizes) {
  Rng rng(13);
  GridIndex grid(GetParam());
  std::vector<std::pair<Envelope, uint64_t>> entries;
  for (uint64_t i = 0; i < 200; ++i) {
    const double x = rng.NextDouble(0, 300);
    const double y = rng.NextDouble(0, 300);
    const Envelope env(x, y, x + rng.NextDouble(0, 10),
                       y + rng.NextDouble(0, 10));
    entries.emplace_back(env, i);
    grid.Insert(env, i);
  }
  const Envelope query(50, 50, 200, 200);
  std::vector<uint64_t> got;
  grid.Query(query, &got);
  std::vector<uint64_t> expected;
  for (const auto& [env, id] : entries) {
    if (env.Intersects(query)) expected.push_back(id);
  }
  EXPECT_EQ(Sorted(got), Sorted(expected));
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridCellSizeTest,
                         ::testing::Values(0.5, 5.0, 50.0, 500.0));

}  // namespace
}  // namespace index
}  // namespace sfpm
