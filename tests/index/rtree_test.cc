#include "index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/random.h"

namespace sfpm {
namespace index {
namespace {

using geom::Envelope;
using geom::Point;

std::vector<uint64_t> Sorted(std::vector<uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Reference implementation the tree is checked against.
std::vector<uint64_t> BruteForceQuery(
    const std::vector<std::pair<Envelope, uint64_t>>& entries,
    const Envelope& query) {
  std::vector<uint64_t> out;
  for (const auto& [env, id] : entries) {
    if (env.Intersects(query)) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<Envelope, uint64_t>> RandomEntries(size_t n,
                                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Envelope, uint64_t>> entries;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0, 1000);
    const double y = rng.NextDouble(0, 1000);
    const double w = rng.NextDouble(0, 20);
    const double h = rng.NextDouble(0, 20);
    entries.emplace_back(Envelope(x, y, x + w, y + h), i);
  }
  return entries;
}

TEST(RTreeTest, EmptyTreeQueries) {
  RTree tree;
  std::vector<uint64_t> out;
  tree.Query(Envelope(0, 0, 10, 10), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.Size(), 0u);
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_TRUE(tree.Nearest(Point(0, 0), 3).empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(Envelope(1, 1, 2, 2), 42);
  std::vector<uint64_t> out;
  tree.Query(Envelope(0, 0, 3, 3), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  out.clear();
  tree.Query(Envelope(5, 5, 6, 6), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, InsertMatchesBruteForce) {
  const auto entries = RandomEntries(500, 31);
  RTree tree(8);
  for (const auto& [env, id] : entries) tree.Insert(env, id);
  EXPECT_EQ(tree.Size(), 500u);

  Rng rng(32);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.NextDouble(0, 1000);
    const double y = rng.NextDouble(0, 1000);
    const Envelope query(x, y, x + rng.NextDouble(0, 100),
                         y + rng.NextDouble(0, 100));
    std::vector<uint64_t> got;
    tree.Query(query, &got);
    EXPECT_EQ(Sorted(got), Sorted(BruteForceQuery(entries, query)))
        << "query " << q;
  }
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  const auto entries = RandomEntries(1000, 41);
  RTree tree(16);
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.Size(), 1000u);

  Rng rng(42);
  for (int q = 0; q < 100; ++q) {
    const double x = rng.NextDouble(0, 1000);
    const double y = rng.NextDouble(0, 1000);
    const Envelope query(x, y, x + rng.NextDouble(0, 150),
                         y + rng.NextDouble(0, 150));
    std::vector<uint64_t> got;
    tree.Query(query, &got);
    EXPECT_EQ(Sorted(got), Sorted(BruteForceQuery(entries, query)));
  }
}

TEST(RTreeTest, MixedBulkLoadAndInsert) {
  auto entries = RandomEntries(300, 51);
  RTree tree(8);
  tree.BulkLoad(
      std::vector<std::pair<Envelope, uint64_t>>(entries.begin(),
                                                 entries.begin() + 200));
  for (size_t i = 200; i < entries.size(); ++i) {
    tree.Insert(entries[i].first, entries[i].second);
  }
  EXPECT_EQ(tree.Size(), 300u);

  const Envelope query(100, 100, 400, 400);
  std::vector<uint64_t> got;
  tree.Query(query, &got);
  EXPECT_EQ(Sorted(got), Sorted(BruteForceQuery(entries, query)));
}

TEST(RTreeTest, QueryWithinDistance) {
  const auto entries = RandomEntries(400, 61);
  RTree tree;
  tree.BulkLoad(entries);

  const Envelope probe(500, 500, 510, 510);
  for (double dist : {0.0, 10.0, 50.0, 200.0}) {
    std::vector<uint64_t> got;
    tree.QueryWithinDistance(probe, dist, &got);
    std::vector<uint64_t> expected;
    for (const auto& [env, id] : entries) {
      if (env.Distance(probe) <= dist) expected.push_back(id);
    }
    EXPECT_EQ(Sorted(got), Sorted(expected)) << "dist " << dist;
  }
}

TEST(RTreeTest, NearestReturnsClosestInOrder) {
  RTree tree;
  tree.Insert(Envelope(Point(0, 0)), 0);
  tree.Insert(Envelope(Point(10, 0)), 1);
  tree.Insert(Envelope(Point(3, 0)), 2);
  tree.Insert(Envelope(Point(7, 0)), 3);

  const auto nearest = tree.Nearest(Point(0, 0), 3);
  EXPECT_EQ(nearest, (std::vector<uint64_t>{0, 2, 3}));
}

TEST(RTreeTest, NearestMatchesBruteForce) {
  const auto entries = RandomEntries(300, 71);
  RTree tree;
  tree.BulkLoad(entries);

  Rng rng(72);
  for (int q = 0; q < 30; ++q) {
    const Point probe(rng.NextDouble(0, 1000), rng.NextDouble(0, 1000));
    const auto got = tree.Nearest(probe, 5);
    ASSERT_EQ(got.size(), 5u);

    std::vector<std::pair<double, uint64_t>> dists;
    for (const auto& [env, id] : entries) {
      dists.emplace_back(env.Distance(Envelope(probe)), id);
    }
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < got.size(); ++i) {
      // Compare distances, not ids, to tolerate ties.
      Envelope got_env;
      for (const auto& [env, id] : entries) {
        if (id == got[i]) got_env = env;
      }
      EXPECT_NEAR(got_env.Distance(Envelope(probe)), dists[i].first, 1e-9);
    }
  }
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree tree(8);
  for (uint64_t i = 0; i < 1000; ++i) {
    tree.Insert(Envelope(Point(static_cast<double>(i % 100),
                               static_cast<double>(i / 100))),
                i);
  }
  EXPECT_GE(tree.Height(), 2u);
  EXPECT_LE(tree.Height(), 6u);
}

TEST(RTreeTest, BoundsCoverEverything) {
  const auto entries = RandomEntries(100, 81);
  RTree tree;
  tree.BulkLoad(entries);
  const Envelope bounds = tree.Bounds();
  for (const auto& [env, id] : entries) {
    EXPECT_TRUE(bounds.Contains(env));
  }
}

TEST(RTreeTest, DuplicateEnvelopesAllReturned) {
  RTree tree(4);
  for (uint64_t i = 0; i < 20; ++i) {
    tree.Insert(Envelope(1, 1, 2, 2), i);
  }
  std::vector<uint64_t> out;
  tree.Query(Envelope(0, 0, 3, 3), &out);
  EXPECT_EQ(out.size(), 20u);
}

class RTreeFanoutTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeFanoutTest, CorrectAcrossFanouts) {
  const auto entries = RandomEntries(600, 91);
  RTree tree(GetParam());
  for (const auto& [env, id] : entries) tree.Insert(env, id);

  const Envelope query(200, 200, 600, 600);
  std::vector<uint64_t> got;
  tree.Query(query, &got);
  EXPECT_EQ(Sorted(got), Sorted(BruteForceQuery(entries, query)));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutTest,
                         ::testing::Values(4, 5, 8, 16, 32, 64));

}  // namespace
}  // namespace index
}  // namespace sfpm
