#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "datagen/city.h"
#include "io/csv.h"
#include "store/format.h"
#include "store/pipeline.h"
#include "store/reader.h"
#include "util/version.h"

namespace sfpm {
namespace store {
namespace {

// Stage files live directly in TempDir with a unique prefix instead of a
// subdirectory so no mkdir is needed; stale outputs from a previous test
// process are removed so skip/resume assertions start clean.
std::string TestDir(const std::string& leaf) {
  const std::string prefix = ::testing::TempDir() + "/" + leaf;
  std::remove((prefix + "-city.sfpm").c_str());
  std::remove((prefix + "-txdb.sfpm").c_str());
  std::remove((prefix + "-patterns.sfpm").c_str());
  return prefix;
}

PipelineOptions SmallPipeline(const std::string& prefix) {
  PipelineOptions opts;
  opts.city_path = prefix + "-city.sfpm";
  opts.txdb_path = prefix + "-txdb.sfpm";
  opts.patterns_path = prefix + "-patterns.sfpm";
  opts.city = datagen::CityConfig{};
  opts.city.grid_cols = 3;  // 3 x 2 districts keep the relate work small.
  opts.city.grid_rows = 2;
  opts.city.num_slums = 8;
  opts.city.num_schools = 12;
  opts.city.num_police = 4;
  opts.city.num_streets = 8;
  opts.city.num_rivers = 1;
  opts.mine.min_support = 0.3;
  return opts;
}

TEST(Fnv1a64Test, KnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ULL);
  EXPECT_EQ(HashHex(Fnv1a64("foobar")), "85944171f73967e8");
}

TEST(CanonicalConfigTest, ThreadCountIsExcluded) {
  ExtractConfig a;
  a.threads = 1;
  ExtractConfig b;
  b.threads = 8;
  EXPECT_EQ(CanonicalExtractConfig(a), CanonicalExtractConfig(b));

  MineConfig ma;
  ma.threads = 1;
  MineConfig mb;
  mb.threads = 16;
  EXPECT_EQ(CanonicalMineConfig(ma), CanonicalMineConfig(mb));
}

TEST(CanonicalConfigTest, DependencyOrderIsNormalized) {
  MineConfig a;
  a.dependencies = {{"x", "y"}, {"b", "a"}};
  MineConfig b;
  b.dependencies = {{"a", "b"}, {"y", "x"}};
  EXPECT_EQ(CanonicalMineConfig(a), CanonicalMineConfig(b));

  MineConfig c;
  c.min_support = 0.25;
  EXPECT_NE(CanonicalMineConfig(a), CanonicalMineConfig(c));
}

TEST(PipelineTest, RunsAllStagesThenSkipsWhenUpToDate) {
  const PipelineOptions opts = SmallPipeline(TestDir("pipeline_skip"));
  auto first = RunPipeline(opts);
  ASSERT_TRUE(first.ok()) << first.status().message();
  ASSERT_EQ(first.value().stages.size(), 3u);
  for (const StageOutcome& stage : first.value().stages) {
    EXPECT_FALSE(stage.skipped) << stage.stage;
    EXPECT_EQ(stage.input_hash.size(), 16u) << stage.stage;
  }

  auto second = RunPipeline(opts);
  ASSERT_TRUE(second.ok()) << second.status().message();
  for (const StageOutcome& stage : second.value().stages) {
    EXPECT_TRUE(stage.skipped) << stage.stage;
  }
}

TEST(PipelineTest, ForceRerunsEverything) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_force"));
  ASSERT_TRUE(RunPipeline(opts).ok());
  opts.force = true;
  auto rerun = RunPipeline(opts);
  ASSERT_TRUE(rerun.ok());
  for (const StageOutcome& stage : rerun.value().stages) {
    EXPECT_FALSE(stage.skipped) << stage.stage;
  }
}

TEST(PipelineTest, ParameterChangeInvalidatesDownstreamStagesOnly) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_invalidate"));
  ASSERT_TRUE(RunPipeline(opts).ok());

  opts.mine.min_support = 0.6;
  auto rerun = RunPipeline(opts);
  ASSERT_TRUE(rerun.ok());
  ASSERT_EQ(rerun.value().stages.size(), 3u);
  EXPECT_TRUE(rerun.value().stages[0].skipped);   // generate-city
  EXPECT_TRUE(rerun.value().stages[1].skipped);   // extract
  EXPECT_FALSE(rerun.value().stages[2].skipped);  // mine

  opts.extract.directions = true;
  auto rerun2 = RunPipeline(opts);
  ASSERT_TRUE(rerun2.ok());
  EXPECT_TRUE(rerun2.value().stages[0].skipped);
  EXPECT_FALSE(rerun2.value().stages[1].skipped);
  EXPECT_FALSE(rerun2.value().stages[2].skipped);
}

TEST(PipelineTest, CorruptedIntermediateIsRebuiltNotTrusted) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_corrupt"));
  ASSERT_TRUE(RunPipeline(opts).ok());

  // Corrupt the extract output in place; the next run must detect it
  // (manifest read fails) and rebuild instead of skipping.
  auto bytes = io::ReadFile(opts.txdb_path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() / 2] ^= 0x42;
  ASSERT_TRUE(io::WriteFile(opts.txdb_path, corrupted).ok());

  auto rerun = RunPipeline(opts);
  ASSERT_TRUE(rerun.ok()) << rerun.status().message();
  EXPECT_TRUE(rerun.value().stages[0].skipped);
  EXPECT_FALSE(rerun.value().stages[1].skipped);
}

TEST(PipelineTest, StagedOutputsCarryManifestProvenance) {
  const PipelineOptions opts = SmallPipeline(TestDir("pipeline_manifest"));
  auto result = RunPipeline(opts);
  ASSERT_TRUE(result.ok());

  auto reader = SnapshotReader::Open(opts.patterns_path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  auto info = reader.value().Find(SectionType::kManifest);
  ASSERT_TRUE(info.ok());
  auto manifest = reader.value().ReadManifest(info.value());
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().at("stage"), "mine");
  EXPECT_EQ(manifest.value().at("tool_version"), kSfpmVersion);
  EXPECT_EQ(manifest.value().at("format"),
            std::to_string(kFormatVersion));
  EXPECT_EQ(manifest.value().at("input_hash"),
            result.value().stages[2].input_hash);
}

TEST(PipelineTest, SingleStageRunnersMatchPipelineOutputs) {
  const std::string prefix1 = TestDir("pipeline_stagewise");
  const PipelineOptions opts = SmallPipeline(prefix1);
  ASSERT_TRUE(RunPipeline(opts).ok());

  const std::string prefix2 = TestDir("pipeline_stagewise2");
  ASSERT_TRUE(
      RunGenerateCityStage(opts.city, prefix2 + "-city.sfpm").ok());
  ASSERT_TRUE(RunExtractStage(prefix2 + "-city.sfpm", prefix2 + "-txdb.sfpm",
                              opts.extract)
                  .ok());
  ASSERT_TRUE(RunMineStage(prefix2 + "-txdb.sfpm", prefix2 + "-patterns.sfpm",
                           opts.mine)
                  .ok());

  for (const char* leaf : {"-city.sfpm", "-txdb.sfpm", "-patterns.sfpm"}) {
    auto a = io::ReadFile(prefix1 + leaf);
    auto b = io::ReadFile(prefix2 + leaf);
    ASSERT_TRUE(a.ok() && b.ok()) << leaf;
    EXPECT_EQ(a.value(), b.value()) << leaf << " differs between pipeline "
                                    << "and stage-wise runs";
  }
}

TEST(PipelineTest, MineRejectsUnknownAlgorithmAndFilter) {
  const std::string prefix = TestDir("pipeline_badmine");
  PipelineOptions opts = SmallPipeline(prefix);
  ASSERT_TRUE(RunPipeline(opts).ok());

  MineConfig bad;
  bad.algorithm = "eclat";
  const Status r = RunMineStage(opts.txdb_path, prefix + "-out.sfpm", bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("eclat"), std::string::npos);

  MineConfig bad_filter;
  bad_filter.filter = "kc++";
  const Status r2 =
      RunMineStage(opts.txdb_path, prefix + "-out.sfpm", bad_filter);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.message().find("kc++"), std::string::npos);
}

TEST(TileSnapshotPathTest, InsertsTileBeforeTheExtension) {
  EXPECT_EQ(TileSnapshotPath("txdb.sfpm", {2, 4}), "txdb.tile2of4.sfpm");
  EXPECT_EQ(TileSnapshotPath("/a/b/out.sfpm", {0, 2}),
            "/a/b/out.tile0of2.sfpm");
  // Dotless names and dots in directories get a plain suffix.
  EXPECT_EQ(TileSnapshotPath("txdb", {1, 2}), "txdb.tile1of2");
  EXPECT_EQ(TileSnapshotPath("/a.b/txdb", {1, 2}), "/a.b/txdb.tile1of2");
}

TEST(ExtractTileInputHashTest, DependsOnTileAndConfigNotThreads) {
  ExtractConfig config;
  const std::string h00 = ExtractTileInputHash(config, 42, {0, 4});
  EXPECT_EQ(h00.size(), 16u);
  EXPECT_NE(h00, ExtractTileInputHash(config, 42, {1, 4}));
  EXPECT_NE(h00, ExtractTileInputHash(config, 42, {0, 2}));
  EXPECT_NE(h00, ExtractTileInputHash(config, 43, {0, 4}));
  ExtractConfig threaded;
  threaded.threads = 8;
  EXPECT_EQ(h00, ExtractTileInputHash(threaded, 42, {0, 4}));
  ExtractConfig directions;
  directions.directions = true;
  EXPECT_NE(h00, ExtractTileInputHash(directions, 42, {0, 4}));
}

/// Removes the tile snapshots a sharded run of `opts` may have left from
/// an earlier test process (TestDir only clears the three stage files).
void RemoveTiles(const PipelineOptions& opts, int shards) {
  for (int slot = 0; slot < shards; ++slot) {
    std::remove(TileSnapshotPath(opts.txdb_path, {slot, shards}).c_str());
  }
}

TEST(ShardedPipelineTest, MergedOutputIsByteIdenticalToSingleShard) {
  const PipelineOptions single = SmallPipeline(TestDir("pipeline_shard1"));
  ASSERT_TRUE(RunPipeline(single).ok());

  for (const int shards : {2, 4}) {
    PipelineOptions sharded =
        SmallPipeline(TestDir("pipeline_shard" + std::to_string(shards)));
    sharded.shards = shards;
    RemoveTiles(sharded, shards);
    auto result = RunPipeline(sharded);
    ASSERT_TRUE(result.ok()) << result.status().message();

    // Stage list: generate-city, one per non-empty tile, merge, mine.
    bool saw_tile = false;
    bool saw_merge = false;
    for (const StageOutcome& stage : result.value().stages) {
      EXPECT_FALSE(stage.skipped) << stage.stage;
      if (stage.stage.rfind("tile", 0) == 0) saw_tile = true;
      if (stage.stage == "merge") saw_merge = true;
    }
    EXPECT_TRUE(saw_tile);
    EXPECT_TRUE(saw_merge);

    auto a_txdb = io::ReadFile(single.txdb_path);
    auto b_txdb = io::ReadFile(sharded.txdb_path);
    ASSERT_TRUE(a_txdb.ok() && b_txdb.ok());
    EXPECT_EQ(a_txdb.value(), b_txdb.value())
        << shards << "-shard txdb differs from single shard";
    auto a_pat = io::ReadFile(single.patterns_path);
    auto b_pat = io::ReadFile(sharded.patterns_path);
    ASSERT_TRUE(a_pat.ok() && b_pat.ok());
    EXPECT_EQ(a_pat.value(), b_pat.value())
        << shards << "-shard patterns differ from single shard";
  }
}

TEST(ShardedPipelineTest, ShardedAndUnshardedRunsResumeEachOther) {
  // The merged snapshot carries the plain extract manifest, so a sharded
  // run over a single-shard output (and vice versa) skips the extract
  // phase entirely.
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_shard_resume"));
  RemoveTiles(opts, 2);
  ASSERT_TRUE(RunPipeline(opts).ok());  // Single shard.

  opts.shards = 2;
  auto sharded = RunPipeline(opts);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  ASSERT_EQ(sharded.value().stages.size(), 3u);  // No tile stages ran.
  for (const StageOutcome& stage : sharded.value().stages) {
    EXPECT_TRUE(stage.skipped) << stage.stage;
  }
}

TEST(ShardedPipelineTest, ResumesSingleDeletedTile) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_tile_resume"));
  opts.shards = 4;
  RemoveTiles(opts, 4);
  auto first = RunPipeline(opts);
  ASSERT_TRUE(first.ok()) << first.status().message();
  auto baseline = io::ReadFile(opts.txdb_path);
  ASSERT_TRUE(baseline.ok());

  // Knock out the merged output and one tile: only that tile and the
  // merge (and mine, downstream) may rerun.
  std::string first_tile;
  for (const StageOutcome& stage : first.value().stages) {
    if (stage.stage.rfind("tile", 0) == 0) {
      first_tile = stage.stage;
      ASSERT_EQ(std::remove(stage.output.c_str()), 0);
      break;
    }
  }
  ASSERT_FALSE(first_tile.empty());
  ASSERT_EQ(std::remove(opts.txdb_path.c_str()), 0);

  auto second = RunPipeline(opts);
  ASSERT_TRUE(second.ok()) << second.status().message();
  for (const StageOutcome& stage : second.value().stages) {
    if (stage.stage == first_tile || stage.stage == "merge") {
      EXPECT_FALSE(stage.skipped) << stage.stage;
    } else {
      // Every other tile skips, and the merge reproduces the original
      // bytes, so even the downstream mine stage stays up to date.
      EXPECT_TRUE(stage.skipped) << stage.stage;
    }
  }
  auto rebuilt = io::ReadFile(opts.txdb_path);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value(), baseline.value());
}

TEST(ShardedPipelineTest, RejectsAStaleTileSnapshot) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_tile_stale"));
  opts.shards = 2;
  RemoveTiles(opts, 2);
  auto first = RunPipeline(opts);
  ASSERT_TRUE(first.ok()) << first.status().message();

  // A tile written under different extract parameters must not be merged
  // silently: its hash mismatch forces a rebuild of that tile.
  std::string tile_path;
  for (const StageOutcome& stage : first.value().stages) {
    if (stage.stage.rfind("tile", 0) == 0) tile_path = stage.output;
  }
  ASSERT_FALSE(tile_path.empty());
  ASSERT_EQ(std::remove(opts.txdb_path.c_str()), 0);
  PipelineOptions changed = opts;
  changed.extract.directions = true;
  auto rerun = RunPipeline(changed);
  ASSERT_TRUE(rerun.ok()) << rerun.status().message();
  for (const StageOutcome& stage : rerun.value().stages) {
    if (stage.stage.rfind("tile", 0) == 0 || stage.stage == "merge" ||
        stage.stage == "mine") {
      EXPECT_FALSE(stage.skipped) << stage.stage;
    }
  }
}

TEST(ShardedPipelineTest, ThreadCountDoesNotChangeShardedBytes) {
  PipelineOptions a = SmallPipeline(TestDir("pipeline_shard_t1"));
  a.shards = 3;
  a.extract.threads = 1;
  RemoveTiles(a, 3);
  ASSERT_TRUE(RunPipeline(a).ok());

  PipelineOptions b = SmallPipeline(TestDir("pipeline_shard_t4"));
  b.shards = 3;
  b.extract.threads = 4;
  RemoveTiles(b, 3);
  ASSERT_TRUE(RunPipeline(b).ok());

  auto bytes_a = io::ReadFile(a.txdb_path);
  auto bytes_b = io::ReadFile(b.txdb_path);
  ASSERT_TRUE(bytes_a.ok() && bytes_b.ok());
  EXPECT_EQ(bytes_a.value(), bytes_b.value());
}

}  // namespace
}  // namespace store
}  // namespace sfpm
