#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "datagen/city.h"
#include "io/csv.h"
#include "store/format.h"
#include "store/pipeline.h"
#include "store/reader.h"
#include "util/version.h"

namespace sfpm {
namespace store {
namespace {

// Stage files live directly in TempDir with a unique prefix instead of a
// subdirectory so no mkdir is needed; stale outputs from a previous test
// process are removed so skip/resume assertions start clean.
std::string TestDir(const std::string& leaf) {
  const std::string prefix = ::testing::TempDir() + "/" + leaf;
  std::remove((prefix + "-city.sfpm").c_str());
  std::remove((prefix + "-txdb.sfpm").c_str());
  std::remove((prefix + "-patterns.sfpm").c_str());
  return prefix;
}

PipelineOptions SmallPipeline(const std::string& prefix) {
  PipelineOptions opts;
  opts.city_path = prefix + "-city.sfpm";
  opts.txdb_path = prefix + "-txdb.sfpm";
  opts.patterns_path = prefix + "-patterns.sfpm";
  opts.city = datagen::CityConfig{};
  opts.city.grid_cols = 3;  // 3 x 2 districts keep the relate work small.
  opts.city.grid_rows = 2;
  opts.city.num_slums = 8;
  opts.city.num_schools = 12;
  opts.city.num_police = 4;
  opts.city.num_streets = 8;
  opts.city.num_rivers = 1;
  opts.mine.min_support = 0.3;
  return opts;
}

TEST(Fnv1a64Test, KnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ULL);
  EXPECT_EQ(HashHex(Fnv1a64("foobar")), "85944171f73967e8");
}

TEST(CanonicalConfigTest, ThreadCountIsExcluded) {
  ExtractConfig a;
  a.threads = 1;
  ExtractConfig b;
  b.threads = 8;
  EXPECT_EQ(CanonicalExtractConfig(a), CanonicalExtractConfig(b));

  MineConfig ma;
  ma.threads = 1;
  MineConfig mb;
  mb.threads = 16;
  EXPECT_EQ(CanonicalMineConfig(ma), CanonicalMineConfig(mb));
}

TEST(CanonicalConfigTest, DependencyOrderIsNormalized) {
  MineConfig a;
  a.dependencies = {{"x", "y"}, {"b", "a"}};
  MineConfig b;
  b.dependencies = {{"a", "b"}, {"y", "x"}};
  EXPECT_EQ(CanonicalMineConfig(a), CanonicalMineConfig(b));

  MineConfig c;
  c.min_support = 0.25;
  EXPECT_NE(CanonicalMineConfig(a), CanonicalMineConfig(c));
}

TEST(PipelineTest, RunsAllStagesThenSkipsWhenUpToDate) {
  const PipelineOptions opts = SmallPipeline(TestDir("pipeline_skip"));
  auto first = RunPipeline(opts);
  ASSERT_TRUE(first.ok()) << first.status().message();
  ASSERT_EQ(first.value().stages.size(), 3u);
  for (const StageOutcome& stage : first.value().stages) {
    EXPECT_FALSE(stage.skipped) << stage.stage;
    EXPECT_EQ(stage.input_hash.size(), 16u) << stage.stage;
  }

  auto second = RunPipeline(opts);
  ASSERT_TRUE(second.ok()) << second.status().message();
  for (const StageOutcome& stage : second.value().stages) {
    EXPECT_TRUE(stage.skipped) << stage.stage;
  }
}

TEST(PipelineTest, ForceRerunsEverything) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_force"));
  ASSERT_TRUE(RunPipeline(opts).ok());
  opts.force = true;
  auto rerun = RunPipeline(opts);
  ASSERT_TRUE(rerun.ok());
  for (const StageOutcome& stage : rerun.value().stages) {
    EXPECT_FALSE(stage.skipped) << stage.stage;
  }
}

TEST(PipelineTest, ParameterChangeInvalidatesDownstreamStagesOnly) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_invalidate"));
  ASSERT_TRUE(RunPipeline(opts).ok());

  opts.mine.min_support = 0.6;
  auto rerun = RunPipeline(opts);
  ASSERT_TRUE(rerun.ok());
  ASSERT_EQ(rerun.value().stages.size(), 3u);
  EXPECT_TRUE(rerun.value().stages[0].skipped);   // generate-city
  EXPECT_TRUE(rerun.value().stages[1].skipped);   // extract
  EXPECT_FALSE(rerun.value().stages[2].skipped);  // mine

  opts.extract.directions = true;
  auto rerun2 = RunPipeline(opts);
  ASSERT_TRUE(rerun2.ok());
  EXPECT_TRUE(rerun2.value().stages[0].skipped);
  EXPECT_FALSE(rerun2.value().stages[1].skipped);
  EXPECT_FALSE(rerun2.value().stages[2].skipped);
}

TEST(PipelineTest, CorruptedIntermediateIsRebuiltNotTrusted) {
  PipelineOptions opts = SmallPipeline(TestDir("pipeline_corrupt"));
  ASSERT_TRUE(RunPipeline(opts).ok());

  // Corrupt the extract output in place; the next run must detect it
  // (manifest read fails) and rebuild instead of skipping.
  auto bytes = io::ReadFile(opts.txdb_path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[corrupted.size() / 2] ^= 0x42;
  ASSERT_TRUE(io::WriteFile(opts.txdb_path, corrupted).ok());

  auto rerun = RunPipeline(opts);
  ASSERT_TRUE(rerun.ok()) << rerun.status().message();
  EXPECT_TRUE(rerun.value().stages[0].skipped);
  EXPECT_FALSE(rerun.value().stages[1].skipped);
}

TEST(PipelineTest, StagedOutputsCarryManifestProvenance) {
  const PipelineOptions opts = SmallPipeline(TestDir("pipeline_manifest"));
  auto result = RunPipeline(opts);
  ASSERT_TRUE(result.ok());

  auto reader = SnapshotReader::Open(opts.patterns_path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  auto info = reader.value().Find(SectionType::kManifest);
  ASSERT_TRUE(info.ok());
  auto manifest = reader.value().ReadManifest(info.value());
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().at("stage"), "mine");
  EXPECT_EQ(manifest.value().at("tool_version"), kSfpmVersion);
  EXPECT_EQ(manifest.value().at("format"),
            std::to_string(kFormatVersion));
  EXPECT_EQ(manifest.value().at("input_hash"),
            result.value().stages[2].input_hash);
}

TEST(PipelineTest, SingleStageRunnersMatchPipelineOutputs) {
  const std::string prefix1 = TestDir("pipeline_stagewise");
  const PipelineOptions opts = SmallPipeline(prefix1);
  ASSERT_TRUE(RunPipeline(opts).ok());

  const std::string prefix2 = TestDir("pipeline_stagewise2");
  ASSERT_TRUE(
      RunGenerateCityStage(opts.city, prefix2 + "-city.sfpm").ok());
  ASSERT_TRUE(RunExtractStage(prefix2 + "-city.sfpm", prefix2 + "-txdb.sfpm",
                              opts.extract)
                  .ok());
  ASSERT_TRUE(RunMineStage(prefix2 + "-txdb.sfpm", prefix2 + "-patterns.sfpm",
                           opts.mine)
                  .ok());

  for (const char* leaf : {"-city.sfpm", "-txdb.sfpm", "-patterns.sfpm"}) {
    auto a = io::ReadFile(prefix1 + leaf);
    auto b = io::ReadFile(prefix2 + leaf);
    ASSERT_TRUE(a.ok() && b.ok()) << leaf;
    EXPECT_EQ(a.value(), b.value()) << leaf << " differs between pipeline "
                                    << "and stage-wise runs";
  }
}

TEST(PipelineTest, MineRejectsUnknownAlgorithmAndFilter) {
  const std::string prefix = TestDir("pipeline_badmine");
  PipelineOptions opts = SmallPipeline(prefix);
  ASSERT_TRUE(RunPipeline(opts).ok());

  MineConfig bad;
  bad.algorithm = "eclat";
  const Status r = RunMineStage(opts.txdb_path, prefix + "-out.sfpm", bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("eclat"), std::string::npos);

  MineConfig bad_filter;
  bad_filter.filter = "kc++";
  const Status r2 =
      RunMineStage(opts.txdb_path, prefix + "-out.sfpm", bad_filter);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.message().find("kc++"), std::string::npos);
}

}  // namespace
}  // namespace store
}  // namespace sfpm
