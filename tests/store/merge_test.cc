#include "store/merge.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "feature/predicate.h"
#include "feature/predicate_table.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace sfpm {
namespace store {
namespace {

using feature::Predicate;
using feature::PredicateTable;

/// A four-row ground-truth table whose items appear across rows in a
/// deliberately interleaved order, so a merge that replays rows out of
/// order — or predicates within a row out of item order — assigns
/// different first-appearance item ids and fails the comparison.
PredicateTable FullTable() {
  PredicateTable t;
  size_t r0 = t.AddRow("district0");
  EXPECT_TRUE(t.SetSpatial(r0, "contains", "slum").ok());
  EXPECT_TRUE(t.SetAttribute(r0, "rate", "high").ok());
  size_t r1 = t.AddRow("district1");
  EXPECT_TRUE(t.SetSpatial(r1, "touches", "slum").ok());
  EXPECT_TRUE(t.SetSpatial(r1, "contains", "slum").ok());
  size_t r2 = t.AddRow("district2");
  EXPECT_TRUE(t.SetSpatial(r2, "contains", "school").ok());
  EXPECT_TRUE(t.SetAttribute(r2, "rate", "low").ok());
  size_t r3 = t.AddRow("district3");
  EXPECT_TRUE(t.SetSpatial(r3, "touches", "slum").ok());
  EXPECT_TRUE(t.SetSpatial(r3, "contains", "school").ok());
  return t;
}

/// The tile holding global rows `rows` of FullTable: its own table built
/// from scratch (fresh item-id space), as a tile extraction would.
TileTable TileOf(const std::vector<uint64_t>& rows) {
  const PredicateTable full = FullTable();
  TileTable tile;
  tile.rows = rows;
  for (const uint64_t g : rows) {
    const size_t local = tile.table.AddRow(full.RowName(g));
    for (const Predicate& p : full.RowPredicates(g)) {
      EXPECT_TRUE(tile.table.Set(local, p).ok());
    }
  }
  return tile;
}

std::string Bytes(const PredicateTable& t) {
  SnapshotWriter w;
  w.AddTable(t);
  return w.Serialize();
}

TEST(MergeTileTablesTest, RemapsItemIdsToSingleShardOrder) {
  // Interleaved ownership: neither tile starts at row 0, and the item
  // first seen globally in row 1 (touches_slum) is first seen by tile B
  // at its own row 0 — the remap has real work to do.
  const std::vector<TileTable> tiles = {TileOf({0, 2}), TileOf({1, 3})};
  auto merged = MergeTileTables(tiles, 4);
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  EXPECT_EQ(Bytes(merged.value()), Bytes(FullTable()));
}

TEST(MergeTileTablesTest, OrderOfTilesDoesNotMatter) {
  const std::vector<TileTable> tiles = {TileOf({1, 3}), TileOf({0, 2})};
  auto merged = MergeTileTables(tiles, 4);
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  EXPECT_EQ(Bytes(merged.value()), Bytes(FullTable()));
}

TEST(MergeTileTablesTest, SingleTileRoundTrips) {
  auto merged = MergeTileTables({TileOf({0, 1, 2, 3})}, 4);
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  EXPECT_EQ(Bytes(merged.value()), Bytes(FullTable()));
}

TEST(MergeTileTablesTest, RejectsMissingRowWithStageAttribution) {
  auto merged = MergeTileTables({TileOf({0, 2}), TileOf({3})}, 4);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("extract-tile"),
            std::string::npos)
      << merged.status().message();
  EXPECT_NE(merged.status().message().find("no tile"), std::string::npos)
      << merged.status().message();
}

TEST(MergeTileTablesTest, RejectsDoubleOwnedRow) {
  auto merged = MergeTileTables({TileOf({0, 1}), TileOf({1, 2, 3})}, 4);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("two tiles"), std::string::npos)
      << merged.status().message();
}

TEST(MergeTileTablesTest, RejectsOutOfRangeRow) {
  auto merged = MergeTileTables({TileOf({0, 1, 2, 3})}, 3);
  ASSERT_FALSE(merged.ok());
  EXPECT_NE(merged.status().message().find("outside"), std::string::npos)
      << merged.status().message();
}

/// Serialized tile snapshot with a configurable manifest, for the
/// reader-side rejection tests.
std::string TileSnapshot(const TileTable& tile,
                         std::map<std::string, std::string> manifest) {
  SnapshotWriter w;
  w.AddTable(tile.table);
  if (manifest.find("tile_rows") == manifest.end()) {
    std::string rows;
    for (const uint64_t g : tile.rows) {
      if (!rows.empty()) rows += ',';
      rows += std::to_string(g);
    }
    manifest["tile_rows"] = rows;
  }
  w.AddManifest(manifest);
  return w.Serialize();
}

std::map<std::string, std::string> GoodManifest() {
  return {{"stage", kStageExtractTile},
          {"format", std::to_string(kFormatVersion)},
          {"input_hash", "abc123"}};
}

TEST(ReadTileTableTest, AcceptsAWellFormedTile) {
  const TileTable tile = TileOf({1, 3});
  auto reader = SnapshotReader::FromBytes(TileSnapshot(tile, GoodManifest()));
  ASSERT_TRUE(reader.ok());
  auto loaded = ReadTileTable(reader.value(), "abc123");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().rows, tile.rows);
  EXPECT_EQ(Bytes(loaded.value().table), Bytes(tile.table));
}

TEST(ReadTileTableTest, RejectsWrongStage) {
  auto manifest = GoodManifest();
  manifest["stage"] = "extract";
  auto reader =
      SnapshotReader::FromBytes(TileSnapshot(TileOf({0, 1}), manifest));
  ASSERT_TRUE(reader.ok());
  auto loaded = ReadTileTable(reader.value(), "abc123");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("extract-tile"),
            std::string::npos);
}

TEST(ReadTileTableTest, RejectsWrongInputHash) {
  auto reader = SnapshotReader::FromBytes(
      TileSnapshot(TileOf({0, 1}), GoodManifest()));
  ASSERT_TRUE(reader.ok());
  auto loaded = ReadTileTable(reader.value(), "different");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("extract-tile"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("hash"), std::string::npos);
}

TEST(ReadTileTableTest, RejectsRowCountMismatch) {
  auto manifest = GoodManifest();
  manifest["tile_rows"] = "0";  // Table holds two rows.
  auto reader =
      SnapshotReader::FromBytes(TileSnapshot(TileOf({0, 1}), manifest));
  ASSERT_TRUE(reader.ok());
  auto loaded = ReadTileTable(reader.value(), "abc123");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("extract-tile"),
            std::string::npos);
}

TEST(ReadTileTableTest, RejectsMalformedRowIds) {
  auto manifest = GoodManifest();
  manifest["tile_rows"] = "0,x";
  auto reader =
      SnapshotReader::FromBytes(TileSnapshot(TileOf({0, 1}), manifest));
  ASSERT_TRUE(reader.ok());
  auto loaded = ReadTileTable(reader.value(), "abc123");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("not a row id"),
            std::string::npos);
}

TEST(LoadTileTableTest, AttributesCorruptFileToTheTileStage) {
  const std::string path = ::testing::TempDir() + "/merge_test_corrupt.sfpm";
  std::string bytes = TileSnapshot(TileOf({0, 1}), GoodManifest());
  bytes[bytes.size() / 2] ^= 0x40;  // Payload corruption.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadTileTable(path, "abc123");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("extract-tile"),
            std::string::npos)
      << loaded.status().message();
  EXPECT_NE(loaded.status().message().find(path), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoadTileTableTest, AttributesTruncatedFileToTheTileStage) {
  const std::string path =
      ::testing::TempDir() + "/merge_test_truncated.sfpm";
  const std::string bytes = TileSnapshot(TileOf({0, 1}), GoodManifest());
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto loaded = LoadTileTable(path, "abc123");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("extract-tile"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(LoadTileTableTest, AttributesMissingFileToTheTileStage) {
  auto loaded =
      LoadTileTable(::testing::TempDir() + "/merge_test_absent.sfpm", "h");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("extract-tile"),
            std::string::npos);
}

}  // namespace
}  // namespace store
}  // namespace sfpm
