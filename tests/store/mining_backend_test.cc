#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "coloc/backend.h"
#include "core/mining_backend.h"
#include "core/transaction_db.h"
#include "datagen/city.h"
#include "io/csv.h"
#include "store/format.h"
#include "store/pipeline.h"
#include "store/reader.h"

namespace sfpm {
namespace store {
namespace {

std::string TestDir(const std::string& leaf) {
  const std::string prefix = ::testing::TempDir() + "/" + leaf;
  std::remove((prefix + "-city.sfpm").c_str());
  std::remove((prefix + "-txdb.sfpm").c_str());
  std::remove((prefix + "-patterns.sfpm").c_str());
  return prefix;
}

PipelineOptions SmallPipeline(const std::string& prefix) {
  PipelineOptions opts;
  opts.city_path = prefix + "-city.sfpm";
  opts.txdb_path = prefix + "-txdb.sfpm";
  opts.patterns_path = prefix + "-patterns.sfpm";
  opts.city = datagen::CityConfig{};
  opts.city.grid_cols = 3;
  opts.city.grid_rows = 2;
  opts.city.num_slums = 8;
  opts.city.num_schools = 12;
  opts.city.num_police = 4;
  opts.city.num_streets = 8;
  opts.city.num_rivers = 1;
  opts.mine.min_support = 0.3;
  return opts;
}

TEST(MiningBackendTest, RegistryKnowsTheItemsetBackends) {
  ASSERT_NE(core::FindBackend("apriori"), nullptr);
  EXPECT_EQ(core::FindBackend("apriori")->name(), "apriori");
  EXPECT_EQ(core::FindBackend("apriori")->source_kind(),
            core::MiningSource::Kind::kTransactions);
  ASSERT_NE(core::FindBackend("fpgrowth"), nullptr);
  EXPECT_EQ(core::FindBackend("fpgrowth")->name(), "fpgrowth");
  EXPECT_EQ(core::FindBackend("eclat"), nullptr);
  EXPECT_EQ(coloc::GraphBackend().name(), "coloc");
  EXPECT_EQ(coloc::GraphBackend().source_kind(),
            core::MiningSource::Kind::kLayers);
}

TEST(MiningBackendTest, BackendsRejectTheWrongSourceKind) {
  core::TransactionDb db;
  db.AddItem("x", "t");
  db.AddTransaction({core::ItemId{0}});
  const core::TransactionSource transactions(&db);
  core::BackendOptions options;
  EXPECT_FALSE(coloc::GraphBackend().Mine(transactions, options).ok());
}

TEST(MiningBackendTest, AprioriBackendMatchesDirectMining) {
  core::TransactionDb db;
  const auto a = db.AddItem("a", "ta");
  const auto b = db.AddItem("b", "tb");
  const auto c = db.AddItem("c", "tc");
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      db.AddTransaction({a, b});
    } else {
      db.AddTransaction({a, b, c});
    }
  }
  const core::TransactionSource source(&db);
  core::BackendOptions options;
  options.min_support = 0.4;
  auto mined = core::FindBackend("apriori")->Mine(source, options);
  ASSERT_TRUE(mined.ok()) << mined.status().message();
  EXPECT_EQ(mined.value().labels, std::vector<std::string>({"a", "b", "c"}));
  EXPECT_EQ(mined.value().keys,
            std::vector<std::string>({"ta", "tb", "tc"}));
  // {a}, {b}, {c}, {a,b}, {a,c}, {b,c}, {a,b,c} are all frequent at 0.4.
  EXPECT_EQ(mined.value().patterns.size(), 7u);
  for (const core::MinedPattern& p : mined.value().patterns) {
    EXPECT_EQ(p.rows, p.support);
    EXPECT_DOUBLE_EQ(p.score, p.support / 10.0);
  }
  auto fp = core::FindBackend("fpgrowth")->Mine(source, options);
  ASSERT_TRUE(fp.ok());
  EXPECT_EQ(fp.value().patterns.size(), mined.value().patterns.size());
}

TEST(MiningBackendTest, ResolvedBackendDefersToAlgorithm) {
  MineConfig config;
  config.algorithm = "fpgrowth";
  EXPECT_EQ(ResolvedMineBackend(config), "fpgrowth");
  config.backend = "coloc";
  EXPECT_EQ(ResolvedMineBackend(config), "coloc");
}

TEST(MiningBackendTest, CanonicalConfigTreatsBackendAsAlgorithm) {
  // `--backend=apriori` must hash (and therefore resume) identically to
  // `--algorithm=apriori`.
  MineConfig via_algorithm;
  MineConfig via_backend;
  via_backend.backend = "apriori";
  EXPECT_EQ(CanonicalMineConfig(via_algorithm),
            CanonicalMineConfig(via_backend));

  // The coloc backend adds its distance term; itemset backends never do.
  MineConfig coloc_config;
  coloc_config.backend = "coloc";
  EXPECT_NE(CanonicalMineConfig(coloc_config).find("algorithm=coloc"),
            std::string::npos);
  EXPECT_NE(CanonicalMineConfig(coloc_config).find("distance="),
            std::string::npos);
  EXPECT_EQ(CanonicalMineConfig(via_backend).find("distance="),
            std::string::npos);
}

TEST(MiningBackendTest, BackendFlagIsByteIdenticalToAlgorithmFlag) {
  const PipelineOptions baseline = SmallPipeline(TestDir("backend_baseline"));
  ASSERT_TRUE(RunPipeline(baseline).ok());

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    PipelineOptions opts = SmallPipeline(
        TestDir("backend_apriori_t" + std::to_string(threads)));
    opts.mine.backend = "apriori";
    opts.mine.threads = threads;
    ASSERT_TRUE(RunPipeline(opts).ok());
    auto expected = io::ReadFile(baseline.patterns_path);
    auto actual = io::ReadFile(opts.patterns_path);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_EQ(expected.value(), actual.value())
        << "--backend=apriori bytes differ at " << threads << " threads";
  }
}

TEST(MiningBackendTest, ColocBackendWritesGraphAndColocationSections) {
  PipelineOptions opts = SmallPipeline(TestDir("backend_coloc"));
  opts.mine.backend = "coloc";
  opts.mine.min_support = 0.2;
  opts.mine.coloc_distance = 400.0;
  auto result = RunPipeline(opts);
  ASSERT_TRUE(result.ok()) << result.status().message();

  auto reader = SnapshotReader::Open(opts.patterns_path);
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  auto graph_info = reader.value().Find(SectionType::kNeighborGraph);
  ASSERT_TRUE(graph_info.ok());
  auto graph = reader.value().ReadNeighborGraph(graph_info.value());
  ASSERT_TRUE(graph.ok()) << graph.status().message();
  EXPECT_EQ(graph.value().distance, 400.0);
  EXPECT_GE(graph.value().type_names.size(), 2u);
  EXPECT_FALSE(graph.value().neighbors.empty());

  auto coloc_info = reader.value().Find(SectionType::kColocationSet);
  ASSERT_TRUE(coloc_info.ok());
  auto colocations = reader.value().ReadColocationSet(coloc_info.value());
  ASSERT_TRUE(colocations.ok()) << colocations.status().message();
  EXPECT_EQ(colocations.value().min_prevalence, 0.2);
  EXPECT_EQ(colocations.value().distance, 400.0);
  EXPECT_EQ(colocations.value().type_names, graph.value().type_names);
  EXPECT_FALSE(colocations.value().patterns.empty());
  for (const ColocationSet::Pattern& p : colocations.value().patterns) {
    EXPECT_GE(p.types.size(), 2u);
    EXPECT_GE(p.participation_index, 0.2);
    EXPECT_LE(p.fuzzy_prevalence, p.participation_index);
    EXPECT_GT(p.rows, 0u);
  }

  auto manifest_info = reader.value().Find(SectionType::kManifest);
  ASSERT_TRUE(manifest_info.ok());
  auto manifest = reader.value().ReadManifest(manifest_info.value());
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().at("stage"), "mine");
}

TEST(MiningBackendTest, ColocBackendIsByteIdenticalAcrossThreadCounts) {
  PipelineOptions serial = SmallPipeline(TestDir("backend_coloc_t1"));
  serial.mine.backend = "coloc";
  serial.mine.min_support = 0.2;
  serial.mine.threads = 1;
  ASSERT_TRUE(RunPipeline(serial).ok());

  PipelineOptions parallel = SmallPipeline(TestDir("backend_coloc_t4"));
  parallel.mine.backend = "coloc";
  parallel.mine.min_support = 0.2;
  parallel.mine.threads = 4;
  ASSERT_TRUE(RunPipeline(parallel).ok());

  auto a = io::ReadFile(serial.patterns_path);
  auto b = io::ReadFile(parallel.patterns_path);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(MiningBackendTest, ColocBackendSkipsWhenUpToDate) {
  PipelineOptions opts = SmallPipeline(TestDir("backend_coloc_skip"));
  opts.mine.backend = "coloc";
  ASSERT_TRUE(RunPipeline(opts).ok());
  auto second = RunPipeline(opts);
  ASSERT_TRUE(second.ok());
  for (const StageOutcome& stage : second.value().stages) {
    EXPECT_TRUE(stage.skipped) << stage.stage;
  }

  // A distance change invalidates only the mine stage.
  opts.mine.coloc_distance = 250.0;
  auto rerun = RunPipeline(opts);
  ASSERT_TRUE(rerun.ok());
  ASSERT_EQ(rerun.value().stages.size(), 3u);
  EXPECT_TRUE(rerun.value().stages[0].skipped);
  EXPECT_TRUE(rerun.value().stages[1].skipped);
  EXPECT_FALSE(rerun.value().stages[2].skipped);
}

TEST(MiningBackendTest, RejectsUnknownBackend) {
  const PipelineOptions opts = SmallPipeline(TestDir("backend_unknown"));
  ASSERT_TRUE(RunPipeline(opts).ok());
  MineConfig bad;
  bad.backend = "eclat";
  const Status r = RunMineStage(opts.txdb_path,
                                opts.patterns_path + ".bad.sfpm", bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.message().find("eclat"), std::string::npos);
}

}  // namespace
}  // namespace store
}  // namespace sfpm
