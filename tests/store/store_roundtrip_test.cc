#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/transaction_db.h"
#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "geom/wkt.h"
#include "io/csv.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/version.h"

namespace sfpm {
namespace store {
namespace {

feature::Layer SixTypeLayer() {
  feature::Layer layer("mixed");
  const char* wkts[] = {
      "POINT (1 2)",
      "LINESTRING (0 0, 3 4, 3 8)",
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
      "MULTIPOINT ((1 1), (2 3))",
      "MULTILINESTRING ((0 0, 1 1), (5 5, 6 5, 6 6))",
      "MULTIPOLYGON (((0 0, 2 0, 2 2, 0 2, 0 0)), ((5 5, 7 5, 7 7, 5 7, 5 "
      "5)))",
  };
  for (size_t i = 0; i < 6; ++i) {
    auto g = geom::ReadWkt(wkts[i]);
    EXPECT_TRUE(g.ok()) << wkts[i];
    layer.Add(g.value(), {{"kind", std::to_string(i)}, {"name", "f"}});
  }
  return layer;
}

feature::PredicateTable SmallTable() {
  feature::PredicateTable table;
  for (int row = 0; row < 70; ++row) {  // > 64 rows: two bitmap words.
    table.AddRow("district_" + std::to_string(row));
    if (row % 2 == 0) {
      EXPECT_TRUE(table.SetSpatial(row, "contains", "slum").ok());
    }
    if (row % 3 == 0) {
      EXPECT_TRUE(table.SetSpatial(row, "touches", "street").ok());
    }
    if (row % 7 == 0) {
      EXPECT_TRUE(table.SetAttribute(row, "zone", "north").ok());
    }
  }
  return table;
}

PatternSet SmallPatterns() {
  PatternSet ps;
  ps.labels = {"contains_slum", "touches_street"};
  ps.keys = {"slum", "street"};
  ps.itemsets = {{core::Itemset({0}), 35}, {core::Itemset({0, 1}), 12}};
  ps.min_support = 0.15;
  ps.algorithm = "apriori";
  ps.filter = "kc+";
  return ps;
}

std::string BuildSnapshotBytes() {
  SnapshotWriter w;
  w.AddLayer(SixTypeLayer());
  w.AddTable(SmallTable());
  w.AddPatternSet(SmallPatterns());
  w.AddManifest({{"stage", "test"}, {"alpha", "1"}});
  return w.Serialize();
}

TEST(StoreRoundTripTest, SerializeIsDeterministic) {
  EXPECT_EQ(BuildSnapshotBytes(), BuildSnapshotBytes());
}

TEST(StoreRoundTripTest, HeaderCarriesToolVersion) {
  auto r = SnapshotReader::FromBytes(BuildSnapshotBytes());
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().tool_version(), kSfpmVersion);
  EXPECT_EQ(r.value().sections().size(), 4u);
}

TEST(StoreRoundTripTest, WriteReadWriteIsByteIdentical) {
  const std::string bytes = BuildSnapshotBytes();
  auto r = SnapshotReader::FromBytes(bytes);
  ASSERT_TRUE(r.ok()) << r.status().message();
  const SnapshotReader& reader = r.value();

  SnapshotWriter rewrite;
  auto layer_info = reader.Find(SectionType::kLayer);
  ASSERT_TRUE(layer_info.ok());
  auto layer = reader.ReadLayer(layer_info.value());
  ASSERT_TRUE(layer.ok()) << layer.status().message();
  rewrite.AddLayer(layer.value());

  auto table_info = reader.Find(SectionType::kTransactionDb);
  ASSERT_TRUE(table_info.ok());
  auto table = reader.ReadTable(table_info.value());
  ASSERT_TRUE(table.ok()) << table.status().message();
  rewrite.AddTable(table.value(), table_info.value().name);

  auto ps_info = reader.Find(SectionType::kPatternSet);
  ASSERT_TRUE(ps_info.ok());
  auto ps = reader.ReadPatternSet(ps_info.value());
  ASSERT_TRUE(ps.ok()) << ps.status().message();
  rewrite.AddPatternSet(ps.value(), ps_info.value().name);

  auto m_info = reader.Find(SectionType::kManifest);
  ASSERT_TRUE(m_info.ok());
  auto manifest = reader.ReadManifest(m_info.value());
  ASSERT_TRUE(manifest.ok()) << manifest.status().message();
  rewrite.AddManifest(manifest.value(), m_info.value().name);

  EXPECT_EQ(rewrite.Serialize(), bytes);
}

TEST(StoreRoundTripTest, LayerGeometryAndAttributesSurvive) {
  const feature::Layer original = SixTypeLayer();
  auto r = SnapshotReader::FromBytes(BuildSnapshotBytes());
  ASSERT_TRUE(r.ok());
  auto info = r.value().Find(SectionType::kLayer, "mixed");
  ASSERT_TRUE(info.ok());
  auto layer = r.value().ReadLayer(info.value());
  ASSERT_TRUE(layer.ok()) << layer.status().message();
  ASSERT_EQ(layer.value().Size(), original.Size());
  EXPECT_EQ(layer.value().feature_type(), "mixed");
  for (size_t i = 0; i < original.Size(); ++i) {
    EXPECT_EQ(geom::WriteWkt(layer.value().at(i).geometry()),
              geom::WriteWkt(original.at(i).geometry()));
    EXPECT_EQ(layer.value().at(i).attributes(), original.at(i).attributes());
    EXPECT_EQ(layer.value().at(i).id(), original.at(i).id());
  }
}

TEST(StoreRoundTripTest, TableSurvivesWithRowNamesAndPredicates) {
  const feature::PredicateTable original = SmallTable();
  auto r = SnapshotReader::FromBytes(BuildSnapshotBytes());
  ASSERT_TRUE(r.ok());
  auto info = r.value().Find(SectionType::kTransactionDb, "txdb");
  ASSERT_TRUE(info.ok());
  auto table = r.value().ReadTable(info.value());
  ASSERT_TRUE(table.ok()) << table.status().message();
  ASSERT_EQ(table.value().NumRows(), original.NumRows());
  ASSERT_EQ(table.value().NumPredicates(), original.NumPredicates());
  for (size_t row = 0; row < original.NumRows(); ++row) {
    EXPECT_EQ(table.value().RowName(row), original.RowName(row));
    for (core::ItemId item = 0; item < original.NumPredicates(); ++item) {
      EXPECT_EQ(table.value().db().Test(row, item),
                original.db().Test(row, item));
    }
  }
  for (core::ItemId item = 0; item < original.NumPredicates(); ++item) {
    EXPECT_EQ(table.value().PredicateAt(item).Label(),
              original.PredicateAt(item).Label());
    EXPECT_EQ(table.value().PredicateAt(item).Key(),
              original.PredicateAt(item).Key());
  }
}

TEST(StoreRoundTripTest, ZeroCopyViewMatchesMaterializedDb) {
  auto r = SnapshotReader::FromBytes(BuildSnapshotBytes());
  ASSERT_TRUE(r.ok());
  auto info = r.value().Find(SectionType::kTransactionDb);
  ASSERT_TRUE(info.ok());
  auto view = r.value().ViewTable(info.value());
  ASSERT_TRUE(view.ok()) << view.status().message();

  const feature::PredicateTable original = SmallTable();
  const core::TransactionDb& db = original.db();
  EXPECT_EQ(view.value().num_transactions, db.NumTransactions());
  EXPECT_EQ(view.value().num_items, db.NumItems());
  EXPECT_EQ(view.value().num_words, (db.NumTransactions() + 63) / 64);
  ASSERT_EQ(view.value().row_names.size(), original.NumRows());
  EXPECT_EQ(view.value().row_names[0], "district_0");
  for (size_t i = 0; i < view.value().num_items; ++i) {
    EXPECT_EQ(view.value().labels[i], db.Label(static_cast<core::ItemId>(i)));
    EXPECT_EQ(view.value().keys[i], db.Key(static_cast<core::ItemId>(i)));
  }

  auto materialized = view.value().Materialize();
  ASSERT_TRUE(materialized.ok()) << materialized.status().message();
  for (size_t row = 0; row < db.NumTransactions(); ++row) {
    for (core::ItemId item = 0; item < db.NumItems(); ++item) {
      EXPECT_EQ(materialized.value().Test(row, item), db.Test(row, item));
    }
  }
}

TEST(StoreRoundTripTest, PatternSetAndManifestSurvive) {
  auto r = SnapshotReader::FromBytes(BuildSnapshotBytes());
  ASSERT_TRUE(r.ok());
  auto ps_info = r.value().Find(SectionType::kPatternSet, "patterns");
  ASSERT_TRUE(ps_info.ok());
  auto ps = r.value().ReadPatternSet(ps_info.value());
  ASSERT_TRUE(ps.ok()) << ps.status().message();
  EXPECT_TRUE(ps.value() == SmallPatterns());

  auto m_info = r.value().Find(SectionType::kManifest);
  ASSERT_TRUE(m_info.ok());
  auto manifest = r.value().ReadManifest(m_info.value());
  ASSERT_TRUE(manifest.ok());
  const std::map<std::string, std::string> expected = {{"stage", "test"},
                                                       {"alpha", "1"}};
  EXPECT_EQ(manifest.value(), expected);
}

TEST(StoreRoundTripTest, MappedAndBufferedOpensAgree) {
  const std::string bytes = BuildSnapshotBytes();
  const std::string path = ::testing::TempDir() + "/roundtrip.sfpm";
  ASSERT_TRUE(io::WriteFile(path, bytes).ok());

  auto mapped = SnapshotReader::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_TRUE(mapped.value().is_mapped());
#endif

  SnapshotReader::Options buffered_opts;
  buffered_opts.use_mmap = false;
  auto buffered = SnapshotReader::Open(path, buffered_opts);
  ASSERT_TRUE(buffered.ok()) << buffered.status().message();
  EXPECT_FALSE(buffered.value().is_mapped());

  // Both paths decode the identical table.
  for (const SnapshotReader* reader : {&mapped.value(), &buffered.value()}) {
    auto info = reader->Find(SectionType::kTransactionDb);
    ASSERT_TRUE(info.ok());
    auto table = reader->ReadTable(info.value());
    ASSERT_TRUE(table.ok()) << table.status().message();
    EXPECT_EQ(table.value().NumRows(), 70u);
    SnapshotWriter rewrite;
    rewrite.AddTable(table.value());
    EXPECT_EQ(rewrite.Serialize(), [&] {
      SnapshotWriter w;
      w.AddTable(SmallTable());
      return w.Serialize();
    }());
  }
}

TEST(StoreRoundTripTest, EmptySnapshotAndEmptySectionsRoundTrip) {
  SnapshotWriter w;
  w.AddManifest({});
  core::TransactionDb empty_db;
  w.AddTransactionDb(empty_db, "empty");
  const std::string bytes = w.Serialize();
  auto r = SnapshotReader::FromBytes(bytes);
  ASSERT_TRUE(r.ok()) << r.status().message();
  auto info = r.value().Find(SectionType::kTransactionDb, "empty");
  ASSERT_TRUE(info.ok());
  auto db = r.value().ReadTransactionDb(info.value());
  ASSERT_TRUE(db.ok()) << db.status().message();
  EXPECT_EQ(db.value().NumItems(), 0u);
  EXPECT_EQ(db.value().NumTransactions(), 0u);
}

TEST(StoreRoundTripTest, FindMissingSectionIsNotFound) {
  SnapshotWriter w;
  w.AddManifest({{"a", "b"}});
  auto r = SnapshotReader::FromBytes(w.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Find(SectionType::kLayer).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(r.value().Find(SectionType::kManifest, "nope").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace store
}  // namespace sfpm
