#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/transaction_db.h"
#include "feature/feature.h"
#include "geom/wkt.h"
#include "store/crc32.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"

namespace sfpm {
namespace store {
namespace {

/// A snapshot with every section type, used as the corruption target.
std::string Snapshot() {
  SnapshotWriter w;
  feature::Layer layer("park");
  layer.Add(geom::ReadWkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").value(),
            {{"name", "central"}});
  w.AddLayer(layer);
  core::TransactionDb db;
  const auto a = db.AddItem("contains_slum", "slum");
  const auto b = db.AddItem("touches_street", "street");
  for (int i = 0; i < 10; ++i) {
    db.AddTransaction(i % 2 == 0 ? std::vector<core::ItemId>{a}
                                 : std::vector<core::ItemId>{a, b});
  }
  w.AddTransactionDb(db);
  PatternSet ps;
  ps.labels = {"contains_slum"};
  ps.keys = {"slum"};
  ps.itemsets = {{core::Itemset({0}), 10}};
  ps.min_support = 0.5;
  ps.algorithm = "fpgrowth";
  ps.filter = "none";
  w.AddPatternSet(ps);
  NeighborGraphData graph;
  graph.distance = 500.0;
  graph.type_names = {"park", "slum"};
  graph.type_sizes = {2, 1};
  graph.band_names = {"veryClose", "close"};
  graph.offsets = {0, 1, 2, 4};
  graph.neighbors = {2, 2, 0, 1};
  graph.bands = {0, 1, 0, 1};
  w.AddNeighborGraph(graph);
  ColocationSet cs;
  cs.type_names = {"park", "slum"};
  cs.min_prevalence = 0.4;
  cs.distance = 500.0;
  cs.filter = "kc+";
  cs.patterns = {{{0, 1}, 0.75, 0.5, 3}};
  w.AddColocationSet(cs);
  w.AddManifest({{"stage", "mine"}});
  return w.Serialize();
}

void PokeU16(std::string* bytes, size_t offset, uint16_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

void PokeU32(std::string* bytes, size_t offset, uint32_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

void PokeU64(std::string* bytes, size_t offset, uint64_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

/// Every mutation must produce a clean ParseError/Unsupported status —
/// never a crash, never a clean open. Run under ASan/UBSan this is the
/// memory-safety half of the store's contract.
void ExpectRejected(const std::string& bytes, const std::string& what) {
  auto eager = SnapshotReader::FromBytes(bytes);
  EXPECT_FALSE(eager.ok()) << what << ": opened cleanly (eager)";
  if (!eager.ok()) {
    EXPECT_FALSE(eager.status().message().empty()) << what;
  }
  // Deferred-checksum readers may open, but then every section decode
  // must either fail or the corruption was in header/table (caught
  // above). Decoding must never crash.
  SnapshotReader::Options lazy;
  lazy.verify_checksums_eagerly = false;
  auto r = SnapshotReader::FromBytes(bytes, lazy);
  if (r.ok()) {
    for (const SectionInfo& info : r.value().sections()) {
      switch (info.type) {
        case SectionType::kLayer:
          r.value().ReadLayer(info).status();
          break;
        case SectionType::kTransactionDb:
          r.value().ReadTransactionDb(info).status();
          break;
        case SectionType::kPatternSet:
          r.value().ReadPatternSet(info).status();
          break;
        case SectionType::kNeighborGraph:
          r.value().ReadNeighborGraph(info).status();
          break;
        case SectionType::kColocationSet:
          r.value().ReadColocationSet(info).status();
          break;
        case SectionType::kManifest:
          r.value().ReadManifest(info).status();
          break;
      }
    }
  }
}

TEST(StoreCorruptionTest, TruncationAtEveryBoundaryRejected) {
  const std::string bytes = Snapshot();
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_TRUE(reader.ok());
  std::vector<size_t> cuts = {0,
                              1,
                              kHeaderFixedSize - 1,
                              kHeaderFixedSize,
                              bytes.size() - 1};
  for (const SectionInfo& info : reader.value().sections()) {
    cuts.push_back(info.offset);
    cuts.push_back(info.offset + info.length / 2);
    cuts.push_back(info.offset + info.length);
  }
  for (size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    ExpectRejected(bytes.substr(0, cut),
                   "truncated to " + std::to_string(cut));
  }
}

TEST(StoreCorruptionTest, EveryPossibleSingleByteFlipRejected) {
  const std::string bytes = Snapshot();
  // Exhaustive over the file: the format guarantees no byte is slack.
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0xA5);
    ExpectRejected(corrupted, "flip at " + std::to_string(pos));
  }
}

TEST(StoreCorruptionTest, BadMagicRejected) {
  std::string bytes = Snapshot();
  PokeU32(&bytes, 0, 0x4D504654);  // "TFPM"
  ExpectRejected(bytes, "bad magic");
  auto r = SnapshotReader::FromBytes(bytes);
  EXPECT_NE(r.status().message().find("magic"), std::string::npos)
      << r.status().message();
}

TEST(StoreCorruptionTest, FutureVersionRejectedWithClearMessage) {
  std::string bytes = Snapshot();
  PokeU16(&bytes, 4, kFormatVersion + 1);
  auto r = SnapshotReader::FromBytes(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos)
      << r.status().message();
}

TEST(StoreCorruptionTest, NonzeroFlagsAndReservedRejected) {
  {
    std::string bytes = Snapshot();
    PokeU16(&bytes, 6, 1);  // flags
    ExpectRejected(bytes, "nonzero flags");
  }
  {
    std::string bytes = Snapshot();
    PokeU32(&bytes, 36, 7);  // header reserved
    ExpectRejected(bytes, "nonzero reserved");
  }
}

TEST(StoreCorruptionTest, FileSizeMismatchRejected) {
  {
    std::string bytes = Snapshot();
    PokeU64(&bytes, 8, bytes.size() + 8);  // Claims more than present.
    ExpectRejected(bytes, "oversized file_size");
  }
  {
    std::string bytes = Snapshot();
    bytes += std::string(16, '\0');  // Trailing garbage.
    ExpectRejected(bytes, "trailing bytes");
  }
}

TEST(StoreCorruptionTest, AbsurdLengthsRejectedWithoutHugeAllocations) {
  // Absurd table offset.
  {
    std::string bytes = Snapshot();
    PokeU64(&bytes, 16, ~uint64_t{0} / 2);
    ExpectRejected(bytes, "absurd table_offset");
  }
  // Absurd section count.
  {
    std::string bytes = Snapshot();
    PokeU32(&bytes, 24, 0x7FFFFFFF);
    ExpectRejected(bytes, "absurd section_count");
  }
  // Absurd tool_version length.
  {
    std::string bytes = Snapshot();
    PokeU32(&bytes, 28, 0x7FFFFFFF);
    ExpectRejected(bytes, "absurd tool_version_len");
  }
}

TEST(StoreCorruptionTest, FlippedChecksumBytesRejected) {
  const std::string bytes = Snapshot();
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_TRUE(reader.ok());
  // Header CRC field.
  {
    std::string c = bytes;
    c[32] = static_cast<char>(c[32] ^ 0xFF);
    ExpectRejected(c, "header crc flip");
  }
  // Table CRC field (first u32 of the table).
  {
    const size_t table_offset =
        reader.value().sections().back().offset +
        reader.value().sections().back().length;
    std::string c = bytes;
    c[table_offset] = static_cast<char>(c[table_offset] ^ 0xFF);
    ExpectRejected(c, "table crc flip");
  }
}

TEST(StoreCorruptionTest, PayloadCorruptionNamesTheProblem) {
  const std::string bytes = Snapshot();
  auto reader = SnapshotReader::FromBytes(bytes);
  ASSERT_TRUE(reader.ok());
  const SectionInfo& first = reader.value().sections().front();
  std::string c = bytes;
  c[first.offset + 4] = static_cast<char>(c[first.offset + 4] ^ 0x10);
  auto r = SnapshotReader::FromBytes(c);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("corrupt"), std::string::npos)
      << r.status().message();
}

TEST(StoreCorruptionTest, TooSmallInputsRejected) {
  ExpectRejected("", "empty");
  ExpectRejected("SFPM", "four bytes");
  ExpectRejected(std::string(kHeaderFixedSize, '\0'), "zeroed header");
}

TEST(StoreCorruptionTest, Crc32MatchesKnownVectors) {
  // IEEE 802.3 reference values (zlib-compatible).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  EXPECT_EQ(Crc32("abc", 3), 0x352441C2u);
}

}  // namespace
}  // namespace store
}  // namespace sfpm
