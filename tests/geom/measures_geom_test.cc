#include <gtest/gtest.h>

#include "geom/algorithms.h"
#include "geom/transform.h"
#include "geom/wkt.h"

namespace sfpm {
namespace geom {
namespace {

Geometry G(const char* wkt) {
  auto g = ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt;
  return g.value_or(Geometry());
}

TEST(GeometryMeasuresTest, AreaDispatch) {
  EXPECT_DOUBLE_EQ(Area(G("POINT (1 1)")), 0.0);
  EXPECT_DOUBLE_EQ(Area(G("LINESTRING (0 0, 5 0)")), 0.0);
  EXPECT_DOUBLE_EQ(Area(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")), 16.0);
  EXPECT_DOUBLE_EQ(
      Area(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0),"
             " (1 1, 2 1, 2 2, 1 2, 1 1))")),
      15.0);
  EXPECT_DOUBLE_EQ(Area(G("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
                          " ((5 5, 7 5, 7 7, 5 7, 5 5)))")),
                   5.0);
}

TEST(GeometryMeasuresTest, LengthDispatch) {
  EXPECT_DOUBLE_EQ(Length(G("POINT (1 1)")), 0.0);
  EXPECT_DOUBLE_EQ(Length(G("LINESTRING (0 0, 3 0, 3 4)")), 7.0);
  EXPECT_DOUBLE_EQ(Length(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")), 16.0);
  EXPECT_DOUBLE_EQ(
      Length(G("MULTILINESTRING ((0 0, 1 0), (0 0, 0 2))")), 3.0);
}

TEST(HausdorffTest, IdenticalIsZero) {
  const Geometry g = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  EXPECT_DOUBLE_EQ(HausdorffDistance(g, g), 0.0);
}

TEST(HausdorffTest, TranslatedSquares) {
  const Geometry a = G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  const Geometry b = Translate(a, 10, 0);
  // Hausdorff between a square and its x-translate by 10: the far corner
  // pairing gives sqrt(8^2) .. actually max over boundary-to-boundary
  // distance = 10 (left edge of a to left edge of b is 10; every point of
  // a is within 10 of b and the corners achieve it).
  EXPECT_NEAR(HausdorffDistance(a, b), 10.0, 1e-9);
}

TEST(HausdorffTest, AsymmetricShapesUseMaxDirection) {
  const Geometry small = G("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  const Geometry big = G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  // small -> big is 0 (contained, boundary near), big -> small dominates:
  // the far corner (10,10) is sqrt(81+81) from the small square.
  EXPECT_NEAR(HausdorffDistance(small, big), std::hypot(9.0, 9.0), 1e-9);
}

TEST(HausdorffTest, PointSets) {
  const Geometry a = G("MULTIPOINT (0 0, 10 0)");
  const Geometry b = G("MULTIPOINT (0 1, 10 1)");
  EXPECT_NEAR(HausdorffDistance(a, b), 1.0, 1e-9);
}

TEST(HausdorffTest, DensificationTightensLines) {
  // A segment vs just its two endpoints: with vertices only, the directed
  // distance from the segment is 0; densified sampling reveals that the
  // segment's middle is ~50 away from the point set.
  const Geometry line = G("LINESTRING (0 0, 100 0)");
  const Geometry endpoints = G("MULTIPOINT (0 0, 100 0)");
  const double coarse = HausdorffDistance(line, endpoints, 1.0);
  const double fine = HausdorffDistance(line, endpoints, 0.05);
  EXPECT_DOUBLE_EQ(coarse, 0.0);
  EXPECT_NEAR(fine, 50.0, 3.0);
}

TEST(HausdorffTest, SymmetricInArguments) {
  const Geometry a = G("POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))");
  const Geometry b = G("LINESTRING (5 0, 9 4)");
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), HausdorffDistance(b, a));
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
