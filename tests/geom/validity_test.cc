#include "geom/validity.h"

#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace sfpm {
namespace geom {
namespace {

Geometry G(const char* wkt) {
  auto g = ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt;
  return g.value_or(Geometry());
}

TEST(ValidityTest, ValidShapes) {
  EXPECT_TRUE(Validate(G("POINT (1 2)")).ok());
  EXPECT_TRUE(Validate(G("MULTIPOINT (1 2, 3 4)")).ok());
  EXPECT_TRUE(Validate(G("LINESTRING (0 0, 1 0, 1 1)")).ok());
  EXPECT_TRUE(Validate(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")).ok());
  EXPECT_TRUE(Validate(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0),"
                         " (1 1, 2 1, 2 2, 1 2, 1 1))")).ok());
  EXPECT_TRUE(Validate(G("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
                         " ((5 5, 6 5, 6 6, 5 6, 5 5)))")).ok());
  EXPECT_TRUE(Validate(G("POLYGON EMPTY")).ok());
  EXPECT_TRUE(Validate(G("LINESTRING EMPTY")).ok());
}

TEST(ValidityTest, TouchingMultipolygonPartsAreValid) {
  // Parts sharing a single corner point keep disjoint interiors.
  EXPECT_TRUE(Validate(G("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
                         " ((1 1, 2 1, 2 2, 1 2, 1 1)))")).ok());
}

TEST(ValidityTest, ZeroLengthSegment) {
  const LineString line({{0, 0}, {0, 0}, {1, 1}});
  EXPECT_FALSE(Validate(Geometry(line)).ok());
}

TEST(ValidityTest, BowtieRingRejected) {
  // Classic self-intersecting "bowtie".
  const LinearRing bowtie({{0, 0}, {2, 2}, {2, 0}, {0, 2}});
  EXPECT_FALSE(ValidateRing(bowtie).ok());
  EXPECT_FALSE(Validate(Geometry(Polygon(bowtie))).ok());
}

TEST(ValidityTest, ZeroAreaRingRejected) {
  const LinearRing flat({{0, 0}, {1, 0}, {2, 0}});
  EXPECT_FALSE(ValidateRing(flat).ok());
}

TEST(ValidityTest, HoleOutsideShellRejected) {
  const Polygon poly(LinearRing({{0, 0}, {4, 0}, {4, 4}, {0, 4}}),
                     {LinearRing({{10, 10}, {11, 10}, {11, 11}, {10, 11}})});
  EXPECT_FALSE(Validate(Geometry(poly)).ok());
}

TEST(ValidityTest, HoleCrossingShellRejected) {
  const Polygon poly(LinearRing({{0, 0}, {4, 0}, {4, 4}, {0, 4}}),
                     {LinearRing({{2, 2}, {6, 2}, {6, 3}, {2, 3}})});
  EXPECT_FALSE(Validate(Geometry(poly)).ok());
}

TEST(ValidityTest, OverlappingHolesRejected) {
  const Polygon poly(LinearRing({{0, 0}, {10, 0}, {10, 10}, {0, 10}}),
                     {LinearRing({{1, 1}, {5, 1}, {5, 5}, {1, 5}}),
                      LinearRing({{3, 3}, {7, 3}, {7, 7}, {3, 7}})});
  EXPECT_FALSE(Validate(Geometry(poly)).ok());
}

TEST(ValidityTest, NestedHolesRejected) {
  const Polygon poly(LinearRing({{0, 0}, {10, 0}, {10, 10}, {0, 10}}),
                     {LinearRing({{1, 1}, {8, 1}, {8, 8}, {1, 8}}),
                      LinearRing({{3, 3}, {5, 3}, {5, 5}, {3, 5}})});
  EXPECT_FALSE(Validate(Geometry(poly)).ok());
}

TEST(ValidityTest, OverlappingMultipolygonRejected) {
  EXPECT_FALSE(Validate(G("MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0)),"
                          " ((2 2, 6 2, 6 6, 2 6, 2 2)))")).ok());
}

TEST(ValidityTest, ContainedMultipolygonPartRejected) {
  EXPECT_FALSE(Validate(G("MULTIPOLYGON (((0 0, 10 0, 10 10, 0 10, 0 0)),"
                          " ((2 2, 3 2, 3 3, 2 3, 2 2)))")).ok());
}

TEST(IsSimpleTest, Lines) {
  EXPECT_TRUE(IsSimple(LineString({{0, 0}, {1, 0}, {1, 1}})));
  // Self-crossing path.
  EXPECT_FALSE(IsSimple(LineString({{0, 0}, {2, 2}, {2, 0}, {0, 2}})));
  // Closed ring: endpoints coincide by design, still simple.
  EXPECT_TRUE(IsSimple(LineString({{0, 0}, {1, 0}, {1, 1}, {0, 0}})));
  // Path revisiting its own interior.
  EXPECT_FALSE(IsSimple(LineString({{0, 0}, {4, 0}, {4, 1}, {2, -1}})));
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
