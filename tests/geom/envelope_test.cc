#include <gtest/gtest.h>

#include "geom/point.h"

namespace sfpm {
namespace geom {
namespace {

TEST(EnvelopeTest, DefaultIsNull) {
  Envelope env;
  EXPECT_TRUE(env.IsNull());
  EXPECT_EQ(env.Width(), 0.0);
  EXPECT_EQ(env.Area(), 0.0);
  EXPECT_FALSE(env.Contains(Point(0, 0)));
  EXPECT_FALSE(env.Intersects(Envelope(0, 0, 1, 1)));
}

TEST(EnvelopeTest, NormalizesCorners) {
  Envelope env(5, 7, 1, 2);
  EXPECT_EQ(env.min_x(), 1);
  EXPECT_EQ(env.min_y(), 2);
  EXPECT_EQ(env.max_x(), 5);
  EXPECT_EQ(env.max_y(), 7);
  EXPECT_EQ(env.Width(), 4);
  EXPECT_EQ(env.Height(), 5);
  EXPECT_EQ(env.Area(), 20);
  EXPECT_EQ(env.Perimeter(), 18);
}

TEST(EnvelopeTest, ExpandToIncludePoint) {
  Envelope env;
  env.ExpandToInclude(Point(1, 1));
  EXPECT_FALSE(env.IsNull());
  EXPECT_EQ(env.Area(), 0.0);
  env.ExpandToInclude(Point(-1, 3));
  EXPECT_EQ(env, Envelope(-1, 1, 1, 3));
}

TEST(EnvelopeTest, ExpandToIncludeNullEnvelopeIsNoop) {
  Envelope env(0, 0, 1, 1);
  env.ExpandToInclude(Envelope());
  EXPECT_EQ(env, Envelope(0, 0, 1, 1));
}

TEST(EnvelopeTest, IntersectsSharedEdgeAndCorner) {
  const Envelope a(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(Envelope(1, 0, 2, 1)));  // Shared edge.
  EXPECT_TRUE(a.Intersects(Envelope(1, 1, 2, 2)));  // Shared corner.
  EXPECT_FALSE(a.Intersects(Envelope(1.01, 0, 2, 1)));
}

TEST(EnvelopeTest, ContainsPointIncludesBorder) {
  const Envelope env(0, 0, 2, 2);
  EXPECT_TRUE(env.Contains(Point(1, 1)));
  EXPECT_TRUE(env.Contains(Point(0, 0)));
  EXPECT_TRUE(env.Contains(Point(2, 1)));
  EXPECT_FALSE(env.Contains(Point(2.001, 1)));
}

TEST(EnvelopeTest, ContainsEnvelope) {
  const Envelope outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.Contains(Envelope(1, 1, 9, 9)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Envelope(5, 5, 11, 9)));
}

TEST(EnvelopeTest, DistanceZeroWhenIntersecting) {
  EXPECT_EQ(Envelope(0, 0, 1, 1).Distance(Envelope(0.5, 0.5, 2, 2)), 0.0);
}

TEST(EnvelopeTest, DistanceAxisAligned) {
  EXPECT_DOUBLE_EQ(Envelope(0, 0, 1, 1).Distance(Envelope(3, 0, 4, 1)), 2.0);
  EXPECT_DOUBLE_EQ(Envelope(0, 0, 1, 1).Distance(Envelope(0, 5, 1, 6)), 4.0);
}

TEST(EnvelopeTest, DistanceDiagonal) {
  EXPECT_DOUBLE_EQ(Envelope(0, 0, 1, 1).Distance(Envelope(4, 5, 6, 7)), 5.0);
}

TEST(EnvelopeTest, IntersectionRectangle) {
  const Envelope inter =
      Envelope(0, 0, 4, 4).Intersection(Envelope(2, 1, 6, 3));
  EXPECT_EQ(inter, Envelope(2, 1, 4, 3));
  EXPECT_TRUE(Envelope(0, 0, 1, 1).Intersection(Envelope(2, 2, 3, 3)).IsNull());
}

TEST(EnvelopeTest, BufferedGrowsEverySide) {
  EXPECT_EQ(Envelope(0, 0, 1, 1).Buffered(2), Envelope(-2, -2, 3, 3));
  EXPECT_TRUE(Envelope().Buffered(1).IsNull());
}

TEST(EnvelopeTest, EnlargementToInclude) {
  const Envelope a(0, 0, 2, 2);
  EXPECT_EQ(a.EnlargementToInclude(Envelope(1, 1, 2, 2)), 0.0);
  EXPECT_EQ(a.EnlargementToInclude(Envelope(0, 0, 4, 2)), 4.0);
}

TEST(PointTest, DistanceAndOrder) {
  EXPECT_DOUBLE_EQ(Point(0, 0).DistanceTo(Point(3, 4)), 5.0);
  EXPECT_TRUE(Point(1, 5) < Point(2, 0));
  EXPECT_TRUE(Point(1, 2) < Point(1, 3));
  EXPECT_FALSE(Point(1, 2) < Point(1, 2));
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
