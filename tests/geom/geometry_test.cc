#include "geom/geometry.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace geom {
namespace {

Polygon UnitSquare() {
  return Polygon(LinearRing({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
}

TEST(LineStringTest, LengthAndEnvelope) {
  LineString l({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(l.Length(), 7.0);
  EXPECT_EQ(l.GetEnvelope(), Envelope(0, 0, 3, 4));
  EXPECT_FALSE(l.IsClosed());
}

TEST(LineStringTest, ClosedDetection) {
  EXPECT_TRUE(LineString({{0, 0}, {1, 0}, {1, 1}, {0, 0}}).IsClosed());
  EXPECT_FALSE(LineString({{0, 0}, {1, 0}}).IsClosed());
}

TEST(LinearRingTest, AutoCloses) {
  LinearRing ring({{0, 0}, {1, 0}, {1, 1}});
  ASSERT_EQ(ring.NumPoints(), 4u);
  EXPECT_EQ(ring.point(0), ring.point(3));
  EXPECT_TRUE(ring.IsValid());
}

TEST(LinearRingTest, SignedAreaOrientation) {
  LinearRing ccw({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  LinearRing cw({{0, 0}, {0, 2}, {2, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), 4.0);
  EXPECT_DOUBLE_EQ(cw.SignedArea(), -4.0);
  EXPECT_DOUBLE_EQ(ccw.Area(), 4.0);
  EXPECT_DOUBLE_EQ(cw.Area(), 4.0);
}

TEST(PolygonTest, AreaWithHoles) {
  Polygon p(LinearRing({{0, 0}, {4, 0}, {4, 4}, {0, 4}}),
            {LinearRing({{1, 1}, {2, 1}, {2, 2}, {1, 2}})});
  EXPECT_DOUBLE_EQ(p.Area(), 15.0);
  EXPECT_DOUBLE_EQ(p.BoundaryLength(), 16.0 + 4.0);
}

TEST(GeometryTest, DimensionPerType) {
  EXPECT_EQ(Geometry(Point(0, 0)).Dimension(), 0);
  EXPECT_EQ(Geometry(MultiPoint({{0, 0}})).Dimension(), 0);
  EXPECT_EQ(Geometry(LineString({{0, 0}, {1, 1}})).Dimension(), 1);
  EXPECT_EQ(Geometry(MultiLineString()).Dimension(), 1);
  EXPECT_EQ(Geometry(UnitSquare()).Dimension(), 2);
  EXPECT_EQ(Geometry(MultiPolygon()).Dimension(), 2);
}

TEST(GeometryTest, TypeQueries) {
  const Geometry g(UnitSquare());
  EXPECT_EQ(g.type(), GeometryType::kPolygon);
  EXPECT_TRUE(g.Is<Polygon>());
  EXPECT_FALSE(g.Is<Point>());
  EXPECT_DOUBLE_EQ(g.As<Polygon>().Area(), 1.0);
}

TEST(GeometryTest, EnvelopeOfMultiPolygon) {
  MultiPolygon mp({UnitSquare(),
                   Polygon(LinearRing({{5, 5}, {6, 5}, {6, 7}, {5, 7}}))});
  EXPECT_EQ(Geometry(mp).GetEnvelope(), Envelope(0, 0, 6, 7));
  EXPECT_DOUBLE_EQ(mp.Area(), 3.0);
}

TEST(GeometryTest, NumParts) {
  EXPECT_EQ(Geometry(Point(1, 1)).NumParts(), 1u);
  EXPECT_EQ(Geometry(MultiPoint({{0, 0}, {1, 1}, {2, 2}})).NumParts(), 3u);
}

TEST(GeometryTest, DecomposeSplitsMultis) {
  MultiLineString ml({LineString({{0, 0}, {1, 1}}),
                      LineString({{2, 2}, {3, 3}})});
  const auto parts = Decompose(Geometry(ml));
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0].type(), GeometryType::kLineString);
  EXPECT_EQ(parts[1].type(), GeometryType::kLineString);
}

TEST(GeometryTest, DecomposeOfSimpleIsIdentity) {
  const Geometry g(UnitSquare());
  const auto parts = Decompose(g);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], g);
}

TEST(GeometryTest, EmptyDetection) {
  EXPECT_TRUE(Geometry(LineString()).IsEmpty());
  EXPECT_TRUE(Geometry(Polygon()).IsEmpty());
  EXPECT_TRUE(Geometry(MultiPoint()).IsEmpty());
  EXPECT_FALSE(Geometry(Point(0, 0)).IsEmpty());
  EXPECT_FALSE(Geometry(UnitSquare()).IsEmpty());
}

TEST(GeometryTest, TypeNames) {
  EXPECT_STREQ(GeometryTypeName(GeometryType::kPoint), "POINT");
  EXPECT_STREQ(GeometryTypeName(GeometryType::kMultiPolygon),
               "MULTIPOLYGON");
}

TEST(MultiLineStringTest, TotalLength) {
  MultiLineString ml({LineString({{0, 0}, {1, 0}}),
                      LineString({{0, 0}, {0, 2}})});
  EXPECT_DOUBLE_EQ(ml.Length(), 3.0);
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
