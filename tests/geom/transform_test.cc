#include "geom/transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.h"
#include "geom/wkt.h"
#include "relate/relate.h"

namespace sfpm {
namespace geom {
namespace {

Geometry G(const char* wkt) {
  auto g = ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt;
  return g.value_or(Geometry());
}

void ExpectPointNear(const Point& got, const Point& want) {
  EXPECT_NEAR(got.x, want.x, 1e-12);
  EXPECT_NEAR(got.y, want.y, 1e-12);
}

TEST(TransformTest, IdentityByDefault) {
  const AffineTransform id;
  ExpectPointNear(id.Apply(Point(3, 4)), Point(3, 4));
  EXPECT_DOUBLE_EQ(id.Determinant(), 1.0);
}

TEST(TransformTest, Translation) {
  const auto t = AffineTransform::Translation(2, -3);
  ExpectPointNear(t.Apply(Point(1, 1)), Point(3, -2));
}

TEST(TransformTest, ScalingAboutOrigin) {
  const auto t = AffineTransform::Scaling(2, 3);
  ExpectPointNear(t.Apply(Point(1, 1)), Point(2, 3));
  EXPECT_DOUBLE_EQ(t.Determinant(), 6.0);
}

TEST(TransformTest, RotationQuarterTurn) {
  const auto t = AffineTransform::Rotation(M_PI / 2);
  ExpectPointNear(t.Apply(Point(1, 0)), Point(0, 1));
  ExpectPointNear(t.Apply(Point(0, 1)), Point(-1, 0));
}

TEST(TransformTest, RotationAboutCenterFixesCenter) {
  const Point center(5, 5);
  const auto t = AffineTransform::Rotation(1.234, center);
  ExpectPointNear(t.Apply(center), center);
}

TEST(TransformTest, ReflectionFlipsOrientation) {
  EXPECT_DOUBLE_EQ(AffineTransform::ReflectionX().Determinant(), -1.0);
}

TEST(TransformTest, CompositionOrder) {
  // Translate then scale != scale then translate.
  const auto translate = AffineTransform::Translation(1, 0);
  const auto scale = AffineTransform::Scaling(2);
  ExpectPointNear(translate.Then(scale).Apply(Point(0, 0)), Point(2, 0));
  ExpectPointNear(scale.Then(translate).Apply(Point(0, 0)), Point(1, 0));
}

TEST(TransformTest, PolygonAreaScalesByDeterminant) {
  const Geometry square = G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  const Geometry scaled = Scale(square, 3.0, Point(1, 1));
  EXPECT_NEAR(scaled.As<Polygon>().Area(), 4.0 * 9.0, 1e-9);
  // The fixed point stays put under scaling about it.
  EXPECT_EQ(geom::Locate(Point(1, 1), scaled), Location::kInterior);
}

TEST(TransformTest, RotationPreservesRelations) {
  const Geometry a = G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
  const Geometry b = G("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))");
  const std::string base = relate::Relate(a, b).ToString();
  for (double angle : {0.3, 1.1, 2.7}) {
    const Geometry ra = Rotate(a, angle, Point(7, -2));
    const Geometry rb = Rotate(b, angle, Point(7, -2));
    EXPECT_EQ(relate::Relate(ra, rb).ToString(), base) << angle;
  }
}

TEST(TransformTest, TranslateAllTypes) {
  const char* wkts[] = {
      "POINT (1 2)",
      "LINESTRING (0 0, 1 1)",
      "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0), (0.2 0.2, 0.4 0.2, 0.4 0.4, 0.2 0.4, 0.2 0.2))",
      "MULTIPOINT (0 0, 1 1)",
      "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)))",
  };
  for (const char* wkt : wkts) {
    const Geometry g = G(wkt);
    const Geometry moved = Translate(g, 10, 20);
    EXPECT_EQ(moved.type(), g.type());
    const Envelope before = g.GetEnvelope();
    const Envelope after = moved.GetEnvelope();
    EXPECT_NEAR(after.min_x(), before.min_x() + 10, 1e-12) << wkt;
    EXPECT_NEAR(after.max_y(), before.max_y() + 20, 1e-12) << wkt;
  }
}

TEST(TransformTest, RoundTripInverseComposition) {
  const auto forward = AffineTransform::Translation(3, 4)
                           .Then(AffineTransform::Rotation(0.7))
                           .Then(AffineTransform::Scaling(2));
  const auto backward = AffineTransform::Scaling(0.5)
                            .Then(AffineTransform::Rotation(-0.7))
                            .Then(AffineTransform::Translation(-3, -4));
  const Point p(1.25, -2.5);
  ExpectPointNear(backward.Apply(forward.Apply(p)), p);
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
