#include "geom/wkt.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace geom {
namespace {

Geometry MustRead(const std::string& wkt) {
  Result<Geometry> g = ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt << " -> " << g.status().ToString();
  return g.value_or(Geometry());
}

TEST(WktReadTest, Point) {
  const Geometry g = MustRead("POINT (1.5 -2)");
  ASSERT_EQ(g.type(), GeometryType::kPoint);
  EXPECT_EQ(g.As<Point>(), Point(1.5, -2));
}

TEST(WktReadTest, CaseAndWhitespaceInsensitive) {
  EXPECT_EQ(MustRead("point( 1 2 )"), MustRead("POINT (1 2)"));
  EXPECT_EQ(MustRead("  LINESTRING(0 0,1 1)  "),
            MustRead("LINESTRING (0 0, 1 1)"));
}

TEST(WktReadTest, LineString) {
  const Geometry g = MustRead("LINESTRING (0 0, 1 0, 1 1)");
  ASSERT_EQ(g.type(), GeometryType::kLineString);
  EXPECT_EQ(g.As<LineString>().NumPoints(), 3u);
}

TEST(WktReadTest, PolygonWithHole) {
  const Geometry g = MustRead(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
  ASSERT_EQ(g.type(), GeometryType::kPolygon);
  const Polygon& p = g.As<Polygon>();
  EXPECT_EQ(p.holes().size(), 1u);
  EXPECT_DOUBLE_EQ(p.Area(), 96.0);
}

TEST(WktReadTest, PolygonRingAutoCloses) {
  const Geometry g = MustRead("POLYGON ((0 0, 2 0, 2 2, 0 2))");
  EXPECT_DOUBLE_EQ(g.As<Polygon>().Area(), 4.0);
}

TEST(WktReadTest, MultiPointBothForms) {
  const Geometry a = MustRead("MULTIPOINT (1 2, 3 4)");
  const Geometry b = MustRead("MULTIPOINT ((1 2), (3 4))");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.As<MultiPoint>().NumGeometries(), 2u);
}

TEST(WktReadTest, MultiLineString) {
  const Geometry g =
      MustRead("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3, 4 4))");
  ASSERT_EQ(g.type(), GeometryType::kMultiLineString);
  EXPECT_EQ(g.As<MultiLineString>().NumGeometries(), 2u);
}

TEST(WktReadTest, MultiPolygon) {
  const Geometry g = MustRead(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
      "((5 5, 6 5, 6 6, 5 6, 5 5)))");
  ASSERT_EQ(g.type(), GeometryType::kMultiPolygon);
  EXPECT_EQ(g.As<MultiPolygon>().NumGeometries(), 2u);
  EXPECT_DOUBLE_EQ(g.As<MultiPolygon>().Area(), 2.0);
}

TEST(WktReadTest, EmptyGeometries) {
  EXPECT_TRUE(MustRead("LINESTRING EMPTY").IsEmpty());
  EXPECT_TRUE(MustRead("POLYGON EMPTY").IsEmpty());
  EXPECT_TRUE(MustRead("MULTIPOINT EMPTY").IsEmpty());
  EXPECT_TRUE(MustRead("MULTILINESTRING EMPTY").IsEmpty());
  EXPECT_TRUE(MustRead("MULTIPOLYGON EMPTY").IsEmpty());
}

TEST(WktReadTest, ScientificNotation) {
  const Geometry g = MustRead("POINT (1e3 -2.5E-2)");
  EXPECT_DOUBLE_EQ(g.As<Point>().x, 1000.0);
  EXPECT_DOUBLE_EQ(g.As<Point>().y, -0.025);
}

TEST(WktReadTest, Errors) {
  EXPECT_EQ(ReadWkt("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("CIRCLE (0 0, 1)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("POINT 1 2").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("POINT (1)").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("POINT (1 2").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("POINT (1 2) tail").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("LINESTRING (1 1)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("POLYGON ((0 0, 1 1))").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ReadWkt("GEOMETRYCOLLECTION (POINT (1 1))").status().code(),
            StatusCode::kUnsupported);
  EXPECT_EQ(ReadWkt("POINT EMPTY").status().code(), StatusCode::kUnsupported);
}

class WktRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WktRoundTripTest, WriteThenReadIsIdentity) {
  const Geometry original = MustRead(GetParam());
  const std::string written = WriteWkt(original);
  const Geometry reparsed = MustRead(written);
  EXPECT_EQ(original, reparsed) << written;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WktRoundTripTest,
    ::testing::Values(
        "POINT (1 2)", "POINT (-1.25 3.5e3)",
        "LINESTRING (0 0, 1 1, 2 0.5)",
        "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
        "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))",
        "MULTIPOINT (1 1, 2 2)",
        "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
        "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))",
        "LINESTRING EMPTY", "POLYGON EMPTY", "MULTIPOLYGON EMPTY"));

TEST(WktWriteTest, ExactFormat) {
  EXPECT_EQ(WriteWkt(Geometry(Point(1, 2))), "POINT (1 2)");
  EXPECT_EQ(WriteWkt(Geometry(LineString({{0, 0}, {1, 1}}))),
            "LINESTRING (0 0, 1 1)");
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
