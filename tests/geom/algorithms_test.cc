#include "geom/algorithms.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sfpm {
namespace geom {
namespace {

Polygon Square(double x0, double y0, double size) {
  return Polygon(LinearRing(
      {{x0, y0}, {x0 + size, y0}, {x0 + size, y0 + size}, {x0, y0 + size}}));
}

TEST(OrientationTest, BasicTurns) {
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, 1}), 1);   // Left turn (CCW).
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {1, -1}), -1);  // Right turn.
  EXPECT_EQ(Orientation({0, 0}, {1, 0}, {2, 0}), 0);    // Collinear.
}

TEST(OrientationTest, ScaleInvariant) {
  // Same configuration at widely different scales stays classified.
  for (double scale : {1e-6, 1.0, 1e6}) {
    EXPECT_EQ(Orientation({0, 0}, {scale, 0}, {scale, scale}), 1);
    EXPECT_EQ(Orientation({0, 0}, {scale, 0}, {2 * scale, 0}), 0);
  }
}

TEST(PointOnSegmentTest, EndpointsAndMidpoints) {
  EXPECT_TRUE(PointOnSegment({0, 0}, {0, 0}, {2, 2}));
  EXPECT_TRUE(PointOnSegment({2, 2}, {0, 0}, {2, 2}));
  EXPECT_TRUE(PointOnSegment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_FALSE(PointOnSegment({3, 3}, {0, 0}, {2, 2}));  // Beyond.
  EXPECT_FALSE(PointOnSegment({1, 1.5}, {0, 0}, {2, 2}));
}

TEST(IntersectSegmentsTest, ProperCrossing) {
  const auto r = IntersectSegments({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_TRUE(r.proper);
  EXPECT_DOUBLE_EQ(r.p.x, 1.0);
  EXPECT_DOUBLE_EQ(r.p.y, 1.0);
}

TEST(IntersectSegmentsTest, EndpointTouch) {
  const auto r = IntersectSegments({0, 0}, {1, 0}, {1, 0}, {2, 5});
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_FALSE(r.proper);
  EXPECT_EQ(r.p, Point(1, 0));
}

TEST(IntersectSegmentsTest, TTouchMidSegment) {
  const auto r = IntersectSegments({0, 0}, {2, 0}, {1, 0}, {1, 5});
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p, Point(1, 0));
}

TEST(IntersectSegmentsTest, CollinearOverlap) {
  const auto r = IntersectSegments({0, 0}, {3, 0}, {1, 0}, {5, 0});
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kOverlap);
  EXPECT_EQ(r.p, Point(1, 0));
  EXPECT_EQ(r.q, Point(3, 0));
}

TEST(IntersectSegmentsTest, CollinearTouchAtPoint) {
  const auto r = IntersectSegments({0, 0}, {1, 0}, {1, 0}, {2, 0});
  ASSERT_EQ(r.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(r.p, Point(1, 0));
}

TEST(IntersectSegmentsTest, CollinearDisjoint) {
  EXPECT_EQ(IntersectSegments({0, 0}, {1, 0}, {2, 0}, {3, 0}).kind,
            SegmentIntersection::Kind::kNone);
}

TEST(IntersectSegmentsTest, ParallelDisjoint) {
  EXPECT_EQ(IntersectSegments({0, 0}, {1, 0}, {0, 1}, {1, 1}).kind,
            SegmentIntersection::Kind::kNone);
}

TEST(IntersectSegmentsTest, DegenerateSegments) {
  // Point-point.
  EXPECT_EQ(IntersectSegments({1, 1}, {1, 1}, {1, 1}, {1, 1}).kind,
            SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(IntersectSegments({1, 1}, {1, 1}, {2, 2}, {2, 2}).kind,
            SegmentIntersection::Kind::kNone);
  // Point on segment.
  EXPECT_EQ(IntersectSegments({1, 0}, {1, 0}, {0, 0}, {2, 0}).kind,
            SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(IntersectSegments({1, 1}, {1, 1}, {0, 0}, {2, 0}).kind,
            SegmentIntersection::Kind::kNone);
}

TEST(LocateInRingTest, InteriorBoundaryExterior) {
  const LinearRing ring({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_EQ(LocateInRing({2, 2}, ring), Location::kInterior);
  EXPECT_EQ(LocateInRing({0, 2}, ring), Location::kBoundary);
  EXPECT_EQ(LocateInRing({4, 4}, ring), Location::kBoundary);  // Vertex.
  EXPECT_EQ(LocateInRing({5, 2}, ring), Location::kExterior);
  EXPECT_EQ(LocateInRing({-1, 0}, ring), Location::kExterior);
}

TEST(LocateInRingTest, ConcaveRing) {
  // A "U" shape: the notch is exterior.
  const LinearRing ring(
      {{0, 0}, {5, 0}, {5, 5}, {4, 5}, {4, 1}, {1, 1}, {1, 5}, {0, 5}});
  EXPECT_EQ(LocateInRing({0.5, 3}, ring), Location::kInterior);
  EXPECT_EQ(LocateInRing({4.5, 3}, ring), Location::kInterior);
  EXPECT_EQ(LocateInRing({2.5, 3}, ring), Location::kExterior);  // Notch.
  EXPECT_EQ(LocateInRing({2.5, 0.5}, ring), Location::kInterior);
}

TEST(LocateInRingTest, RayThroughVertexCountsOnce) {
  // Point horizontally aligned with a vertex of the ring.
  const LinearRing diamond({{2, 0}, {4, 2}, {2, 4}, {0, 2}});
  EXPECT_EQ(LocateInRing({2, 2}, diamond), Location::kInterior);
  EXPECT_EQ(LocateInRing({-1, 2}, diamond), Location::kExterior);
  EXPECT_EQ(LocateInRing({5, 2}, diamond), Location::kExterior);
}

TEST(LocateInPolygonTest, HoleSemantics) {
  const Polygon p(LinearRing({{0, 0}, {6, 0}, {6, 6}, {0, 6}}),
                  {LinearRing({{2, 2}, {4, 2}, {4, 4}, {2, 4}})});
  EXPECT_EQ(LocateInPolygon({1, 1}, p), Location::kInterior);
  EXPECT_EQ(LocateInPolygon({3, 3}, p), Location::kExterior);  // In hole.
  EXPECT_EQ(LocateInPolygon({2, 3}, p), Location::kBoundary);  // Hole edge.
  EXPECT_EQ(LocateInPolygon({0, 3}, p), Location::kBoundary);  // Shell edge.
  EXPECT_EQ(LocateInPolygon({7, 3}, p), Location::kExterior);
}

TEST(LocateTest, LineStringBoundaryIsEndpoints) {
  const Geometry line(LineString({{0, 0}, {2, 0}, {2, 2}}));
  EXPECT_EQ(Locate({0, 0}, line), Location::kBoundary);
  EXPECT_EQ(Locate({2, 2}, line), Location::kBoundary);
  EXPECT_EQ(Locate({1, 0}, line), Location::kInterior);
  EXPECT_EQ(Locate({2, 1}, line), Location::kInterior);
  EXPECT_EQ(Locate({3, 3}, line), Location::kExterior);
}

TEST(LocateTest, ClosedLineHasNoBoundary) {
  const Geometry ring(LineString({{0, 0}, {2, 0}, {2, 2}, {0, 0}}));
  EXPECT_EQ(Locate({0, 0}, ring), Location::kInterior);
  EXPECT_EQ(Locate({1, 0}, ring), Location::kInterior);
}

TEST(LocateTest, MultiLineStringMod2Rule) {
  // Two curves sharing an endpoint at (1,0): even count -> interior.
  const Geometry ml(MultiLineString({LineString({{0, 0}, {1, 0}}),
                                     LineString({{1, 0}, {2, 0}})}));
  EXPECT_EQ(Locate({1, 0}, ml), Location::kInterior);
  EXPECT_EQ(Locate({0, 0}, ml), Location::kBoundary);
  EXPECT_EQ(Locate({2, 0}, ml), Location::kBoundary);
}

TEST(LocateTest, PointGeometry) {
  const Geometry pt(Point(1, 1));
  EXPECT_EQ(Locate({1, 1}, pt), Location::kInterior);
  EXPECT_EQ(Locate({1, 2}, pt), Location::kExterior);
}

TEST(DistanceTest, PointSegment) {
  EXPECT_DOUBLE_EQ(DistancePointSegment({0, 1}, {0, 0}, {2, 0}), 1.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({-3, 4}, {0, 0}, {2, 0}), 5.0);
  EXPECT_DOUBLE_EQ(DistancePointSegment({1, 0}, {0, 0}, {2, 0}), 0.0);
}

TEST(DistanceTest, SegmentSegment) {
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment({0, 0}, {1, 0}, {0, 2}, {1, 2}),
                   2.0);
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment({0, 0}, {2, 2}, {0, 2}, {2, 0}),
                   0.0);  // Crossing.
}

TEST(DistanceTest, GeometryDispatch) {
  const Geometry sq(Square(0, 0, 2));
  EXPECT_DOUBLE_EQ(Distance(Geometry(Point(1, 1)), sq), 0.0);  // Inside.
  EXPECT_DOUBLE_EQ(Distance(Geometry(Point(5, 1)), sq), 3.0);
  EXPECT_DOUBLE_EQ(Distance(sq, Geometry(Square(5, 0, 1))), 3.0);
  EXPECT_DOUBLE_EQ(Distance(sq, Geometry(Square(1, 1, 5))), 0.0);  // Overlap.
  // Polygon containing a polygon: distance zero.
  EXPECT_DOUBLE_EQ(Distance(Geometry(Square(0, 0, 10)), sq), 0.0);
  // Line to polygon.
  EXPECT_DOUBLE_EQ(
      Distance(Geometry(LineString({{5, 0}, {5, 2}})), sq), 3.0);
  // Line inside polygon.
  EXPECT_DOUBLE_EQ(
      Distance(Geometry(LineString({{0.5, 0.5}, {1.5, 1.5}})), sq), 0.0);
}

TEST(DistanceTest, PolygonInHoleIsPositive) {
  const Polygon with_hole(LinearRing({{0, 0}, {10, 0}, {10, 10}, {0, 10}}),
                          {LinearRing({{2, 2}, {8, 2}, {8, 8}, {2, 8}})});
  const Geometry island(Square(4, 4, 2));
  EXPECT_DOUBLE_EQ(Distance(Geometry(with_hole), island), 2.0);
}

TEST(DistanceTest, MultiGeometryTakesMinimum) {
  const Geometry mp(MultiPoint({{10, 0}, {0, 3}}));
  EXPECT_DOUBLE_EQ(Distance(mp, Geometry(Point(0, 0))), 3.0);
}

TEST(InteriorPointTest, ConvexAndConcave) {
  const Polygon sq = Square(0, 0, 4);
  const Point ip = InteriorPoint(sq);
  EXPECT_EQ(LocateInPolygon(ip, sq), Location::kInterior);

  const Polygon u(LinearRing(
      {{0, 0}, {5, 0}, {5, 5}, {4, 5}, {4, 1}, {1, 1}, {1, 5}, {0, 5}}));
  EXPECT_EQ(LocateInPolygon(InteriorPoint(u), u), Location::kInterior);
}

TEST(InteriorPointTest, WithHoleCoveringCenter) {
  // The hole swallows the envelope centre; the interior point must dodge it.
  const Polygon p(LinearRing({{0, 0}, {10, 0}, {10, 10}, {0, 10}}),
                  {LinearRing({{3, 3}, {7, 3}, {7, 7}, {3, 7}})});
  EXPECT_EQ(LocateInPolygon(InteriorPoint(p), p), Location::kInterior);
}

TEST(InteriorPointTest, RandomBlobsProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Point> ring;
    const int n = 5 + static_cast<int>(rng.NextUint64(8));
    for (int i = 0; i < n; ++i) {
      const double angle = 2 * M_PI * i / n;
      const double radius = rng.NextDouble(0.5, 2.0);
      ring.emplace_back(radius * std::cos(angle), radius * std::sin(angle));
    }
    const Polygon blob((LinearRing(ring)));
    EXPECT_EQ(LocateInPolygon(InteriorPoint(blob), blob), Location::kInterior)
        << "trial " << trial;
  }
}

TEST(CentroidTest, KnownShapes) {
  const Point c = Centroid(Geometry(Square(0, 0, 2)));
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.0);

  const Point lc = Centroid(Geometry(LineString({{0, 0}, {2, 0}})));
  EXPECT_DOUBLE_EQ(lc.x, 1.0);
  EXPECT_DOUBLE_EQ(lc.y, 0.0);

  const Point mc = Centroid(Geometry(MultiPoint({{0, 0}, {2, 0}, {1, 3}})));
  EXPECT_DOUBLE_EQ(mc.x, 1.0);
  EXPECT_DOUBLE_EQ(mc.y, 1.0);
}

TEST(CentroidTest, HoleShiftsCentroid) {
  // Square with an off-centre hole: centroid moves away from the hole.
  const Polygon p(LinearRing({{0, 0}, {4, 0}, {4, 4}, {0, 4}}),
                  {LinearRing({{2.5, 1.5}, {3.5, 1.5}, {3.5, 2.5}, {2.5, 2.5}})});
  const Point c = Centroid(Geometry(p));
  EXPECT_LT(c.x, 2.0);
  EXPECT_NEAR(c.y, 2.0, 0.05);
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  const LinearRing hull = ConvexHull(
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {3, 1}});
  EXPECT_DOUBLE_EQ(hull.Area(), 16.0);
  EXPECT_GT(hull.SignedArea(), 0.0);  // CCW.
  ASSERT_EQ(hull.NumPoints(), 5u);   // 4 corners + closure.
}

TEST(ConvexHullTest, CollinearInput) {
  const LinearRing hull = ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_DOUBLE_EQ(hull.Area(), 0.0);
}

TEST(ConvexHullTest, RandomPointsAllInsideHull) {
  Rng rng(123);
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) {
    pts.emplace_back(rng.NextDouble(-5, 5), rng.NextDouble(-5, 5));
  }
  const LinearRing hull = ConvexHull(pts);
  const Polygon hull_poly(hull);
  for (const Point& p : pts) {
    EXPECT_NE(LocateInPolygon(p, hull_poly), Location::kExterior);
  }
}

TEST(SimplifyTest, DropsNearCollinearVertices) {
  const LineString line({{0, 0}, {1, 0.01}, {2, 0}, {3, 0.01}, {4, 0}});
  const LineString simple = Simplify(line, 0.1);
  EXPECT_EQ(simple.NumPoints(), 2u);
  EXPECT_EQ(simple.point(0), Point(0, 0));
  EXPECT_EQ(simple.point(1), Point(4, 0));
}

TEST(SimplifyTest, KeepsSignificantVertices) {
  const LineString line({{0, 0}, {2, 3}, {4, 0}});
  const LineString simple = Simplify(line, 0.5);
  EXPECT_EQ(simple.NumPoints(), 3u);
}

TEST(SimplifyTest, ToleranceZeroKeepsEverythingNonCollinear) {
  const LineString line({{0, 0}, {1, 1}, {2, 0}, {3, 1}});
  EXPECT_EQ(Simplify(line, 0.0).NumPoints(), 4u);
}

TEST(SplitPointsTest, OrderedInteriorCuts) {
  const std::vector<std::pair<Point, Point>> cutters = {
      {{3, -1}, {3, 1}}, {{1, -1}, {1, 1}}, {{0, -1}, {0, 1}}};  // Last at endpoint.
  const auto cuts = SplitPointsOnSegment({0, 0}, {4, 0}, cutters);
  ASSERT_EQ(cuts.size(), 2u);  // Endpoint cut excluded.
  EXPECT_EQ(cuts[0], Point(1, 0));
  EXPECT_EQ(cuts[1], Point(3, 0));
}

TEST(SplitPointsTest, OverlapContributesBothEnds) {
  const std::vector<std::pair<Point, Point>> cutters = {{{1, 0}, {2, 0}}};
  const auto cuts = SplitPointsOnSegment({0, 0}, {4, 0}, cutters);
  ASSERT_EQ(cuts.size(), 2u);
  EXPECT_EQ(cuts[0], Point(1, 0));
  EXPECT_EQ(cuts[1], Point(2, 0));
}

TEST(BoundarySegmentsTest, CountsPerType) {
  EXPECT_EQ(BoundarySegments(Geometry(Point(0, 0))).size(), 0u);
  EXPECT_EQ(
      BoundarySegments(Geometry(LineString({{0, 0}, {1, 0}, {2, 0}}))).size(),
      2u);
  const Polygon with_hole(LinearRing({{0, 0}, {4, 0}, {4, 4}, {0, 4}}),
                          {LinearRing({{1, 1}, {2, 1}, {2, 2}, {1, 2}})});
  EXPECT_EQ(BoundarySegments(Geometry(with_hole)).size(), 8u);
}

TEST(AllVerticesTest, CollectsFromEveryPart) {
  const MultiPolygon mp({Square(0, 0, 1), Square(5, 5, 1)});
  EXPECT_EQ(AllVertices(Geometry(mp)).size(), 10u);  // 5 ring vertices each.
  EXPECT_EQ(AllVertices(Geometry(MultiPoint({{0, 0}, {1, 1}}))).size(), 2u);
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
