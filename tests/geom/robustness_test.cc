// Regression tests for the tolerance-consistency bugs surfaced by the
// differential fuzzer (tools/sfpm_fuzz; repros in tests/fuzz/corpus/).
// Each case here is a minimized instance of a fixed bug — see
// docs/TESTING.md for the corpus workflow.

#include <gtest/gtest.h>

#include "geom/algorithms.h"
#include "util/random.h"

namespace sfpm {
namespace geom {
namespace {

// PointOnSegment's collinearity test is tolerance-based, so its range
// clamp must extend past the endpoints by the matching slack — and only
// along the dominant axis, where the comparison is well-conditioned.

TEST(PointOnSegmentRobustnessTest, NearHorizontalEndpointSlack) {
  const Point a(0, 0), b(10, 1e-13);
  // 1e-12 beyond b along the segment: tolerance-collinear, and within
  // the dominant-axis endpoint slack (kCollinearityRelEps * extent).
  EXPECT_TRUE(PointOnSegment({10 + 1e-12, 1e-13}, a, b));
  // Far beyond the slack: rejected even though still collinear.
  EXPECT_FALSE(PointOnSegment({10 + 1e-9, 1e-13}, a, b));
  EXPECT_FALSE(PointOnSegment({-1e-9, 0}, a, b));
}

TEST(PointOnSegmentRobustnessTest, NearVerticalEndpointSlack) {
  const Point a(0, 0), b(1e-13, 10);
  EXPECT_TRUE(PointOnSegment({1e-13, 10 + 1e-12}, a, b));
  EXPECT_FALSE(PointOnSegment({1e-13, 10 + 1e-9}, a, b));
  EXPECT_FALSE(PointOnSegment({0, -1e-9}, a, b));
}

TEST(PointOnSegmentRobustnessTest, NonDominantAxisNotClamped) {
  // Fuzzer find (corpus: segment-14964411507835406432): (0, 4) is
  // tolerance-collinear with this near-vertical segment, but its x
  // coordinate sits outside the segment's exact x-range. The dominant
  // axis is y, where the point is well inside — an x clamp would reject
  // a point the orientation test accepts, and the relate engine would
  // see the vertex on one path and miss it on the other.
  const Point a(-3, -1), b(-1.228008031775893e-16, 4.000000000000001);
  EXPECT_TRUE(PointOnSegment({0, 4}, a, b));
}

TEST(PointOnSegmentRobustnessTest, DegenerateSegmentIsPointEquality) {
  const Point a(2, 3);
  EXPECT_TRUE(PointOnSegment({2, 3}, a, a));
  EXPECT_FALSE(PointOnSegment({2, 3 + 1e-15}, a, a));
}

// IntersectSegments must be symmetric under operand swap and must never
// report a point outside either operand's envelope (the proper-crossing
// parameter is clamped to [0,1] and the point box-clamped into the
// envelope intersection).

TEST(IntersectSegmentsRobustnessTest, SwapSymmetricKind) {
  // Fuzzer find (corpus: segment-16890630463542173057): three nearly
  // coincident collinear points at 1.87e-10 elevation; one operand order
  // reported an overlap, the swapped order a single point.
  const Point a1(3, 0), a2(53.11840504223, 1.87e-10);
  const Point b1(53.118405042275, 1.87e-10), b2(53.118405042227, 1.87e-10);
  const auto ab = IntersectSegments(a1, a2, b1, b2);
  const auto ba = IntersectSegments(b1, b2, a1, a2);
  EXPECT_EQ(ab.kind, ba.kind);
  EXPECT_EQ(ab.p, ba.p);
}

TEST(IntersectSegmentsRobustnessTest, SwapSymmetricProperPoint) {
  // Fuzzer find (corpus: segment-5332302695126464516): near-parallel
  // proper crossing whose solved parameters are ill-conditioned; the two
  // operand orders returned points ~9e-5 apart.
  const Point a1(-3, -4), a2(2, -1);
  const Point b1(1.9999999999915432, -1.0000000000131977);
  const Point b2(-3.0000000000041793, -3.999999999990228);
  const auto ab = IntersectSegments(a1, a2, b1, b2);
  const auto ba = IntersectSegments(b1, b2, a1, a2);
  ASSERT_EQ(ab.kind, SegmentIntersection::Kind::kPoint);
  EXPECT_EQ(ab.p, ba.p);

  // The returned point lies inside both envelopes exactly — rounding in
  // the solved parameter cannot push it outside either segment's box.
  EXPECT_TRUE(Envelope(a1, a2).Contains(ab.p));
  EXPECT_TRUE(Envelope(b1, b2).Contains(ab.p));
}

TEST(IntersectSegmentsRobustnessTest, ProperCrossingsStayInBothEnvelopes) {
  // Deterministic sweep of near-parallel proper crossings — exactly the
  // configurations whose solved parameters round past [0,1]. Every
  // proper point must sit inside both envelopes, and operand order must
  // not change it.
  Rng rng(2007);
  int proper_seen = 0;
  for (int i = 0; i < 2000; ++i) {
    const Point a1(rng.NextDouble(-5, 5), rng.NextDouble(-5, 5));
    const Point a2(rng.NextDouble(-5, 5), rng.NextDouble(-5, 5));
    // B is A nudged by a tiny rotation-free perturbation, so the two
    // segments are almost parallel and the denominator is ill-
    // conditioned.
    const double e = rng.NextDouble(-1e-11, 1e-11);
    const Point b1(a1.x + e, a1.y - e);
    const Point b2(a2.x - e, a2.y + e);
    const auto ab = IntersectSegments(a1, a2, b1, b2);
    if (ab.kind != SegmentIntersection::Kind::kPoint || !ab.proper) continue;
    ++proper_seen;
    EXPECT_TRUE(Envelope(a1, a2).Contains(ab.p)) << "iteration " << i;
    EXPECT_TRUE(Envelope(b1, b2).Contains(ab.p)) << "iteration " << i;
    const auto ba = IntersectSegments(b1, b2, a1, a2);
    EXPECT_EQ(ab.p, ba.p) << "iteration " << i;
  }
  EXPECT_GT(proper_seen, 100);  // The sweep actually exercises the branch.
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
