// Table-driven tests for geom::Normalized — the degenerate-geometry
// audit: every representational degeneracy the relate engine mishandles
// (repeated consecutive vertices, zero-area rings, single-point
// linestrings) must normalize to a clean geometry or disappear.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "geom/validity.h"
#include "geom/wkt.h"

namespace sfpm {
namespace geom {
namespace {

Geometry FromWkt(const std::string& wkt) {
  auto r = ReadWkt(wkt);
  EXPECT_TRUE(r.ok()) << wkt << ": " << r.status().message();
  return std::move(r).value();
}

struct NormalizeCase {
  const char* name;
  const char* input;
  const char* expected;  // WKT of the normalized geometry.
  bool valid_after;      // Validate(Normalized(input)).ok()
};

class NormalizedTableTest : public ::testing::TestWithParam<NormalizeCase> {};

TEST_P(NormalizedTableTest, NormalizesAsExpected) {
  const NormalizeCase& c = GetParam();
  const Geometry in = FromWkt(c.input);
  const Geometry out = Normalized(in);
  EXPECT_EQ(out, FromWkt(c.expected)) << c.name;
  EXPECT_EQ(Validate(out).ok(), c.valid_after) << c.name;
  // Normalization is idempotent.
  EXPECT_EQ(Normalized(out), out) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    DegenerateClasses, NormalizedTableTest,
    ::testing::Values(
        NormalizeCase{"clean_point", "POINT (1 2)", "POINT (1 2)", true},
        NormalizeCase{"clean_line", "LINESTRING (0 0, 1 1)",
                      "LINESTRING (0 0, 1 1)", true},
        NormalizeCase{"repeated_vertices_line",
                      "LINESTRING (0 0, 0 0, 1 1, 1 1, 2 0)",
                      "LINESTRING (0 0, 1 1, 2 0)", true},
        NormalizeCase{"single_point_line_becomes_point",
                      "LINESTRING (5 5, 5 5)", "POINT (5 5)", true},
        NormalizeCase{"clean_polygon", "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                      "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", true},
        NormalizeCase{"repeated_vertices_ring",
                      "POLYGON ((0 0, 0 0, 4 0, 4 4, 4 4, 0 4, 0 0))",
                      "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))", true},
        NormalizeCase{"zero_area_polygon_dropped",
                      "POLYGON ((0 0, 2 2, 4 4, 0 0))", "POLYGON EMPTY",
                      true},
        NormalizeCase{"two_distinct_vertex_ring_dropped",
                      "POLYGON ((0 0, 1 0, 0 0, 1 0, 0 0))", "POLYGON EMPTY",
                      true},
        NormalizeCase{"degenerate_hole_dropped",
                      "POLYGON ((0 0, 9 0, 9 9, 0 9, 0 0), "
                      "(2 2, 3 3, 4 4, 2 2))",
                      "POLYGON ((0 0, 9 0, 9 9, 0 9, 0 0))", true},
        NormalizeCase{"multipoint_duplicates_dropped",
                      "MULTIPOINT (1 1, 2 2, 1 1)", "MULTIPOINT (1 1, 2 2)",
                      true},
        NormalizeCase{"multiline_degenerate_member_dropped",
                      "MULTILINESTRING ((0 0, 1 1), (5 5, 5 5))",
                      "MULTILINESTRING ((0 0, 1 1))", true},
        NormalizeCase{"multipolygon_flat_member_dropped",
                      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0)), "
                      "((7 7, 8 8, 9 9, 7 7)))",
                      "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0)))", true}),
    [](const ::testing::TestParamInfo<NormalizeCase>& info) {
      return info.param.name;
    });

TEST(NormalizedTest, RawDegeneratesFailValidateBeforeNormalization) {
  // The cases Normalized repairs are exactly those Validate rejects raw:
  // loaders normalize-then-validate.
  for (const char* wkt :
       {"LINESTRING (0 0, 0 0, 1 1)", "POLYGON ((0 0, 2 2, 4 4, 0 0))",
        "POLYGON ((0 0, 0 0, 4 0, 4 4, 0 4, 0 0))"}) {
    EXPECT_FALSE(Validate(FromWkt(wkt)).ok()) << wkt;
    EXPECT_TRUE(Validate(Normalized(FromWkt(wkt))).ok()) << wkt;
  }
}

}  // namespace
}  // namespace geom
}  // namespace sfpm
