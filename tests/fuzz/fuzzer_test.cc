// Tests of the fuzz harness itself: determinism, the repro round-trip,
// the shrinking reducer's contract, and replay of the committed corpus.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fuzz/fuzzer.h"
#include "fuzz/oracles.h"
#include "fuzz/repro.h"
#include "fuzz/shrink.h"
#include "geom/wkt.h"

namespace sfpm {
namespace fuzz {
namespace {

std::string CorpusDir() {
  // tests/fuzz/fuzzer_test.cc -> tests/fuzz/corpus, independent of the
  // build tree's working directory.
  return (std::filesystem::path(__FILE__).parent_path() / "corpus").string();
}

TEST(FuzzerTest, SameSeedSameReport) {
  FuzzOptions options;
  options.seed = 42;
  options.iterations = 50;
  options.oracle_names = {"segment", "rcc8_jepd"};
  auto r1 = RunFuzzer(options);
  auto r2 = RunFuzzer(options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().cases_checked, r2.value().cases_checked);
  ASSERT_EQ(r1.value().failures.size(), r2.value().failures.size());
  for (size_t i = 0; i < r1.value().failures.size(); ++i) {
    EXPECT_EQ(r1.value().failures[i].case_seed,
              r2.value().failures[i].case_seed);
    EXPECT_EQ(r1.value().failures[i].violation.message(),
              r2.value().failures[i].violation.message());
  }
}

TEST(FuzzerTest, UnknownOracleIsRejected) {
  FuzzOptions options;
  options.oracle_names = {"no_such_family"};
  EXPECT_FALSE(RunFuzzer(options).ok());
}

TEST(FuzzerTest, CommittedCorpusReplaysClean) {
  auto report = ReplayCorpus(CorpusDir());
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GE(report.value().cases_checked, 7u);  // Every fixed bug stays fixed.
  EXPECT_TRUE(report.value().ok()) << report.value().Summary();
}

TEST(FuzzerTest, ReplayMissingDirectoryIsNotFound) {
  auto report = ReplayCorpus("/nonexistent/sfpm/corpus");
  EXPECT_FALSE(report.ok());
}

TEST(ReproTest, RoundTripsGeometryCase) {
  FuzzCase c;
  c.oracle = "segment";
  c.seed = 123;
  c.geoms.push_back(geom::ReadWkt("POINT (1 2)").value());
  c.geoms.push_back(geom::ReadWkt("LINESTRING (0 0, 3.5 -1.25)").value());
  c.params["note"] = "roundtrip";
  auto parsed = ParseRepro(WriteRepro(c, "unit test"));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().oracle, c.oracle);
  EXPECT_EQ(parsed.value().seed, c.seed);
  ASSERT_EQ(parsed.value().geoms.size(), 2u);
  EXPECT_EQ(parsed.value().geoms[0], c.geoms[0]);
  EXPECT_EQ(parsed.value().geoms[1], c.geoms[1]);
  EXPECT_EQ(parsed.value().params.at("note"), "roundtrip");
}

TEST(ShrinkTest, MinimizedCaseStillFails) {
  // An oracle violation the reducer can gnaw on: the segment oracle's
  // swap-symmetry invariant held on 4-point payloads; feed it a case
  // that fails and confirm the shrunk case fails identically.
  const Oracle* segment = FindOracle("segment");
  ASSERT_NE(segment, nullptr);

  FuzzCase c;
  c.oracle = "segment";
  c.seed = 1;
  // The minimized historical repro for the swap-point bug (corpus:
  // segment-5332302695126464516) with two decoy geometries appended; on
  // a fixed build Check passes, so first verify the oracle is clean,
  // then check Shrink's no-failure precondition is respected by only
  // exercising it when the case actually fails.
  c.geoms.push_back(geom::ReadWkt("POINT (-3 -4)").value());
  c.geoms.push_back(geom::ReadWkt("POINT (2 -1)").value());
  c.geoms.push_back(geom::ReadWkt("POINT (1.9999999999915432 "
                                  "-1.0000000000131977)")
                        .value());
  c.geoms.push_back(geom::ReadWkt("POINT (-3.0000000000041793 "
                                  "-3.999999999990228)")
                        .value());
  const Status now = segment->Check(c);
  EXPECT_TRUE(now.ok()) << "fixed bug regressed: " << now.message();

  if (!now.ok()) {
    const FuzzCase reduced = Shrink(*segment, c, 500);
    EXPECT_FALSE(segment->Check(reduced).ok());
    EXPECT_LE(reduced.geoms.size(), c.geoms.size());
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace sfpm
