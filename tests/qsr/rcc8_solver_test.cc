#include <gtest/gtest.h>

#include "geom/wkt.h"
#include "qsr/rcc8.h"

namespace sfpm {
namespace qsr {
namespace {

TEST(Rcc8SolverTest, AtomicConsistentNetwork) {
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(0, 2, Rcc8Set(Rcc8::kNTPP)).ok());
  EXPECT_TRUE(net.IsAtomic() || true);  // Diagonal EQ + atomic off-diagonal.
  EXPECT_TRUE(IsSatisfiable(net));
}

TEST(Rcc8SolverTest, FindsScenarioForLooseNetwork) {
  Rcc8Network net(4);
  ASSERT_TRUE(
      net.Constrain(0, 1, Rcc8Set(Rcc8::kTPP) | Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(
      net.Constrain(1, 2, Rcc8Set(Rcc8::kPO) | Rcc8Set(Rcc8::kEC)).ok());
  ASSERT_TRUE(net.Constrain(2, 3, Rcc8Set::Universal()).ok());

  const auto scenario = SolveScenario(net);
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(scenario.value().IsAtomic());
  // The scenario must refine the input constraints.
  EXPECT_TRUE((scenario.value().At(0, 1) & net.At(0, 1)) ==
              scenario.value().At(0, 1));
  EXPECT_TRUE((scenario.value().At(1, 2) & net.At(1, 2)) ==
              scenario.value().At(1, 2));
}

TEST(Rcc8SolverTest, DetectsUnsatisfiable) {
  // x inside y, y inside z, x disconnected from z.
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(0, 2, Rcc8Set(Rcc8::kDC)).ok());
  EXPECT_FALSE(IsSatisfiable(net));
  EXPECT_EQ(SolveScenario(net).status().code(), StatusCode::kNotFound);
}

TEST(Rcc8SolverTest, SearchBeyondPathConsistency) {
  // A network that path consistency alone leaves loose: the solver must
  // still commit every edge to one base relation.
  Rcc8Network net(5);
  const Rcc8Set part = Rcc8Set(Rcc8::kTPP) | Rcc8Set(Rcc8::kNTPP);
  const Rcc8Set apart = Rcc8Set(Rcc8::kDC) | Rcc8Set(Rcc8::kEC);
  ASSERT_TRUE(net.Constrain(0, 1, part).ok());
  ASSERT_TRUE(net.Constrain(1, 2, part).ok());
  ASSERT_TRUE(net.Constrain(3, 4, apart).ok());
  ASSERT_TRUE(net.Constrain(0, 3, apart).ok());

  const auto scenario = SolveScenario(net);
  ASSERT_TRUE(scenario.ok());
  const Rcc8Network& s = scenario.value();
  EXPECT_TRUE(s.IsAtomic());
  // Transitivity of proper parthood must hold in the committed scenario.
  if (s.At(0, 1).Single() == Rcc8::kNTPP &&
      s.At(1, 2).Single() == Rcc8::kNTPP) {
    EXPECT_EQ(s.At(0, 2).Single(), Rcc8::kNTPP);
  }
}

TEST(Rcc8SolverTest, UniversalNetworkIsSatisfiable) {
  Rcc8Network net(4);
  EXPECT_TRUE(IsSatisfiable(net));
  const auto scenario = SolveScenario(net);
  ASSERT_TRUE(scenario.ok());
  EXPECT_TRUE(scenario.value().IsAtomic());
}

TEST(Rcc8SolverTest, ScenarioRespectsConverses) {
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kTPP)).ok());
  const auto scenario = SolveScenario(net);
  ASSERT_TRUE(scenario.ok());
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(scenario.value().At(j, i),
                Rcc8Converse(scenario.value().At(i, j)));
    }
  }
}

TEST(Rcc8SolverTest, LargerRandomishNetworkStaysFast) {
  // A chain of containments with some disjointness constraints: solvable
  // and must complete quickly (the test harness timeout is the guard).
  const size_t n = 12;
  Rcc8Network net(n);
  for (size_t i = 0; i + 1 < n / 2; ++i) {
    ASSERT_TRUE(
        net.Constrain(i, i + 1,
                      Rcc8Set(Rcc8::kTPP) | Rcc8Set(Rcc8::kNTPP)).ok());
  }
  for (size_t i = n / 2; i + 1 < n; ++i) {
    ASSERT_TRUE(
        net.Constrain(i, i + 1, Rcc8Set(Rcc8::kDC) | Rcc8Set(Rcc8::kEC))
            .ok());
  }
  ASSERT_TRUE(net.Constrain(0, n - 1, Rcc8Set(Rcc8::kDC)).ok());
  EXPECT_TRUE(IsSatisfiable(net));
}


TEST(Rcc8SolverTest, GeometryDerivedNetworkIsConsistent) {
  // Ground every pairwise relation of a nested-region configuration with
  // the DE-9IM engine, feed the atomic network to the solver: geometric
  // truth must always be algebraically consistent.
  auto wkt = [](const char* text) {
    auto g = geom::ReadWkt(text);
    EXPECT_TRUE(g.ok());
    return g.value_or(geom::Geometry());
  };
  const geom::Geometry regions[] = {
      wkt("POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))"),
      wkt("POLYGON ((10 10, 60 10, 60 60, 10 60, 10 10))"),
      wkt("POLYGON ((20 20, 40 20, 40 40, 20 40, 20 20))"),
      wkt("POLYGON ((60 10, 90 10, 90 40, 60 40, 60 10))"),  // Touches [1].
      wkt("POLYGON ((200 200, 210 200, 210 210, 200 210, 200 200))"),
  };
  const size_t n = std::size(regions);
  Rcc8Network net(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const auto rel = Rcc8Relate(regions[i], regions[j]);
      ASSERT_TRUE(rel.ok()) << i << "," << j;
      ASSERT_TRUE(net.Constrain(i, j, Rcc8Set(rel.value())).ok());
    }
  }
  EXPECT_TRUE(net.Propagate());
  EXPECT_TRUE(IsSatisfiable(net));

  // Sanity on a few ground relations.
  EXPECT_EQ(net.At(1, 0), Rcc8Set(Rcc8::kNTPP));
  EXPECT_EQ(net.At(2, 1), Rcc8Set(Rcc8::kNTPP));
  EXPECT_EQ(net.At(3, 1), Rcc8Set(Rcc8::kEC));
  EXPECT_EQ(net.At(4, 0), Rcc8Set(Rcc8::kDC));
}

}  // namespace
}  // namespace qsr
}  // namespace sfpm
