#include "qsr/topological.h"

#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace sfpm {
namespace qsr {
namespace {

using geom::Geometry;

Geometry G(const char* wkt) {
  auto g = geom::ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt;
  return g.value_or(Geometry());
}

TEST(TopologicalTest, NamesMatchPaperSpelling) {
  EXPECT_STREQ(TopologicalRelationName(TopologicalRelation::kContains),
               "contains");
  EXPECT_STREQ(TopologicalRelationName(TopologicalRelation::kCoveredBy),
               "coveredBy");
  EXPECT_STREQ(TopologicalRelationName(TopologicalRelation::kDisjoint),
               "disjoint");
}

TEST(TopologicalTest, ConverseMapping) {
  EXPECT_EQ(Converse(TopologicalRelation::kContains),
            TopologicalRelation::kWithin);
  EXPECT_EQ(Converse(TopologicalRelation::kWithin),
            TopologicalRelation::kContains);
  EXPECT_EQ(Converse(TopologicalRelation::kCovers),
            TopologicalRelation::kCoveredBy);
  EXPECT_EQ(Converse(TopologicalRelation::kTouches),
            TopologicalRelation::kTouches);
  EXPECT_EQ(Converse(TopologicalRelation::kEquals),
            TopologicalRelation::kEquals);
}

struct ClassifyCase {
  const char* a;
  const char* b;
  TopologicalRelation expected;
};

class ClassifyTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyTest, CanonicalRelation) {
  const auto& c = GetParam();
  EXPECT_EQ(ClassifyTopological(G(c.a), G(c.b)), c.expected)
      << c.a << " vs " << c.b;
}

TEST_P(ClassifyTest, SwappedGivesConverse) {
  const auto& c = GetParam();
  EXPECT_EQ(ClassifyTopological(G(c.b), G(c.a)), Converse(c.expected));
}

INSTANTIATE_TEST_SUITE_P(
    EgenhoferRegions, ClassifyTest,
    ::testing::Values(
        // The paper's nine relations, region-region where applicable.
        ClassifyCase{"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
                     "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))",
                     TopologicalRelation::kDisjoint},
        ClassifyCase{"POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
                     "POLYGON ((1 0, 2 0, 2 1, 1 1, 1 0))",
                     TopologicalRelation::kTouches},
        ClassifyCase{"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                     "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))",
                     TopologicalRelation::kOverlaps},
        ClassifyCase{"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                     "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                     TopologicalRelation::kEquals},
        // Strict containment, no boundary contact: contains / within.
        ClassifyCase{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                     "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))",
                     TopologicalRelation::kContains},
        ClassifyCase{"POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))",
                     "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                     TopologicalRelation::kWithin},
        // Containment with boundary contact: covers / coveredBy
        // (Egenhofer semantics, as in the paper's Nonoai example).
        ClassifyCase{"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                     "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                     TopologicalRelation::kCovers},
        ClassifyCase{"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                     "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
                     TopologicalRelation::kCoveredBy}));

INSTANTIATE_TEST_SUITE_P(
    MixedDimensions, ClassifyTest,
    ::testing::Values(
        ClassifyCase{"LINESTRING (-1 1, 4 1)",
                     "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                     TopologicalRelation::kCrosses},
        ClassifyCase{"LINESTRING (1 1, 2 2)",
                     "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                     TopologicalRelation::kWithin},
        // A line along the boundary: interiors never meet, so this is a
        // touch (see ClassifyMatrix), not coveredBy.
        ClassifyCase{"LINESTRING (0 0, 3 0)",
                     "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                     TopologicalRelation::kTouches},
        ClassifyCase{"POINT (1 1)", "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                     TopologicalRelation::kWithin},
        ClassifyCase{"POINT (0 1)", "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                     TopologicalRelation::kTouches},
        ClassifyCase{"LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)",
                     TopologicalRelation::kCrosses},
        ClassifyCase{"LINESTRING (0 0, 2 0)", "LINESTRING (1 0, 3 0)",
                     TopologicalRelation::kOverlaps},
        ClassifyCase{"POINT (1 1)", "POINT (1 1)",
                     TopologicalRelation::kEquals}));

TEST(ClassifyMatrixTest, EveryMatrixGetsExactlyOneRelation) {
  // The classifier must be total: feed it every matrix produced by the
  // paper's running-example geometry configurations.
  const char* matrices[] = {"212101212", "2FF1FF212", "212FF1FF2",
                            "2FFF1FFF2", "FF2F11212", "FF2F01212",
                            "FF2FF1212", "2FF11F212"};
  for (const char* m : matrices) {
    const TopologicalRelation rel =
        ClassifyMatrix(relate::IntersectionMatrix::FromString(m), 2, 2);
    EXPECT_NE(TopologicalRelationName(rel), std::string("unknown"));
  }
}

}  // namespace
}  // namespace qsr
}  // namespace sfpm
