#include "qsr/distance.h"

#include <gtest/gtest.h>

#include "geom/geometry.h"

namespace sfpm {
namespace qsr {
namespace {

using geom::Geometry;
using geom::Point;

TEST(DistanceQuantizerTest, DefaultBandsMatchPaperExample) {
  const DistanceQuantizer q = DistanceQuantizer::Default();
  EXPECT_EQ(q.BandName(0.0), "veryClose");
  EXPECT_EQ(q.BandName(499.9), "veryClose");
  EXPECT_EQ(q.BandName(500.0), "close");
  EXPECT_EQ(q.BandName(1999.9), "close");
  EXPECT_EQ(q.BandName(2000.0), "far");
  EXPECT_EQ(q.BandName(1e9), "far");
}

TEST(DistanceQuantizerTest, BandIndexHalfOpen) {
  const DistanceQuantizer q = DistanceQuantizer::Default();
  EXPECT_EQ(q.BandIndex(0.0), 0u);
  EXPECT_EQ(q.BandIndex(500.0), 1u);
  EXPECT_EQ(q.BandIndex(2000.0), 2u);
}

TEST(DistanceQuantizerTest, CustomBands) {
  auto q = DistanceQuantizer::Create({{"near", 10.0}, {"mid", 100.0}},
                                     "distant");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().bands().size(), 3u);
  EXPECT_EQ(q.value().BandName(5), "near");
  EXPECT_EQ(q.value().BandName(50), "mid");
  EXPECT_EQ(q.value().BandName(5000), "distant");
}

TEST(DistanceQuantizerTest, RejectsNonAscendingBounds) {
  EXPECT_FALSE(
      DistanceQuantizer::Create({{"a", 100.0}, {"b", 10.0}}, "c").ok());
  EXPECT_FALSE(DistanceQuantizer::Create({{"a", 0.0}}, "b").ok());
  EXPECT_FALSE(DistanceQuantizer::Create({{"a", -5.0}}, "b").ok());
}

TEST(DistanceQuantizerTest, RejectsDuplicateOrEmptyNames) {
  EXPECT_FALSE(
      DistanceQuantizer::Create({{"a", 10.0}, {"a", 20.0}}, "b").ok());
  EXPECT_FALSE(DistanceQuantizer::Create({{"a", 10.0}}, "a").ok());
  EXPECT_FALSE(DistanceQuantizer::Create({{"", 10.0}}, "b").ok());
  EXPECT_FALSE(DistanceQuantizer::Create({{"a", 10.0}}, "").ok());
}

TEST(DistanceQuantizerTest, NoFiniteBandsStillWorks) {
  auto q = DistanceQuantizer::Create({}, "anywhere");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().BandName(0.0), "anywhere");
  EXPECT_EQ(q.value().BandName(1e12), "anywhere");
}

TEST(DistanceQuantizerTest, ClassifyGeometries) {
  const DistanceQuantizer q = DistanceQuantizer::Default();
  EXPECT_EQ(q.Classify(Geometry(Point(0, 0)), Geometry(Point(100, 0))),
            "veryClose");
  EXPECT_EQ(q.Classify(Geometry(Point(0, 0)), Geometry(Point(1000, 0))),
            "close");
  EXPECT_EQ(q.Classify(Geometry(Point(0, 0)), Geometry(Point(9000, 0))),
            "far");
}

}  // namespace
}  // namespace qsr
}  // namespace sfpm
