#include "qsr/direction.h"

#include <gtest/gtest.h>

#include "geom/geometry.h"

namespace sfpm {
namespace qsr {
namespace {

using geom::Point;

TEST(DirectionTest, CompassPoints) {
  const Point origin(0, 0);
  EXPECT_EQ(DirectionBetween(origin, Point(0, 10)), CardinalDirection::kNorth);
  EXPECT_EQ(DirectionBetween(origin, Point(10, 10)),
            CardinalDirection::kNorthEast);
  EXPECT_EQ(DirectionBetween(origin, Point(10, 0)), CardinalDirection::kEast);
  EXPECT_EQ(DirectionBetween(origin, Point(10, -10)),
            CardinalDirection::kSouthEast);
  EXPECT_EQ(DirectionBetween(origin, Point(0, -10)),
            CardinalDirection::kSouth);
  EXPECT_EQ(DirectionBetween(origin, Point(-10, -10)),
            CardinalDirection::kSouthWest);
  EXPECT_EQ(DirectionBetween(origin, Point(-10, 0)), CardinalDirection::kWest);
  EXPECT_EQ(DirectionBetween(origin, Point(-10, 10)),
            CardinalDirection::kNorthWest);
}

TEST(DirectionTest, SamePoint) {
  EXPECT_EQ(DirectionBetween(Point(1, 1), Point(1, 1)),
            CardinalDirection::kSame);
}

TEST(DirectionTest, ConeBoundaries) {
  const Point origin(0, 0);
  // 22.4 degrees east of north is still north; 22.6 is northeast.
  EXPECT_EQ(DirectionBetween(origin, Point(std::tan(22.4 * M_PI / 180), 1)),
            CardinalDirection::kNorth);
  EXPECT_EQ(DirectionBetween(origin, Point(std::tan(22.6 * M_PI / 180), 1)),
            CardinalDirection::kNorthEast);
}

TEST(DirectionTest, OppositePairs) {
  for (int i = 0; i < 8; ++i) {
    const auto dir = static_cast<CardinalDirection>(i);
    EXPECT_EQ(Opposite(Opposite(dir)), dir);
  }
  EXPECT_EQ(Opposite(CardinalDirection::kNorth), CardinalDirection::kSouth);
  EXPECT_EQ(Opposite(CardinalDirection::kSame), CardinalDirection::kSame);
}

TEST(DirectionTest, ReversedArgumentsGiveOpposite) {
  const Point a(3, 7), b(-2, 1);
  EXPECT_EQ(DirectionBetween(a, b), Opposite(DirectionBetween(b, a)));
}

TEST(DirectionTest, GeometryCentroids) {
  const geom::Geometry south_poly(geom::Polygon(
      geom::LinearRing({{0, 0}, {2, 0}, {2, 2}, {0, 2}})));
  const geom::Geometry north_poly(geom::Polygon(
      geom::LinearRing({{0, 10}, {2, 10}, {2, 12}, {0, 12}})));
  EXPECT_EQ(DirectionBetween(south_poly, north_poly),
            CardinalDirection::kNorth);
  EXPECT_EQ(DirectionBetween(north_poly, south_poly),
            CardinalDirection::kSouth);
}

TEST(DirectionTest, Names) {
  EXPECT_STREQ(CardinalDirectionName(CardinalDirection::kNorthEast),
               "northEast");
  EXPECT_STREQ(CardinalDirectionName(CardinalDirection::kSame), "same");
}

}  // namespace
}  // namespace qsr
}  // namespace sfpm
