#include "qsr/rcc8.h"

#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace sfpm {
namespace qsr {
namespace {

using geom::Geometry;

Geometry G(const char* wkt) {
  auto g = geom::ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt;
  return g.value_or(Geometry());
}

constexpr Rcc8 kAllRels[] = {Rcc8::kDC,   Rcc8::kEC,    Rcc8::kPO,
                             Rcc8::kTPP,  Rcc8::kNTPP,  Rcc8::kTPPi,
                             Rcc8::kNTPPi, Rcc8::kEQ};

TEST(Rcc8SetTest, BasicSetOperations) {
  Rcc8Set s(Rcc8::kDC);
  EXPECT_TRUE(s.Contains(Rcc8::kDC));
  EXPECT_FALSE(s.Contains(Rcc8::kEC));
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_EQ(s.Single(), Rcc8::kDC);
  EXPECT_EQ(s.Count(), 1);

  s |= Rcc8Set(Rcc8::kPO);
  EXPECT_EQ(s.Count(), 2);
  EXPECT_FALSE(s.IsSingleton());
  EXPECT_EQ(s.ToString(), "{DC, PO}");

  EXPECT_TRUE((s & Rcc8Set(Rcc8::kEC)).IsEmpty());
  EXPECT_EQ(Rcc8Set::Universal().Count(), 8);
  EXPECT_TRUE(Rcc8Set::Empty().IsEmpty());
}

TEST(Rcc8Test, ConverseInvolution) {
  for (Rcc8 r : kAllRels) {
    EXPECT_EQ(Rcc8Converse(Rcc8Converse(r)), r);
  }
  EXPECT_EQ(Rcc8Converse(Rcc8::kTPP), Rcc8::kTPPi);
  EXPECT_EQ(Rcc8Converse(Rcc8::kNTPP), Rcc8::kNTPPi);
  EXPECT_EQ(Rcc8Converse(Rcc8::kEQ), Rcc8::kEQ);
}

TEST(Rcc8Test, EqIsCompositionIdentity) {
  for (Rcc8 r : kAllRels) {
    EXPECT_EQ(Rcc8Compose(Rcc8::kEQ, r), Rcc8Set(r));
    EXPECT_EQ(Rcc8Compose(r, Rcc8::kEQ), Rcc8Set(r));
  }
}

TEST(Rcc8Test, CompositionContainsIdentityWitness) {
  // r ; converse(r) must allow EQ (taking C = A witnesses it).
  for (Rcc8 r : kAllRels) {
    EXPECT_TRUE(Rcc8Compose(r, Rcc8Converse(r)).Contains(Rcc8::kEQ))
        << Rcc8Name(r);
  }
}

TEST(Rcc8Test, CompositionConverseDuality) {
  // converse(r ; s) == converse(s) ; converse(r) — the axiom every
  // relation algebra composition table must satisfy.
  for (Rcc8 r : kAllRels) {
    for (Rcc8 s : kAllRels) {
      EXPECT_EQ(Rcc8Converse(Rcc8Compose(r, s)),
                Rcc8Compose(Rcc8Converse(s), Rcc8Converse(r)))
          << Rcc8Name(r) << " ; " << Rcc8Name(s);
    }
  }
}

TEST(Rcc8Test, KnownCompositionEntries) {
  EXPECT_EQ(Rcc8Compose(Rcc8::kDC, Rcc8::kDC), Rcc8Set::Universal());
  EXPECT_EQ(Rcc8Compose(Rcc8::kNTPP, Rcc8::kNTPP), Rcc8Set(Rcc8::kNTPP));
  EXPECT_EQ(Rcc8Compose(Rcc8::kTPP, Rcc8::kNTPP), Rcc8Set(Rcc8::kNTPP));
  EXPECT_EQ(Rcc8Compose(Rcc8::kNTPP, Rcc8::kDC), Rcc8Set(Rcc8::kDC));
  EXPECT_EQ(Rcc8Compose(Rcc8::kEC, Rcc8::kNTPP),
            Rcc8Set(Rcc8::kPO) | Rcc8Set(Rcc8::kTPP) | Rcc8Set(Rcc8::kNTPP));
  EXPECT_EQ(Rcc8Compose(Rcc8::kNTPP, Rcc8::kNTPPi), Rcc8Set::Universal());
}

TEST(Rcc8Test, SetCompositionIsUnionOfMembers) {
  const Rcc8Set lhs = Rcc8Set(Rcc8::kDC) | Rcc8Set(Rcc8::kEC);
  const Rcc8Set rhs = Rcc8Set(Rcc8::kNTPP);
  EXPECT_EQ(Rcc8Compose(lhs, rhs),
            Rcc8Compose(Rcc8::kDC, Rcc8::kNTPP) |
                Rcc8Compose(Rcc8::kEC, Rcc8::kNTPP));
}

TEST(Rcc8Test, TopologicalMappingRoundTrip) {
  for (Rcc8 r : kAllRels) {
    const auto back = Rcc8FromTopological(TopologicalFromRcc8(r));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), r);
  }
  EXPECT_FALSE(Rcc8FromTopological(TopologicalRelation::kCrosses).ok());
}

TEST(Rcc8Test, GeometricRelate) {
  const Geometry big = G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  const Geometry inner = G("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))");
  const Geometry edge_inner = G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  const Geometry neighbor = G("POLYGON ((10 0, 20 0, 20 10, 10 10, 10 0))");
  const Geometry away = G("POLYGON ((50 50, 60 50, 60 60, 50 60, 50 50))");
  const Geometry overlapping = G("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");

  EXPECT_EQ(Rcc8Relate(big, inner).value(), Rcc8::kNTPPi);
  EXPECT_EQ(Rcc8Relate(inner, big).value(), Rcc8::kNTPP);
  EXPECT_EQ(Rcc8Relate(big, edge_inner).value(), Rcc8::kTPPi);
  EXPECT_EQ(Rcc8Relate(edge_inner, big).value(), Rcc8::kTPP);
  EXPECT_EQ(Rcc8Relate(big, neighbor).value(), Rcc8::kEC);
  EXPECT_EQ(Rcc8Relate(big, away).value(), Rcc8::kDC);
  EXPECT_EQ(Rcc8Relate(big, overlapping).value(), Rcc8::kPO);
  EXPECT_EQ(Rcc8Relate(big, big).value(), Rcc8::kEQ);
  EXPECT_FALSE(Rcc8Relate(big, G("POINT (1 1)")).ok());
}

TEST(Rcc8Test, GeometricCompositionSoundness) {
  // For concrete regions A, B, C the composition table must contain the
  // actually realized relation of (A, C).
  const Geometry a = G("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))");
  const Geometry b = G("POLYGON ((1 1, 6 1, 6 6, 1 6, 1 1))");
  const Geometry cs[] = {
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"),
      G("POLYGON ((6 1, 9 1, 9 6, 6 6, 6 1))"),
      G("POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))"),
      G("POLYGON ((3 3, 8 3, 8 8, 3 8, 3 3))"),
  };
  const Rcc8 ab = Rcc8Relate(a, b).value();
  for (const Geometry& c : cs) {
    const Rcc8 bc = Rcc8Relate(b, c).value();
    const Rcc8 ac = Rcc8Relate(a, c).value();
    EXPECT_TRUE(Rcc8Compose(ab, bc).Contains(ac))
        << Rcc8Name(ab) << " ; " << Rcc8Name(bc) << " must allow "
        << Rcc8Name(ac);
  }
}

TEST(Rcc8NetworkTest, PropagationRefines) {
  // x NTPP y, y NTPP z  =>  x NTPP z.
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, Rcc8Set(Rcc8::kNTPP)).ok());
  EXPECT_TRUE(net.Propagate());
  EXPECT_EQ(net.At(0, 2), Rcc8Set(Rcc8::kNTPP));
  EXPECT_EQ(net.At(2, 0), Rcc8Set(Rcc8::kNTPPi));
}

TEST(Rcc8NetworkTest, DetectsInconsistency) {
  // x inside y, y inside z, but x disconnected from z: impossible.
  Rcc8Network net(3);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(0, 2, Rcc8Set(Rcc8::kDC)).ok());
  EXPECT_FALSE(net.Propagate());
  EXPECT_TRUE(net.IsInconsistent());
}

TEST(Rcc8NetworkTest, ImmediateContradictionOnConstrain) {
  Rcc8Network net(2);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kDC)).ok());
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kEQ)).ok());
  EXPECT_TRUE(net.IsInconsistent());
  EXPECT_FALSE(net.Propagate());
}

TEST(Rcc8NetworkTest, DisjunctiveConstraintNarrowing) {
  // x is either TPP or NTPP of y; y is DC from z  =>  x DC z.
  Rcc8Network net(3);
  ASSERT_TRUE(
      net.Constrain(0, 1, Rcc8Set(Rcc8::kTPP) | Rcc8Set(Rcc8::kNTPP)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, Rcc8Set(Rcc8::kDC)).ok());
  EXPECT_TRUE(net.Propagate());
  EXPECT_EQ(net.At(0, 2), Rcc8Set(Rcc8::kDC));
}

TEST(Rcc8NetworkTest, UnconstrainedStaysUniversal) {
  Rcc8Network net(4);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kPO)).ok());
  EXPECT_TRUE(net.Propagate());
  // Variables 2 and 3 are untouched by any constraint path information
  // that would narrow them to less than universal.
  EXPECT_EQ(net.At(2, 3), Rcc8Set::Universal());
  EXPECT_EQ(net.At(2, 2), Rcc8Set(Rcc8::kEQ));
}

TEST(Rcc8NetworkTest, OutOfRangeRejected) {
  Rcc8Network net(2);
  EXPECT_FALSE(net.Constrain(0, 5, Rcc8Set(Rcc8::kEQ)).ok());
}

}  // namespace
}  // namespace qsr
}  // namespace sfpm
