// Exhaustive axioms of the RCC8 composition algebra: every identity is
// checked over all 64 base-relation pairs (and the memoization over all
// 65536 set pairs), so the composition table itself — not a sample of it —
// is under test. The extraction inference tier leans on these properties
// for correctness: a single wrong table cell would surface as a wrong
// predicate, so the table gets the same exhaustive treatment as the
// engine's differential tests.

#include <gtest/gtest.h>

#include <cstdint>

#include "qsr/rcc8.h"
#include "util/random.h"

namespace sfpm {
namespace qsr {
namespace {

constexpr Rcc8 kAllRels[] = {Rcc8::kDC,    Rcc8::kEC,   Rcc8::kPO,
                             Rcc8::kTPP,   Rcc8::kNTPP, Rcc8::kTPPi,
                             Rcc8::kNTPPi, Rcc8::kEQ};

TEST(Rcc8AlgebraTest, EqIsLeftIdentity) {
  for (Rcc8 b : kAllRels) {
    EXPECT_EQ(Rcc8Compose(Rcc8::kEQ, b), Rcc8Set(b)) << Rcc8Name(b);
  }
}

TEST(Rcc8AlgebraTest, EqIsRightIdentity) {
  for (Rcc8 a : kAllRels) {
    EXPECT_EQ(Rcc8Compose(a, Rcc8::kEQ), Rcc8Set(a)) << Rcc8Name(a);
  }
}

TEST(Rcc8AlgebraTest, CompositionsNonEmptyAllPairs) {
  // JEPD closure: some relation always holds between A and C, so no
  // composition of base relations may be empty.
  for (Rcc8 a : kAllRels) {
    for (Rcc8 b : kAllRels) {
      EXPECT_FALSE(Rcc8Compose(a, b).IsEmpty())
          << Rcc8Name(a) << " ; " << Rcc8Name(b);
    }
  }
}

TEST(Rcc8AlgebraTest, ConverseDualityAllPairs) {
  // Compose(a, b) == Converse(Compose(Converse(b), Converse(a))): the
  // relation-algebra involution axiom, for all 64 base pairs.
  for (Rcc8 a : kAllRels) {
    for (Rcc8 b : kAllRels) {
      const Rcc8Set direct = Rcc8Compose(a, b);
      const Rcc8Set dual = Rcc8Converse(
          Rcc8Compose(Rcc8Converse(b), Rcc8Converse(a)));
      EXPECT_EQ(direct, dual) << Rcc8Name(a) << " ; " << Rcc8Name(b);
    }
  }
}

TEST(Rcc8AlgebraTest, ConverseIsInvolution) {
  for (Rcc8 a : kAllRels) {
    EXPECT_EQ(Rcc8Converse(Rcc8Converse(a)), a) << Rcc8Name(a);
  }
}

TEST(Rcc8AlgebraTest, EveryBaseRelationInSomeComposition) {
  // Identity containment: a ∈ Compose(a, EQ) and a ∈ Compose(EQ, a)
  // (already exact above), plus the weaker sanity that composing with the
  // converse can reproduce EQ-compatible information: EQ ∈ Compose(a,
  // Converse(a)) for every a — A related to B and B related back must
  // admit A == A.
  for (Rcc8 a : kAllRels) {
    EXPECT_TRUE(Rcc8Compose(a, Rcc8Converse(a)).Contains(Rcc8::kEQ))
        << Rcc8Name(a);
  }
}

TEST(Rcc8AlgebraTest, MemoizedSetComposeMatchesUncachedExhaustively) {
  // All 256 x 256 set pairs: the precomputed table must agree with the
  // member-pair loop everywhere, including the empty set on either side.
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      const Rcc8Set sa(static_cast<uint8_t>(a));
      const Rcc8Set sb(static_cast<uint8_t>(b));
      ASSERT_EQ(Rcc8Compose(sa, sb), Rcc8ComposeUncached(sa, sb))
          << sa.ToString() << " ; " << sb.ToString();
    }
  }
}

TEST(Rcc8AlgebraTest, ComposeThroughUniversalIsUniversal) {
  // The identity behind Propagate's universal-edge skip: composing any
  // nonempty set with the universal set cannot narrow anything.
  for (int bits = 1; bits < 256; ++bits) {
    const Rcc8Set s(static_cast<uint8_t>(bits));
    EXPECT_EQ(Rcc8Compose(s, Rcc8Set::Universal()), Rcc8Set::Universal())
        << s.ToString();
    EXPECT_EQ(Rcc8Compose(Rcc8Set::Universal(), s), Rcc8Set::Universal())
        << s.ToString();
  }
}

/// A random network over `n` variables with `stated` random binary
/// constraints (possibly disjunctive); returned before propagation.
Rcc8Network RandomNetwork(size_t n, size_t stated, Rng* rng) {
  Rcc8Network net(n);
  for (size_t s = 0; s < stated; ++s) {
    const size_t i = rng->NextUint64(n);
    size_t j = rng->NextUint64(n);
    if (i == j) j = (j + 1) % n;
    // A random nonempty disjunction, biased toward small sets.
    uint8_t bits =
        static_cast<uint8_t>(1u << rng->NextUint64(kNumRcc8));
    if (rng->NextBool(0.4)) {
      bits |= static_cast<uint8_t>(1u << rng->NextUint64(kNumRcc8));
    }
    EXPECT_TRUE(net.Constrain(i, j, Rcc8Set(bits)).ok());
  }
  return net;
}

TEST(Rcc8PropagateModeTest, SkipUniversalMatchesExhaustiveOnRandomNetworks) {
  Rng rng(2007);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.NextUint64(6);
    const size_t stated = rng.NextUint64(n * 2 + 1);
    Rcc8Network a = RandomNetwork(n, stated, &rng);
    Rcc8Network b = a;

    const bool consistent_skip = a.Propagate(PropagateMode::kSkipUniversal);
    const bool consistent_full = b.Propagate(PropagateMode::kExhaustive);
    ASSERT_EQ(consistent_skip, consistent_full) << "trial " << trial;
    if (!consistent_skip) continue;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        ASSERT_EQ(a.At(i, j), b.At(i, j))
            << "trial " << trial << " edge (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(Rcc8PropagateModeTest, SparseNetworkStaysUniversalOffPath) {
  // A single constraint in a larger network: the skip mode must still
  // propagate its consequences and leave unrelated edges universal.
  Rcc8Network net(5);
  ASSERT_TRUE(net.Constrain(0, 1, Rcc8Set(Rcc8::kNTPP)).ok());
  EXPECT_TRUE(net.Propagate(PropagateMode::kSkipUniversal));
  EXPECT_EQ(net.At(0, 1), Rcc8Set(Rcc8::kNTPP));
  EXPECT_EQ(net.At(1, 0), Rcc8Set(Rcc8::kNTPPi));
  EXPECT_EQ(net.At(2, 3), Rcc8Set::Universal());
}

}  // namespace
}  // namespace qsr
}  // namespace sfpm
