#include "qsr/infer.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace qsr {
namespace {

TEST(Rcc8PairStoreTest, StoresBothOrientationsFromOneSet) {
  Rcc8PairStore store(3);
  store.Set(0, 1, Rcc8::kNTPPi);

  EXPECT_EQ(store.NumPairs(), 1u);
  ASSERT_EQ(store.Neighbors(1).size(), 1u);
  EXPECT_EQ(store.Neighbors(1)[0].pivot, 0u);
  EXPECT_EQ(store.Neighbors(1)[0].rel, Rcc8::kNTPPi);
  EXPECT_FALSE(store.Neighbors(1)[0].via_converse);

  // The reverse orientation is derived, marked as the converse half.
  ASSERT_EQ(store.Neighbors(0).size(), 1u);
  EXPECT_EQ(store.Neighbors(0)[0].pivot, 1u);
  EXPECT_EQ(store.Neighbors(0)[0].rel, Rcc8::kNTPP);
  EXPECT_TRUE(store.Neighbors(0)[0].via_converse);

  EXPECT_TRUE(store.Neighbors(2).empty());
}

TEST(Rcc8PairStoreTest, EligibilityDefaultsOff) {
  Rcc8PairStore store(2);
  EXPECT_FALSE(store.Eligible(0));
  store.SetEligible(0, true);
  EXPECT_TRUE(store.Eligible(0));
  store.SetEligible(0, false);
  EXPECT_FALSE(store.Eligible(0));
}

TEST(Rcc8CrossStoreTest, StoresCrossEdgesAndRefPairs) {
  Rcc8CrossStore cross;
  EXPECT_EQ(cross.CrossOf(7), nullptr);
  EXPECT_EQ(cross.RefPairsOf(0), nullptr);

  cross.SetCross(0, 7, Rcc8::kNTPPi);
  ASSERT_NE(cross.CrossOf(7), nullptr);
  EXPECT_EQ(cross.CrossOf(7)->size(), 1u);
  EXPECT_EQ(cross.CrossOf(7)->at(0).pivot, 0u);
  EXPECT_EQ(cross.CrossOf(7)->at(0).rel, Rcc8::kNTPPi);
  EXPECT_EQ(cross.NumCross(), 1u);

  // A reference pair stores both orientations; the reverse one is the
  // converse half.
  cross.SetRefPair(1, 0, Rcc8::kEC);
  EXPECT_TRUE(cross.HasRefPair(1, 0));
  EXPECT_TRUE(cross.HasRefPair(0, 1));
  EXPECT_FALSE(cross.HasRefPair(1, 2));
  ASSERT_NE(cross.RefPairsOf(1), nullptr);
  EXPECT_EQ(cross.RefPairsOf(1)->at(0).rel, Rcc8::kEC);
  EXPECT_FALSE(cross.RefPairsOf(1)->at(0).via_converse);
  ASSERT_NE(cross.RefPairsOf(0), nullptr);
  EXPECT_EQ(cross.RefPairsOf(0)->at(0).rel, Rcc8::kEC);
  EXPECT_TRUE(cross.RefPairsOf(0)->at(0).via_converse);
  EXPECT_EQ(cross.NumRefPairs(), 1u);
}

TEST(ClusterInferenceTest, CrossStoreDirectHitIsExact) {
  // The row's own reference appears as a cross edge: the prepare phase
  // already related this exact pair, so the deduction is its singleton.
  Rcc8CrossStore cross;
  cross.SetCross(/*ref=*/3, /*cand=*/0, Rcc8::kNTPPi);
  ClusterInference cluster(nullptr, &cross, /*ref_id=*/3);

  const Rcc8Deduction d = cluster.Deduce(0);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kNTPPi);
  EXPECT_EQ(d.pivots_used, 1u);
}

TEST(ClusterInferenceTest, ReferencePivotComposesToSkip) {
  // Reference 5 holds candidate 0 strictly inside; this row's reference 3
  // touches reference 5, so EC ; NTPPi = {DC} — skip without the engine.
  Rcc8CrossStore cross;
  cross.SetCross(/*ref=*/5, /*cand=*/0, Rcc8::kNTPPi);
  cross.SetRefPair(/*a=*/3, /*b=*/5, Rcc8::kEC);
  ClusterInference cluster(nullptr, &cross, /*ref_id=*/3);

  const Rcc8Deduction d = cluster.Deduce(0);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kDC);
  EXPECT_EQ(d.pivots_used, 1u);
  EXPECT_EQ(d.converse_hits, 0u);
}

TEST(ClusterInferenceTest, ReferencePivotConverseOrientationCounts) {
  // The reference pair was stored as R(5 -> 3); this row (3) consumes the
  // derived converse edge R(3 -> 5) = EC.
  Rcc8CrossStore cross;
  cross.SetCross(/*ref=*/5, /*cand=*/0, Rcc8::kNTPPi);
  cross.SetRefPair(/*a=*/5, /*b=*/3, Rcc8::kEC);
  ClusterInference cluster(nullptr, &cross, /*ref_id=*/3);

  const Rcc8Deduction d = cluster.Deduce(0);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kDC);
  EXPECT_EQ(d.converse_hits, 1u);
}

TEST(ClusterInferenceTest, UnknownReferencePairIsSkipped) {
  // A cross edge through a reference this row has no pair with cannot
  // narrow anything.
  Rcc8CrossStore cross;
  cross.SetCross(/*ref=*/5, /*cand=*/0, Rcc8::kNTPPi);
  ClusterInference cluster(nullptr, &cross, /*ref_id=*/3);

  const Rcc8Deduction d = cluster.Deduce(0);
  EXPECT_EQ(d.set, Rcc8Set::Universal());
  EXPECT_EQ(d.pivots_used, 0u);
}

TEST(ClusterInferenceTest, CrossAndCandidateTiersIntersect) {
  // Neither tier decides alone: the reference pivot narrows to a 5-way
  // disjunction (PO ; NTPPi), the candidate pivot to {DC} via DC ; TPPi;
  // the intersection is the candidate tier's singleton.
  Rcc8CrossStore cross;
  cross.SetCross(/*ref=*/5, /*cand=*/2, Rcc8::kNTPPi);
  cross.SetRefPair(/*a=*/3, /*b=*/5, Rcc8::kPO);
  Rcc8PairStore store(3);
  store.Set(1, 2, Rcc8::kTPPi);
  ClusterInference cluster(&store, &cross, /*ref_id=*/3);
  cluster.Record(1, Rcc8::kDC);

  const Rcc8Deduction d = cluster.Deduce(2);
  EXPECT_EQ(d.pivots_used, 2u);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kDC);
}

TEST(ClusterInferenceTest, NullStoreDeducesNothing) {
  ClusterInference cluster(nullptr);
  cluster.Record(0, Rcc8::kDC);
  const Rcc8Deduction d = cluster.Deduce(0);
  EXPECT_EQ(d.set, Rcc8Set::Universal());
  EXPECT_EQ(d.pivots_used, 0u);
}

TEST(ClusterInferenceTest, ContainmentChainCollapsesToSingleton) {
  // Store: pivot 0 contains candidate 1 (NTPPi). Reference contains
  // pivot 0, so NTPPi ; NTPPi = {NTPPi}: the reference must contain the
  // candidate, no engine needed.
  Rcc8PairStore store(2);
  store.Set(0, 1, Rcc8::kNTPPi);
  ClusterInference cluster(&store);
  cluster.Record(0, Rcc8::kNTPPi);

  const Rcc8Deduction d = cluster.Deduce(1);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kNTPPi);
  EXPECT_EQ(d.pivots_used, 1u);
  EXPECT_EQ(d.converse_hits, 0u);
}

TEST(ClusterInferenceTest, TouchingContainerDeducesDisconnection) {
  // Reference EC pivot, pivot contains candidate strictly: EC ; NTPPi =
  // {DC} — the pair can be skipped outright.
  Rcc8PairStore store(2);
  store.Set(0, 1, Rcc8::kNTPPi);
  ClusterInference cluster(&store);
  cluster.Record(0, Rcc8::kEC);

  const Rcc8Deduction d = cluster.Deduce(1);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kDC);
}

TEST(ClusterInferenceTest, ConverseOrientationCountsAndDecides) {
  // The pair was stored as (candidate 1) -> (pivot 0); deducing through
  // 0 consumes the derived converse edge. Reference equals pivot 0 and
  // pivot 0 is NTPP candidate 1 (via converse of NTPPi), so EQ ; NTPP =
  // {NTPP}.
  Rcc8PairStore store(2);
  store.Set(1, 0, Rcc8::kNTPPi);
  ClusterInference cluster(&store);
  cluster.Record(0, Rcc8::kEQ);

  const Rcc8Deduction d = cluster.Deduce(1);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kNTPP);
  EXPECT_EQ(d.converse_hits, 1u);
}

TEST(ClusterInferenceTest, MultiplePivotsIntersect) {
  // Neither pivot decides alone, but the intersection narrows: reference
  // PO pivot0 with pivot0 NTPPi candidate gives {DC,EC,PO,TPPi,NTPPi};
  // reference NTPP pivot1 with pivot1 NTPPi candidate gives all eight
  // minus nothing useful... use a decisive second pivot instead:
  // reference DC pivot1, pivot1 TPPi candidate gives {DC}. Intersection
  // = {DC}.
  Rcc8PairStore store(3);
  store.Set(0, 2, Rcc8::kNTPPi);
  store.Set(1, 2, Rcc8::kTPPi);
  ClusterInference cluster(&store);
  cluster.Record(0, Rcc8::kPO);
  cluster.Record(1, Rcc8::kDC);

  const Rcc8Deduction d = cluster.Deduce(2);
  EXPECT_EQ(d.pivots_used, 2u);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kDC);
}

TEST(ClusterInferenceTest, UnknownPivotsAreSkipped) {
  Rcc8PairStore store(3);
  store.Set(0, 2, Rcc8::kNTPPi);
  store.Set(1, 2, Rcc8::kNTPPi);
  ClusterInference cluster(&store);
  cluster.Record(1, Rcc8::kNTPPi);  // Pivot 0 never recorded.

  const Rcc8Deduction d = cluster.Deduce(2);
  EXPECT_EQ(d.pivots_used, 1u);
  ASSERT_TRUE(d.set.IsSingleton());
  EXPECT_EQ(d.set.Single(), Rcc8::kNTPPi);
}

TEST(ClusterInferenceTest, NonDecisivePivotStaysDisjunctive) {
  // Reference PO pivot, pivot NTPPi candidate: the composed set is a
  // 5-way disjunction — not a decision, the caller must call the engine.
  Rcc8PairStore store(2);
  store.Set(0, 1, Rcc8::kNTPPi);
  ClusterInference cluster(&store);
  cluster.Record(0, Rcc8::kPO);

  const Rcc8Deduction d = cluster.Deduce(1);
  EXPECT_FALSE(d.set.IsSingleton());
  EXPECT_FALSE(d.set.IsEmpty());
}

TEST(ClusterInferenceTest, ContradictionYieldsEmptySet) {
  // Two pivots whose compositions are disjoint singletons: impossible
  // geometrically, but the deduction must surface it as empty (fallback
  // signal), never pick a side.
  Rcc8PairStore store(3);
  store.Set(0, 2, Rcc8::kNTPPi);  // ref NTPPi 0, 0 NTPPi 2 => {NTPPi}
  store.Set(1, 2, Rcc8::kNTPPi);  // ref EC 1, 1 NTPPi 2 => {DC}
  ClusterInference cluster(&store);
  cluster.Record(0, Rcc8::kNTPPi);
  cluster.Record(1, Rcc8::kEC);

  const Rcc8Deduction d = cluster.Deduce(2);
  EXPECT_TRUE(d.set.IsEmpty());
}

}  // namespace
}  // namespace qsr
}  // namespace sfpm
