#include "datagen/tiles.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "datagen/city.h"
#include "feature/feature.h"
#include "geom/geometry.h"

namespace sfpm {
namespace datagen {
namespace {

using geom::LinearRing;
using geom::Polygon;

Polygon Square(double x0, double y0, double size) {
  return Polygon(LinearRing(
      {{x0, y0}, {x0 + size, y0}, {x0 + size, y0 + size}, {x0, y0 + size}}));
}

TEST(TileGridTest, FactorizesNearSquare) {
  EXPECT_EQ(TileGridFor(1).cols, 1);
  EXPECT_EQ(TileGridFor(1).rows, 1);
  EXPECT_EQ(TileGridFor(4).cols, 2);
  EXPECT_EQ(TileGridFor(4).rows, 2);
  EXPECT_EQ(TileGridFor(6).cols, 3);
  EXPECT_EQ(TileGridFor(6).rows, 2);
  EXPECT_EQ(TileGridFor(12).cols, 4);
  EXPECT_EQ(TileGridFor(12).rows, 3);
  // A prime count degrades to a strip, never loses shards.
  EXPECT_EQ(TileGridFor(7).cols, 7);
  EXPECT_EQ(TileGridFor(7).rows, 1);
  for (int n = 1; n <= 64; ++n) {
    const TileGrid g = TileGridFor(n);
    EXPECT_EQ(g.cols * g.rows, n) << n;
    EXPECT_GE(g.cols, g.rows) << n;
  }
}

TEST(PartitionReferenceTest, EveryFeatureOwnedExactlyOnce) {
  feature::Layer layer("district");
  for (int x = 0; x < 6; ++x) {
    for (int y = 0; y < 4; ++y) {
      layer.Add(Square(x * 10.0, y * 10.0, 8.0));
    }
  }
  for (const int shards : {1, 2, 3, 4, 6, 8, 24, 64}) {
    const std::vector<Tile> tiles = PartitionReference(layer, shards);
    std::set<uint64_t> seen;
    int last_slot = -1;
    for (const Tile& tile : tiles) {
      EXPECT_FALSE(tile.refs.empty());
      EXPECT_GT(tile.slot, last_slot) << "tiles must come in slot order";
      last_slot = tile.slot;
      uint64_t last_ref = 0;
      for (size_t i = 0; i < tile.refs.size(); ++i) {
        EXPECT_TRUE(seen.insert(tile.refs[i]).second)
            << "feature " << tile.refs[i] << " owned twice";
        if (i > 0) EXPECT_GT(tile.refs[i], last_ref);
        last_ref = tile.refs[i];
      }
    }
    EXPECT_EQ(seen.size(), layer.Size()) << shards << " shards";
  }
}

TEST(PartitionReferenceTest, SingleShardOwnsEverything) {
  feature::Layer layer("district");
  layer.Add(Square(0, 0, 5));
  layer.Add(Square(100, 100, 5));
  const std::vector<Tile> tiles = PartitionReference(layer, 1);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0].slot, 0);
  EXPECT_EQ(tiles[0].refs, (std::vector<uint64_t>{0, 1}));
}

TEST(PartitionReferenceTest, WindowContainsOwnedEnvelopes) {
  feature::Layer layer("district");
  for (int i = 0; i < 30; ++i) {
    layer.Add(Square(i * 7.0, (i % 5) * 11.0, 6.0));
  }
  for (const Tile& tile : PartitionReference(layer, 6)) {
    for (const uint64_t id : tile.refs) {
      const geom::Envelope env =
          layer.at(id).geometry().GetEnvelope();
      EXPECT_TRUE(tile.window.Contains(env))
          << "tile " << tile.slot << " window misses feature " << id;
    }
  }
}

TEST(PartitionReferenceTest, SkipsEmptyTilesButKeepsSlots) {
  // All features in one corner: most grid cells own nothing.
  feature::Layer layer("district");
  layer.Add(Square(0, 0, 1));
  layer.Add(Square(1, 0, 1));
  layer.Add(Square(0, 1, 1));
  const std::vector<Tile> tiles = PartitionReference(layer, 16);
  EXPECT_LT(tiles.size(), 16u);
  std::set<uint64_t> seen;
  for (const Tile& tile : tiles) {
    EXPECT_GE(tile.slot, 0);
    EXPECT_LT(tile.slot, 16);
    seen.insert(tile.refs.begin(), tile.refs.end());
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(PartitionReferenceTest, DeterministicOnRealCity) {
  CityConfig config;
  config.grid_cols = 4;
  config.grid_rows = 3;
  config.num_slums = 10;
  config.num_schools = 12;
  config.num_police = 4;
  config.num_streets = 8;
  config.num_rivers = 1;
  const std::unique_ptr<City> city = GenerateCity(config);
  const std::vector<Tile> a = PartitionReference(city->districts, 4);
  const std::vector<Tile> b = PartitionReference(city->districts, 4);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].slot, b[i].slot);
    EXPECT_EQ(a[i].refs, b[i].refs);
    EXPECT_EQ(a[i].window.min_x(), b[i].window.min_x());
    EXPECT_EQ(a[i].window.max_y(), b[i].window.max_y());
  }
}

TEST(ScaledCityConfigTest, ScalesGridLinearlyAndCountsQuadratically) {
  const CityConfig base;
  const CityConfig one = ScaledCityConfig(base, 1);
  EXPECT_EQ(one.grid_cols, base.grid_cols);
  EXPECT_EQ(one.num_slums, base.num_slums);
  const CityConfig two = ScaledCityConfig(base, 2);
  EXPECT_EQ(two.grid_cols, base.grid_cols * 2);
  EXPECT_EQ(two.grid_rows, base.grid_rows * 2);
  EXPECT_EQ(two.num_slums, base.num_slums * 4);
  EXPECT_EQ(two.num_schools, base.num_schools * 4);
  EXPECT_EQ(two.num_police, base.num_police * 4);
  EXPECT_EQ(two.num_streets, base.num_streets * 4);
  EXPECT_EQ(two.num_rivers, base.num_rivers * 2);
  EXPECT_EQ(ScaledCityConfig(base, 0).grid_cols, base.grid_cols);
}

}  // namespace
}  // namespace datagen
}  // namespace sfpm
