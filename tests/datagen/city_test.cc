#include "datagen/city.h"

#include <gtest/gtest.h>

#include "geom/algorithms.h"
#include "qsr/topological.h"
#include "relate/relate.h"

namespace sfpm {
namespace datagen {
namespace {

CityConfig SmallConfig() {
  CityConfig config;
  config.grid_cols = 4;
  config.grid_rows = 3;
  config.num_slums = 12;
  config.num_schools = 20;
  config.num_police = 4;
  config.num_streets = 10;
  config.num_rivers = 1;
  config.seed = 99;
  return config;
}

TEST(CityTest, LayerSizesMatchConfig) {
  const auto city = GenerateCity(SmallConfig());
  EXPECT_EQ(city->districts.Size(), 12u);  // 4 x 3 grid.
  EXPECT_EQ(city->slums.Size(), 12u);
  EXPECT_EQ(city->schools.Size(), 20u);
  EXPECT_EQ(city->police.Size(), 4u);
  EXPECT_EQ(city->streets.Size(), 10u);
  EXPECT_EQ(city->illumination.Size(), 30u);  // 3 per street.
  EXPECT_EQ(city->rivers.Size(), 1u);
}

TEST(CityTest, Deterministic) {
  const auto a = GenerateCity(SmallConfig());
  const auto b = GenerateCity(SmallConfig());
  ASSERT_EQ(a->districts.Size(), b->districts.Size());
  for (size_t i = 0; i < a->districts.Size(); ++i) {
    EXPECT_EQ(a->districts.at(i).geometry(), b->districts.at(i).geometry());
    EXPECT_EQ(a->districts.at(i).attributes(),
              b->districts.at(i).attributes());
  }
}

TEST(CityTest, DistrictsTileWithoutOverlap) {
  const auto city = GenerateCity(SmallConfig());
  // Grid neighbours touch; non-neighbours are disjoint; nobody overlaps.
  const size_t n = city->districts.Size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const auto rel = qsr::ClassifyTopological(
          city->districts.at(i).geometry(), city->districts.at(j).geometry());
      EXPECT_TRUE(rel == qsr::TopologicalRelation::kTouches ||
                  rel == qsr::TopologicalRelation::kDisjoint)
          << i << " vs " << j << ": "
          << qsr::TopologicalRelationName(rel);
    }
  }
}

TEST(CityTest, DistrictAttributesPresent) {
  const auto city = GenerateCity(SmallConfig());
  for (const feature::Feature& d : city->districts.features()) {
    EXPECT_TRUE(d.Attribute("name").ok());
    const auto murder = d.Attribute("murderRate");
    ASSERT_TRUE(murder.ok());
    EXPECT_TRUE(murder.value() == "high" || murder.value() == "low");
    const auto theft = d.Attribute("theftRate");
    ASSERT_TRUE(theft.ok());
    EXPECT_TRUE(theft.value() == "high" || theft.value() == "low");
  }
}

TEST(CityTest, IlluminationPointsLieOnStreets) {
  const auto city = GenerateCity(SmallConfig());
  // Every illumination point is within numerical tolerance of some street
  // (the generator places them exactly on street segments).
  for (const feature::Feature& ip : city->illumination.features()) {
    double best = 1e18;
    for (const feature::Feature& street : city->streets.features()) {
      best = std::min(best,
                      geom::Distance(ip.geometry(), street.geometry()));
    }
    EXPECT_LT(best, 1e-6);
  }
}

TEST(CityTest, RiversSpanTheCity) {
  const CityConfig config = SmallConfig();
  const auto city = GenerateCity(config);
  const double width = config.grid_cols * config.cell_size;
  for (const feature::Feature& river : city->rivers.features()) {
    const geom::Envelope env = river.geometry().GetEnvelope();
    EXPECT_DOUBLE_EQ(env.min_x(), 0.0);
    EXPECT_DOUBLE_EQ(env.max_x(), width);
  }
}

TEST(CityTest, SlumsHavePositiveArea) {
  const auto city = GenerateCity(SmallConfig());
  for (const feature::Feature& slum : city->slums.features()) {
    ASSERT_EQ(slum.geometry().type(), geom::GeometryType::kPolygon);
    EXPECT_GT(slum.geometry().As<geom::Polygon>().Area(), 0.0);
  }
}

TEST(CityTest, NestedSlumsAreStrictlyInsideTheirParents) {
  CityConfig config = SmallConfig();
  config.slum_nested_fraction = 0.5;
  const auto city = GenerateCity(config);

  // Children are appended after the originals.
  const size_t num_parents = config.num_slums;
  ASSERT_EQ(city->slums.Size(), num_parents + num_parents / 2);
  for (size_t i = num_parents; i < city->slums.Size(); ++i) {
    bool inside_some_parent = false;
    for (size_t j = 0; j < num_parents; ++j) {
      const auto rel = qsr::ClassifyTopological(
          city->slums.at(i).geometry(), city->slums.at(j).geometry());
      if (rel == qsr::TopologicalRelation::kWithin) {
        inside_some_parent = true;
        break;
      }
    }
    // The generator inscribes each child in its parent's inner disk, so
    // kWithin (interior-only containment, RCC8 NTPP) is guaranteed.
    EXPECT_TRUE(inside_some_parent) << "nested slum " << i;
  }
}

TEST(CityTest, NestingLeavesPrecedingLayersUntouched) {
  // The nesting pass draws from the RNG only after the base slums are
  // realized, so districts and the original slums are bit-identical
  // whether nesting is requested or not.
  CityConfig base = SmallConfig();
  CityConfig nested = SmallConfig();
  nested.slum_nested_fraction = 0.5;
  const auto a = GenerateCity(base);
  const auto b = GenerateCity(nested);

  ASSERT_EQ(a->districts.Size(), b->districts.Size());
  for (size_t i = 0; i < a->districts.Size(); ++i) {
    EXPECT_EQ(a->districts.at(i).geometry(), b->districts.at(i).geometry());
  }
  ASSERT_LE(a->slums.Size(), b->slums.Size());
  for (size_t i = 0; i < a->slums.Size(); ++i) {
    EXPECT_EQ(a->slums.at(i).geometry(), b->slums.at(i).geometry());
  }
}

TEST(CityTest, CrimeCorrelatesWithSlums) {
  // The attribute model ties murderRate to slum contact; on a full-size
  // city the correlation must be clearly visible.
  CityConfig config;
  config.seed = 3;
  const auto city = GenerateCity(config);

  int high_with_slum = 0, high_without_slum = 0;
  int with_slum = 0, without_slum = 0;
  for (const feature::Feature& d : city->districts.features()) {
    bool touches_slum = false;
    for (const feature::Feature& s : city->slums.features()) {
      if (d.geometry().GetEnvelope().Intersects(
              s.geometry().GetEnvelope()) &&
          relate::Intersects(d.geometry(), s.geometry())) {
        touches_slum = true;
        break;
      }
    }
    const bool high = d.Attribute("murderRate").value() == "high";
    if (touches_slum) {
      ++with_slum;
      high_with_slum += high;
    } else {
      ++without_slum;
      high_without_slum += high;
    }
  }
  ASSERT_GT(with_slum, 0);
  ASSERT_GT(without_slum, 0);
  const double p_high_given_slum =
      static_cast<double>(high_with_slum) / with_slum;
  const double p_high_given_none =
      static_cast<double>(high_without_slum) / without_slum;
  EXPECT_GT(p_high_given_slum, p_high_given_none + 0.2);
}

}  // namespace
}  // namespace datagen
}  // namespace sfpm
