#include "datagen/synthetic_predicates.h"

#include <gtest/gtest.h>

#include "core/apriori.h"

namespace sfpm {
namespace datagen {
namespace {

TEST(SyntheticPredicatesTest, RichnessGeneratorIsDeterministic) {
  SyntheticPredicateConfig config;
  config.num_transactions = 200;
  config.groups = {{"slum", {"contains", "touches"}}};
  config.attributes = {{"rate", {"low", "high"}}};
  config.seed = 5;

  const auto a = GenerateSyntheticPredicates(config);
  const auto b = GenerateSyntheticPredicates(config);
  EXPECT_EQ(a.NumRows(), 200u);
  EXPECT_EQ(a.ToString(), b.ToString());

  config.seed = 6;
  const auto c = GenerateSyntheticPredicates(config);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(SyntheticPredicatesTest, AttributesSingleValuedPerRow) {
  SyntheticPredicateConfig config;
  config.num_transactions = 100;
  config.groups = {{"slum", {"contains"}}};
  config.attributes = {{"rate", {"low", "mid", "high"}}};
  const auto table = GenerateSyntheticPredicates(config);

  for (size_t row = 0; row < table.NumRows(); ++row) {
    int rate_values = 0;
    for (const feature::Predicate& p : table.RowPredicates(row)) {
      if (!p.is_spatial() && p.feature_type() == "rate") ++rate_values;
    }
    EXPECT_EQ(rate_values, 1) << "row " << row;
  }
}

TEST(ProfiledGeneratorTest, SchemaDeclaredUpFront) {
  ProfiledPredicateConfig config;
  config.num_transactions = 10;
  config.groups = {{"slum", {"contains", "touches"}},
                   {"school", {"contains"}}};
  config.attributes = {{"rate", {"low", "high"}}};
  config.profiles = {};  // Pure noise.
  config.noise_probability = 0.0;

  const auto table = GenerateProfiledPredicates(config);
  // All predicates registered even though never set.
  EXPECT_EQ(table.NumPredicates(), 5u);
  EXPECT_EQ(table.db().Label(0), "contains_slum");
  EXPECT_EQ(table.db().Key(1), "slum");
  EXPECT_EQ(table.db().Label(2), "contains_school");
}

TEST(ProfiledGeneratorTest, ProfileProbabilitiesRealized) {
  ProfiledPredicateConfig config;
  config.num_transactions = 4000;
  config.seed = 17;
  config.groups = {{"slum", {"contains", "touches"}}};
  PredicateProfile always;
  always.weight = 1.0;
  always.spatial_probs = {{"contains_slum", 0.9}, {"touches_slum", 0.1}};
  config.profiles = {always};
  config.noise_probability = 0.0;

  const auto table = GenerateProfiledPredicates(config);
  const auto& db = table.db();
  EXPECT_NEAR(db.Support(0) / 4000.0, 0.9, 0.03);
  EXPECT_NEAR(db.Support(1) / 4000.0, 0.1, 0.03);
}

TEST(PaperDataset1Test, SchemaMatchesPaper) {
  const PaperDataset1 ds = MakePaperDataset1(500);
  // One non-spatial attribute (2 values) + 13 spatial predicates.
  EXPECT_EQ(ds.table.NumPredicates(), 15u);
  size_t spatial = 0;
  for (core::ItemId i = 0; i < ds.table.NumPredicates(); ++i) {
    if (ds.table.PredicateAt(i).is_spatial()) ++spatial;
  }
  EXPECT_EQ(spatial, 13u);
  EXPECT_EQ(ds.table.CountSameFeatureTypePairs(), 9u);
  // phi blocks exactly 4 predicate pairs.
  EXPECT_EQ(ds.dependencies.MakeFilter(ds.table.db()).NumPairs(), 4u);
}

TEST(PaperDataset2Test, SchemaMatchesPaper) {
  const auto table = MakePaperDataset2(500);
  EXPECT_EQ(table.NumPredicates(), 10u);
  for (core::ItemId i = 0; i < table.NumPredicates(); ++i) {
    EXPECT_TRUE(table.PredicateAt(i).is_spatial());
  }
  EXPECT_EQ(table.CountSameFeatureTypePairs(), 5u);
}

TEST(PaperDataset1Test, ReductionShapeAtDefaultScale) {
  const PaperDataset1 ds = MakePaperDataset1();
  const auto phi = ds.dependencies.MakeFilter(ds.table.db());
  for (double minsup : {0.05, 0.10, 0.15}) {
    const auto apriori = core::MineApriori(ds.table.db(), minsup);
    const auto kc = core::MineAprioriKC(ds.table.db(), minsup, phi);
    const auto kcplus = core::MineAprioriKCPlus(ds.table.db(), minsup, &phi);
    ASSERT_TRUE(apriori.ok() && kc.ok() && kcplus.ok());

    const double base = static_cast<double>(apriori.value().CountAtLeast(2));
    const double kc_red = 1.0 - kc.value().CountAtLeast(2) / base;
    const double kcp_red = 1.0 - kcplus.value().CountAtLeast(2) / base;
    // Paper Figure 4: KC around 28%, KC+ beyond 60%.
    EXPECT_GT(kc_red, 0.20) << minsup;
    EXPECT_LT(kc_red, 0.40) << minsup;
    EXPECT_GT(kcp_red, 0.55) << minsup;
  }
}

}  // namespace
}  // namespace datagen
}  // namespace sfpm
