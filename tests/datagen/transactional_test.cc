#include "datagen/transactional.h"

#include <gtest/gtest.h>

#include "core/apriori.h"

namespace sfpm {
namespace datagen {
namespace {

TEST(TransactionalTest, RespectsConfig) {
  TransactionalConfig config;
  config.num_transactions = 500;
  config.num_items = 50;
  config.seed = 3;
  const core::TransactionDb db = GenerateTransactional(config);
  EXPECT_EQ(db.NumTransactions(), 500u);
  EXPECT_EQ(db.NumItems(), 50u);
  EXPECT_EQ(db.Label(0), "item0");
  EXPECT_EQ(db.Key(0), "");
}

TEST(TransactionalTest, KeyGroupsAssigned) {
  TransactionalConfig config;
  config.num_transactions = 10;
  config.num_items = 9;
  config.key_group_size = 3;
  const core::TransactionDb db = GenerateTransactional(config);
  EXPECT_EQ(db.Key(0), "type0");
  EXPECT_EQ(db.Key(2), "type0");
  EXPECT_EQ(db.Key(3), "type1");
  EXPECT_EQ(db.Key(8), "type2");
}

TEST(TransactionalTest, Deterministic) {
  TransactionalConfig config;
  config.num_transactions = 100;
  config.num_items = 20;
  const auto a = GenerateTransactional(config);
  const auto b = GenerateTransactional(config);
  for (size_t r = 0; r < a.NumTransactions(); ++r) {
    EXPECT_EQ(a.TransactionItems(r), b.TransactionItems(r));
  }
}

TEST(TransactionalTest, ContainsMineablePatterns) {
  TransactionalConfig config;
  config.num_transactions = 2000;
  config.num_items = 40;
  config.num_patterns = 8;
  config.seed = 11;
  const auto db = GenerateTransactional(config);
  const auto result = core::MineApriori(db, 0.05);
  ASSERT_TRUE(result.ok());
  // Pattern-based data must contain non-trivial co-occurrences.
  EXPECT_GT(result.value().CountAtLeast(2), 10u);
  EXPECT_GE(result.value().MaxItemsetSize(), 3u);
}

TEST(TransactionalTest, TransactionsNonEmpty) {
  TransactionalConfig config;
  config.num_transactions = 200;
  config.num_items = 30;
  const auto db = GenerateTransactional(config);
  for (size_t r = 0; r < db.NumTransactions(); ++r) {
    EXPECT_FALSE(db.TransactionItems(r).empty()) << r;
  }
}

}  // namespace
}  // namespace datagen
}  // namespace sfpm
