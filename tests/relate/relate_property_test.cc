#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.h"
#include "relate/relate.h"
#include "util/random.h"

namespace sfpm {
namespace relate {
namespace {

using geom::Geometry;
using geom::LinearRing;
using geom::LineString;
using geom::Point;
using geom::Polygon;

/// Random star-convex polygon: simple by construction.
Polygon RandomBlob(Rng* rng, double scale) {
  const Point center(rng->NextDouble(-scale, scale),
                     rng->NextDouble(-scale, scale));
  const int n = 4 + static_cast<int>(rng->NextUint64(8));
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    const double angle = 2 * M_PI * i / n;
    const double radius = rng->NextDouble(0.3, 1.0) * scale;
    ring.emplace_back(center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(ring)));
}

LineString RandomPath(Rng* rng, double scale) {
  const int n = 2 + static_cast<int>(rng->NextUint64(5));
  std::vector<Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.emplace_back(rng->NextDouble(-scale, scale),
                     rng->NextDouble(-scale, scale));
  }
  return LineString(std::move(pts));
}

Geometry RandomGeometry(Rng* rng, double scale) {
  switch (rng->NextUint64(3)) {
    case 0:
      return Geometry(Point(rng->NextDouble(-scale, scale),
                            rng->NextDouble(-scale, scale)));
    case 1:
      return Geometry(RandomPath(rng, scale));
    default:
      return Geometry(RandomBlob(rng, scale));
  }
}

class RelatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelatePropertyTest, SwapTransposes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const Geometry a = RandomGeometry(&rng, 5.0);
    const Geometry b = RandomGeometry(&rng, 5.0);
    const IntersectionMatrix ab = Relate(a, b);
    const IntersectionMatrix ba = Relate(b, a);
    EXPECT_EQ(ab.Transposed().ToString(), ba.ToString())
        << a.ToWkt() << " | " << b.ToWkt();
  }
}

TEST_P(RelatePropertyTest, SelfRelateIsEqual) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    const Geometry g = RandomGeometry(&rng, 5.0);
    const IntersectionMatrix m = Relate(g, g);
    EXPECT_TRUE(m.Equals(g.Dimension(), g.Dimension())) << g.ToWkt() << " -> "
                                                        << m.ToString();
  }
}

TEST_P(RelatePropertyTest, DisjointIffPositiveDistance) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 40; ++trial) {
    const Geometry a = RandomGeometry(&rng, 3.0);
    const Geometry b = RandomGeometry(&rng, 3.0);
    const bool disjoint = Relate(a, b).Disjoint();
    const double dist = geom::Distance(a, b);
    // Guard the tolerance band: grazing contacts within 1e-9 of zero are
    // legitimately classified either way by floating point.
    if (dist > 1e-9) {
      EXPECT_TRUE(disjoint) << a.ToWkt() << " | " << b.ToWkt()
                            << " dist=" << dist;
    } else if (dist == 0.0) {
      EXPECT_FALSE(disjoint) << a.ToWkt() << " | " << b.ToWkt();
    }
  }
}

TEST_P(RelatePropertyTest, ContainsImpliesCoversAndIntersects) {
  Rng rng(GetParam() + 3000);
  for (int trial = 0; trial < 40; ++trial) {
    const Geometry a(RandomBlob(&rng, 4.0));
    const Geometry b(RandomBlob(&rng, 2.0));
    const IntersectionMatrix m = Relate(a, b);
    if (m.Contains()) {
      EXPECT_TRUE(m.Covers());
      EXPECT_TRUE(m.Intersects());
    }
    if (m.Within()) {
      EXPECT_TRUE(m.CoveredBy());
    }
    // Exactly one of the four mutually exclusive base cases for areas:
    // disjoint / touches / overlap-or-containment is not exhaustive, but
    // disjoint and intersects are complementary.
    EXPECT_NE(m.Disjoint(), m.Intersects());
  }
}

TEST_P(RelatePropertyTest, ScalingInvariance) {
  Rng rng(GetParam() + 4000);
  for (int trial = 0; trial < 20; ++trial) {
    const Polygon a = RandomBlob(&rng, 2.0);
    const Polygon b = RandomBlob(&rng, 2.0);
    const std::string base = Relate(Geometry(a), Geometry(b)).ToString();

    for (double scale : {1e-3, 1e3}) {
      auto scaled = [scale](const Polygon& p) {
        std::vector<Point> ring;
        for (const Point& v : p.shell().points()) {
          ring.emplace_back(v.x * scale, v.y * scale);
        }
        return Polygon(LinearRing(std::move(ring)));
      };
      EXPECT_EQ(Relate(Geometry(scaled(a)), Geometry(scaled(b))).ToString(),
                base)
          << "scale " << scale;
    }
  }
}

TEST_P(RelatePropertyTest, TranslatedCopiesAreEqual) {
  Rng rng(GetParam() + 5000);
  for (int trial = 0; trial < 20; ++trial) {
    const Polygon a = RandomBlob(&rng, 3.0);
    EXPECT_TRUE(Equals(Geometry(a), Geometry(a)));

    std::vector<Point> moved;
    for (const Point& v : a.shell().points()) {
      moved.emplace_back(v.x + 100.0, v.y);
    }
    const Polygon b((LinearRing(moved)));
    EXPECT_TRUE(Disjoint(Geometry(a), Geometry(b)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelatePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RelateConsistencyTest, GridNeighborsTouch) {
  // A 3x3 tiling: horizontally/vertically adjacent cells touch along an
  // edge (dim 1), diagonal neighbours touch at a corner (dim 0), and all
  // have disjoint interiors.
  Polygon cell[3][3];
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      const double x = c, y = r;
      cell[r][c] = Polygon(LinearRing(
          {{x, y}, {x + 1, y}, {x + 1, y + 1}, {x, y + 1}}));
    }
  }
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      for (int r2 = 0; r2 < 3; ++r2) {
        for (int c2 = 0; c2 < 3; ++c2) {
          if (r == r2 && c == c2) continue;
          const IntersectionMatrix m =
              Relate(Geometry(cell[r][c]), Geometry(cell[r2][c2]));
          const int manhattan = std::abs(r - r2) + std::abs(c - c2);
          if (manhattan == 1) {
            EXPECT_TRUE(m.Touches(2, 2));
            EXPECT_EQ(m.at(IntersectionMatrix::kBoundary,
                           IntersectionMatrix::kBoundary),
                      1);
          } else if (std::abs(r - r2) == 1 && std::abs(c - c2) == 1) {
            EXPECT_TRUE(m.Touches(2, 2));
            EXPECT_EQ(m.at(IntersectionMatrix::kBoundary,
                           IntersectionMatrix::kBoundary),
                      0);
          } else {
            EXPECT_TRUE(m.Disjoint());
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace relate
}  // namespace sfpm
