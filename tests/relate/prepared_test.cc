#include "relate/prepared.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/wkt.h"
#include "relate/relate.h"
#include "util/random.h"

namespace sfpm {
namespace relate {
namespace {

using geom::Geometry;
using geom::LinearRing;
using geom::LineString;
using geom::Point;
using geom::Polygon;

Geometry G(const char* wkt) {
  auto g = geom::ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt;
  return g.value_or(Geometry());
}

Polygon RandomBlob(Rng* rng, double scale, int vertices) {
  const Point center(rng->NextDouble(-scale, scale),
                     rng->NextDouble(-scale, scale));
  std::vector<Point> ring;
  for (int i = 0; i < vertices; ++i) {
    const double angle = 2 * M_PI * i / vertices;
    const double radius = rng->NextDouble(0.4, 1.0) * scale;
    ring.emplace_back(center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(ring)));
}

TEST(PreparedGeometryTest, MatchesPlainRelateOnTextbookCases) {
  const char* polygons[] = {
      "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
      "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))",
      "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))",
      "POLYGON ((10 10, 11 10, 11 11, 10 11, 10 10))",
  };
  const char* others[] = {
      "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))",
      "LINESTRING (-1 1, 5 1)",
      "POINT (1.5 1.5)",
      "MULTIPOINT (0 0, 1.5 0.5, 9 9)",
      "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
  };
  for (const char* pw : polygons) {
    const PreparedGeometry prepared(G(pw));
    for (const char* ow : others) {
      const Geometry other = G(ow);
      EXPECT_EQ(prepared.Relate(other).ToString(),
                Relate(prepared.geometry(), other).ToString())
          << pw << " vs " << ow;
    }
  }
}

TEST(PreparedGeometryTest, LocateMatchesGenericLocate) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Polygon blob = RandomBlob(&rng, 5.0, 24);
    const PreparedGeometry prepared((Geometry(blob)));
    for (int probe = 0; probe < 50; ++probe) {
      const Point p(rng.NextDouble(-7, 7), rng.NextDouble(-7, 7));
      EXPECT_EQ(prepared.Locate(p), geom::Locate(p, prepared.geometry()))
          << p.ToString();
    }
    // Vertices land exactly on the boundary.
    for (const Point& v : blob.shell().points()) {
      EXPECT_EQ(prepared.Locate(v), geom::Location::kBoundary);
    }
  }
}

TEST(PreparedGeometryTest, LocateWithHoles) {
  const PreparedGeometry prepared(
      G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
        " (3 3, 7 3, 7 7, 3 7, 3 3))"));
  EXPECT_EQ(prepared.Locate(Point(1, 1)), geom::Location::kInterior);
  EXPECT_EQ(prepared.Locate(Point(5, 5)), geom::Location::kExterior);
  EXPECT_EQ(prepared.Locate(Point(3, 5)), geom::Location::kBoundary);
  EXPECT_EQ(prepared.Locate(Point(-1, 5)), geom::Location::kExterior);
}

TEST(PreparedGeometryTest, RandomPairsMatchPlainRelate) {
  Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    const Polygon a = RandomBlob(&rng, 4.0, 6 + static_cast<int>(rng.NextUint64(20)));
    const PreparedGeometry prepared((Geometry(a)));
    Geometry other;
    switch (rng.NextUint64(3)) {
      case 0:
        other = Geometry(RandomBlob(&rng, 4.0, 8));
        break;
      case 1: {
        std::vector<Point> pts;
        for (int i = 0; i < 5; ++i) {
          pts.emplace_back(rng.NextDouble(-6, 6), rng.NextDouble(-6, 6));
        }
        other = Geometry(LineString(std::move(pts)));
        break;
      }
      default:
        other = Geometry(Point(rng.NextDouble(-6, 6), rng.NextDouble(-6, 6)));
        break;
    }
    EXPECT_EQ(prepared.Relate(other).ToString(),
              Relate(prepared.geometry(), other).ToString())
        << prepared.geometry().ToWkt() << " vs " << other.ToWkt();
  }
}

TEST(PreparedGeometryTest, PredicateShortcuts) {
  const PreparedGeometry big(G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))"));
  EXPECT_TRUE(big.Contains(G("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))")));
  EXPECT_TRUE(big.Covers(G("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")));
  EXPECT_FALSE(big.Contains(G("POLYGON ((8 8, 12 8, 12 12, 8 12, 8 8))")));
  EXPECT_TRUE(big.Intersects(G("LINESTRING (-1 5, 11 5)")));
  EXPECT_TRUE(big.Disjoint(G("POINT (50 50)")));
  EXPECT_TRUE(big.Touches(G("POLYGON ((10 0, 20 0, 20 10, 10 10, 10 0))")));
  EXPECT_TRUE(
      PreparedGeometry(G("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))"))
          .Within(G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")));
}

TEST(PreparedGeometryTest, NonArealGeometriesStillCorrect) {
  const PreparedGeometry line(G("LINESTRING (0 0, 5 0, 5 5)"));
  EXPECT_EQ(line.Relate(G("LINESTRING (5 0, 5 5)")).ToString(),
            Relate(line.geometry(), G("LINESTRING (5 0, 5 5)")).ToString());
  EXPECT_EQ(line.Locate(Point(2, 0)), geom::Location::kInterior);
  EXPECT_EQ(line.Locate(Point(0, 0)), geom::Location::kBoundary);

  const PreparedGeometry point(G("POINT (1 1)"));
  EXPECT_TRUE(point.Intersects(G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")));
}

TEST(PreparedGeometryTest, EmptyOperands) {
  const PreparedGeometry prepared(G("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"));
  EXPECT_EQ(prepared.Relate(G("POLYGON EMPTY")).ToString(), "FF2FF1FF2");
}

}  // namespace
}  // namespace relate
}  // namespace sfpm
