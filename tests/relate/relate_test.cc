#include "relate/relate.h"

#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace sfpm {
namespace relate {
namespace {

using geom::Geometry;
using geom::ReadWkt;

Geometry G(const char* wkt) {
  auto g = ReadWkt(wkt);
  EXPECT_TRUE(g.ok()) << wkt;
  return g.value_or(Geometry());
}

struct RelateCase {
  const char* name;
  const char* a;
  const char* b;
  const char* matrix;
};

class RelateMatrixTest : public ::testing::TestWithParam<RelateCase> {};

TEST_P(RelateMatrixTest, MatchesExpectedMatrix) {
  const RelateCase& c = GetParam();
  EXPECT_EQ(Relate(G(c.a), G(c.b)).ToString(), c.matrix) << c.name;
}

TEST_P(RelateMatrixTest, SwappedOperandsTranspose) {
  const RelateCase& c = GetParam();
  EXPECT_EQ(Relate(G(c.b), G(c.a)).ToString(),
            IntersectionMatrix::FromString(c.matrix).Transposed().ToString())
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    PolygonPolygon, RelateMatrixTest,
    ::testing::Values(
        RelateCase{"overlap", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                   "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))", "212101212"},
        RelateCase{"within", "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "2FF1FF212"},
        RelateCase{"contains", "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))",
                   "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))", "212FF1FF2"},
        RelateCase{"equals", "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))",
                   "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "2FFF1FFF2"},
        RelateCase{"equals_different_start",
                   "POLYGON ((2 0, 2 2, 0 2, 0 0, 2 0))",
                   "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "2FFF1FFF2"},
        RelateCase{"touch_edge", "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
                   "POLYGON ((1 0, 2 0, 2 1, 1 1, 1 0))", "FF2F11212"},
        RelateCase{"touch_partial_edge",
                   "POLYGON ((0 0, 1 0, 1 3, 0 3, 0 0))",
                   "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))", "FF2F11212"},
        RelateCase{"touch_corner", "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
                   "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))", "FF2F01212"},
        RelateCase{"disjoint", "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
                   "POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))", "FF2FF1212"},
        RelateCase{"coveredby_shared_edge",
                   "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))",
                   "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))", "2FF11F212"},
        RelateCase{"hole_island_disjoint",
                   "POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))",
                   "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
                   " (2 2, 8 2, 8 8, 2 8, 2 2))",
                   "FF2FF1212"},
        RelateCase{"fills_hole_exactly",
                   "POLYGON ((2 2, 8 2, 8 8, 2 8, 2 2))",
                   "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
                   " (2 2, 8 2, 8 8, 2 8, 2 2))",
                   "FF2F1F212"},
        RelateCase{"overlap_through_hole",
                   "POLYGON ((3 3, 7 3, 7 12, 3 12, 3 3))",
                   "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
                   " (4 4, 6 4, 6 6, 4 6, 4 4))",
                   "212101212"}));

INSTANTIATE_TEST_SUITE_P(
    LinePolygon, RelateMatrixTest,
    ::testing::Values(
        RelateCase{"crosses", "LINESTRING (-1 1, 4 1)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "101FF0212"},
        RelateCase{"within", "LINESTRING (1 1, 2 2)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "1FF0FF212"},
        RelateCase{"touch_boundary_point", "LINESTRING (-1 1, 0 1)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "FF1F00212"},
        RelateCase{"along_boundary", "LINESTRING (0 0, 3 0)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "F1FF0F212"},
        RelateCase{"boundary_then_inside", "LINESTRING (0 0, 1 0, 1 1)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "11F00F212"},
        RelateCase{"endpoint_inside", "LINESTRING (-1 1, 1 1)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "1010F0212"},
        RelateCase{"through_hole", "LINESTRING (-1 5, 11 5)",
                   "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
                   " (3 3, 7 3, 7 7, 3 7, 3 3))",
                   "101FF0212"},
        RelateCase{"inside_hole", "LINESTRING (4 4, 6 6)",
                   "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
                   " (3 3, 7 3, 7 7, 3 7, 3 3))",
                   "FF1FF0212"}));

INSTANTIATE_TEST_SUITE_P(
    LineLine, RelateMatrixTest,
    ::testing::Values(
        RelateCase{"cross", "LINESTRING (0 0, 2 2)", "LINESTRING (0 2, 2 0)",
                   "0F1FF0102"},
        RelateCase{"overlap", "LINESTRING (0 0, 2 0)",
                   "LINESTRING (1 0, 3 0)", "1010F0102"},
        RelateCase{"endpoint_touch", "LINESTRING (0 0, 1 0)",
                   "LINESTRING (1 0, 2 0)", "FF1F00102"},
        RelateCase{"equal", "LINESTRING (0 0, 1 0)", "LINESTRING (0 0, 1 0)",
                   "1FFF0FFF2"},
        RelateCase{"equal_reversed", "LINESTRING (0 0, 1 0)",
                   "LINESTRING (1 0, 0 0)", "1FFF0FFF2"},
        RelateCase{"within", "LINESTRING (1 0, 2 0)", "LINESTRING (0 0, 3 0)",
                   "1FF0FF102"},
        RelateCase{"disjoint", "LINESTRING (0 0, 1 0)",
                   "LINESTRING (0 1, 1 1)", "FF1FF0102"},
        // The meeting point is B's *endpoint* (boundary), so it lands in
        // the interior-of-A x boundary-of-B cell, not interior-interior.
        RelateCase{"t_touch_interior", "LINESTRING (0 0, 2 0)",
                   "LINESTRING (1 0, 1 2)", "F01FF0102"},
        RelateCase{"endpoint_on_interior", "LINESTRING (0 0, 2 0)",
                   "LINESTRING (1 0, 3 5)", "F01FF0102"}));

INSTANTIATE_TEST_SUITE_P(
    PointOthers, RelateMatrixTest,
    ::testing::Values(
        RelateCase{"point_in_polygon", "POINT (1 1)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "0FFFFF212"},
        RelateCase{"point_on_polygon_boundary", "POINT (0 1)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "F0FFFF212"},
        RelateCase{"point_outside_polygon", "POINT (9 9)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "FF0FFF212"},
        RelateCase{"point_in_hole", "POINT (5 5)",
                   "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0),"
                   " (3 3, 7 3, 7 7, 3 7, 3 3))",
                   "FF0FFF212"},
        RelateCase{"point_on_line_interior", "POINT (1 0)",
                   "LINESTRING (0 0, 2 0)", "0FFFFF102"},
        RelateCase{"point_on_line_endpoint", "POINT (0 0)",
                   "LINESTRING (0 0, 2 0)", "F0FFFF102"},
        RelateCase{"point_off_line", "POINT (1 1)", "LINESTRING (0 0, 2 0)",
                   "FF0FFF102"},
        RelateCase{"point_equal_point", "POINT (1 1)", "POINT (1 1)",
                   "0FFFFFFF2"},
        RelateCase{"point_disjoint_point", "POINT (1 1)", "POINT (2 2)",
                   "FF0FFF0F2"}));

INSTANTIATE_TEST_SUITE_P(
    MultiGeometry, RelateMatrixTest,
    ::testing::Values(
        RelateCase{"multipoint_spanning", "MULTIPOINT (1 1, 9 9)",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "0F0FFF212"},
        RelateCase{"multipolygon_one_part_overlaps",
                   "MULTIPOLYGON (((0 0, 2 0, 2 2, 0 2, 0 0)),"
                   " ((10 10, 11 10, 11 11, 10 11, 10 10)))",
                   "POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))", "212101212"},
        RelateCase{"multiline_touches_polygon_corner",
                   "MULTILINESTRING ((5 5, 6 6), (-1 -1, 0 0))",
                   "POLYGON ((0 0, 3 0, 3 3, 0 3, 0 0))", "FF1F00212"},
        // The closed line IS the polygon's whole boundary, so the
        // exterior-of-line / boundary-of-polygon cell is empty.
        RelateCase{"closed_ring_line_no_boundary",
                   "LINESTRING (0 0, 1 0, 1 1, 0 1, 0 0)",
                   "POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))", "F1FFFF2F2"},
        // One part strictly inside B, the other far outside.
        RelateCase{"multipolygon_part_in_part_out",
                   "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
                   " ((5 5, 6 5, 6 6, 5 6, 5 5)))",
                   "POLYGON ((-1 -1, 2 -1, 2 2, -1 2, -1 -1))",
                   "2F21F1212"},
        RelateCase{"multipolygon_equals_itself",
                   "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
                   " ((5 5, 6 5, 6 6, 5 6, 5 5)))",
                   "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
                   " ((5 5, 6 5, 6 6, 5 6, 5 5)))",
                   "2FFF1FFF2"},
        RelateCase{"multipolygon_overlapping_one_part",
                   "MULTIPOLYGON (((0 0, 2 0, 2 2, 0 2, 0 0)),"
                   " ((10 10, 11 10, 11 11, 10 11, 10 10)))",
                   "MULTIPOLYGON (((1 1, 3 1, 3 3, 1 3, 1 1)),"
                   " ((20 20, 21 20, 21 21, 20 21, 20 20)))",
                   "212101212"}));

TEST(RelateTest, EmptyGeometries) {
  const Geometry empty = G("POLYGON EMPTY");
  const Geometry square = G("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  EXPECT_EQ(Relate(empty, empty).ToString(), "FFFFFFFF2");
  EXPECT_EQ(Relate(empty, square).ToString(), "FFFFFF212");
  EXPECT_EQ(Relate(square, empty).ToString(), "FF2FF1FF2");
  EXPECT_TRUE(Relate(empty, square).Disjoint());
}

TEST(RelateTest, BoundaryDimensionPerType) {
  EXPECT_EQ(BoundaryDimension(G("POINT (0 0)")), kDimFalse);
  EXPECT_EQ(BoundaryDimension(G("MULTIPOINT (0 0, 1 1)")), kDimFalse);
  EXPECT_EQ(BoundaryDimension(G("LINESTRING (0 0, 1 1)")), 0);
  EXPECT_EQ(BoundaryDimension(G("LINESTRING (0 0, 1 0, 1 1, 0 0)")),
            kDimFalse);
  EXPECT_EQ(BoundaryDimension(G("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))")), 1);
  // Two open curves joined end to end: outer endpoints remain boundary.
  EXPECT_EQ(
      BoundaryDimension(G("MULTILINESTRING ((0 0, 1 0), (1 0, 2 0))")), 0);
  // A closed loop formed by two curves: every endpoint has even degree.
  EXPECT_EQ(BoundaryDimension(
                G("MULTILINESTRING ((0 0, 1 0, 1 1), (1 1, 0 1, 0 0))")),
            kDimFalse);
}

TEST(RelatePredicatesTest, NamedPredicates) {
  const Geometry big = G("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  const Geometry small = G("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))");
  const Geometry far_away = G("POLYGON ((20 20, 21 20, 21 21, 20 21, 20 20))");
  const Geometry line = G("LINESTRING (-5 5, 15 5)");

  EXPECT_TRUE(Contains(big, small));
  EXPECT_TRUE(Within(small, big));
  EXPECT_TRUE(Covers(big, small));
  EXPECT_TRUE(CoveredBy(small, big));
  EXPECT_FALSE(Contains(small, big));
  EXPECT_TRUE(Disjoint(big, far_away));
  EXPECT_FALSE(Intersects(big, far_away));
  EXPECT_TRUE(Crosses(line, big));
  EXPECT_FALSE(Crosses(line, far_away));
  EXPECT_TRUE(Equals(big, big));
  EXPECT_FALSE(Equals(big, small));
  EXPECT_TRUE(Touches(G("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))"),
                      G("POLYGON ((1 0, 2 0, 2 1, 1 1, 1 0))")));
  EXPECT_TRUE(Overlaps(G("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"),
                       G("POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))")));
}

}  // namespace
}  // namespace relate
}  // namespace sfpm
