// Differential testing of the relate engine's area cells against an
// independent Monte Carlo oracle: random probe points classified by the
// (separately tested) point-in-polygon primitive. Sampling witnesses are
// sound one-directionally — a witness proves the cell is dimension 2, and
// an F cell forbids witnesses — which is exactly what is asserted.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.h"
#include "relate/relate.h"
#include "util/random.h"

namespace sfpm {
namespace relate {
namespace {

using geom::Envelope;
using geom::Geometry;
using geom::LinearRing;
using geom::Location;
using geom::Point;
using geom::Polygon;

Polygon RandomBlob(Rng* rng, double scale) {
  const Point center(rng->NextDouble(-scale, scale),
                     rng->NextDouble(-scale, scale));
  const int n = 4 + static_cast<int>(rng->NextUint64(9));
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    const double angle = 2 * M_PI * i / n;
    const double radius = rng->NextDouble(0.3, 1.0) * scale;
    ring.emplace_back(center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(ring)));
}

class RelateMonteCarloTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelateMonteCarloTest, AreaCellsAgreeWithPointSampling) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const Polygon pa = RandomBlob(&rng, 4.0);
    const Polygon pb = RandomBlob(&rng, 4.0);
    const Geometry a(pa), b(pb);
    const IntersectionMatrix m = Relate(a, b);

    Envelope box = a.GetEnvelope();
    box.ExpandToInclude(b.GetEnvelope());
    box = box.Buffered(0.5);

    bool saw_ii = false, saw_ie = false, saw_ei = false;
    for (int probe = 0; probe < 3000; ++probe) {
      const Point p(rng.NextDouble(box.min_x(), box.max_x()),
                    rng.NextDouble(box.min_y(), box.max_y()));
      const Location in_a = geom::LocateInPolygon(p, pa);
      const Location in_b = geom::LocateInPolygon(p, pb);
      if (in_a == Location::kBoundary || in_b == Location::kBoundary) {
        continue;  // Measure-zero set; skip to keep the oracle strict.
      }
      const bool ia = in_a == Location::kInterior;
      const bool ib = in_b == Location::kInterior;
      saw_ii |= ia && ib;
      saw_ie |= ia && !ib;
      saw_ei |= !ia && ib;
    }

    // A witness forces dimension 2; an F cell forbids witnesses. (The
    // reverse direction is left open: a 2 cell with no witness can happen
    // for sliver overlaps the 3000 probes miss.)
    if (saw_ii) {
      EXPECT_EQ(m.at(IntersectionMatrix::kInterior,
                     IntersectionMatrix::kInterior),
                2)
          << a.ToWkt() << " | " << b.ToWkt();
    }
    if (m.at(IntersectionMatrix::kInterior, IntersectionMatrix::kInterior) ==
        kDimFalse) {
      EXPECT_FALSE(saw_ii) << a.ToWkt() << " | " << b.ToWkt();
    }
    if (m.at(IntersectionMatrix::kInterior, IntersectionMatrix::kExterior) ==
        kDimFalse) {
      EXPECT_FALSE(saw_ie) << a.ToWkt() << " | " << b.ToWkt();
    } else if (saw_ie) {
      EXPECT_EQ(m.at(IntersectionMatrix::kInterior,
                     IntersectionMatrix::kExterior),
                2);
    }
    if (m.at(IntersectionMatrix::kExterior, IntersectionMatrix::kInterior) ==
        kDimFalse) {
      EXPECT_FALSE(saw_ei) << a.ToWkt() << " | " << b.ToWkt();
    } else if (saw_ei) {
      EXPECT_EQ(m.at(IntersectionMatrix::kExterior,
                     IntersectionMatrix::kInterior),
                2);
    }
  }
}

TEST_P(RelateMonteCarloTest, NamedPredicatesAgreeWithSampling) {
  Rng rng(GetParam() + 10000);
  for (int trial = 0; trial < 25; ++trial) {
    const Polygon pa = RandomBlob(&rng, 3.0);
    const Polygon pb = RandomBlob(&rng, 3.0);
    const Geometry a(pa), b(pb);
    const IntersectionMatrix m = Relate(a, b);

    // Sample inside A (rejection from its envelope): if Within(A, B),
    // every interior sample of A must be inside B's closure.
    if (m.Within()) {
      const Envelope env = a.GetEnvelope();
      int checked = 0;
      for (int probe = 0; probe < 2000 && checked < 200; ++probe) {
        const Point p(rng.NextDouble(env.min_x(), env.max_x()),
                      rng.NextDouble(env.min_y(), env.max_y()));
        if (geom::LocateInPolygon(p, pa) != Location::kInterior) continue;
        ++checked;
        EXPECT_NE(geom::LocateInPolygon(p, pb), Location::kExterior)
            << a.ToWkt() << " within " << b.ToWkt();
      }
    }
    // Disjoint polygons share no sample point.
    if (m.Disjoint()) {
      Envelope box = a.GetEnvelope();
      box.ExpandToInclude(b.GetEnvelope());
      for (int probe = 0; probe < 1000; ++probe) {
        const Point p(rng.NextDouble(box.min_x(), box.max_x()),
                      rng.NextDouble(box.min_y(), box.max_y()));
        EXPECT_FALSE(
            geom::LocateInPolygon(p, pa) == Location::kInterior &&
            geom::LocateInPolygon(p, pb) == Location::kInterior);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelateMonteCarloTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace relate
}  // namespace sfpm
