// Degenerate-geometry audit, relate side: geometries carrying
// representational degeneracies (repeated vertices, zero-area rings,
// single-point linestrings) are normalized by geom::Normalized before
// they reach the engine, and the normalized form relates identically to
// the hand-written clean form on every path (reference engine, prepared
// full engine, certified fast path).

#include <gtest/gtest.h>

#include <string>

#include "geom/validity.h"
#include "geom/wkt.h"
#include "relate/prepared.h"
#include "relate/relate.h"

namespace sfpm {
namespace relate {
namespace {

geom::Geometry FromWkt(const std::string& wkt) {
  auto r = geom::ReadWkt(wkt);
  EXPECT_TRUE(r.ok()) << wkt << ": " << r.status().message();
  return std::move(r).value();
}

struct DegenerateRelateCase {
  const char* name;
  const char* degenerate;  // Raw input carrying the degeneracy.
  const char* clean;       // Hand-written equivalent.
  const char* probe;       // The other relate operand.
};

class DegenerateRelateTest
    : public ::testing::TestWithParam<DegenerateRelateCase> {};

TEST_P(DegenerateRelateTest, NormalizedFormRelatesLikeCleanForm) {
  const DegenerateRelateCase& c = GetParam();
  const geom::Geometry normalized = geom::Normalized(FromWkt(c.degenerate));
  const geom::Geometry clean = FromWkt(c.clean);
  const geom::Geometry probe = FromWkt(c.probe);
  ASSERT_EQ(normalized, clean) << c.name;

  const IntersectionMatrix expected = Relate(clean, probe);
  EXPECT_EQ(Relate(normalized, probe).ToString(), expected.ToString())
      << c.name;

  const PreparedGeometry prepared(normalized);
  EXPECT_EQ(prepared.Relate(probe).ToString(), expected.ToString())
      << c.name << " (fast path)";
  EXPECT_EQ(prepared.RelateFull(probe).ToString(), expected.ToString())
      << c.name << " (prepared full)";

  // Transposition symmetry holds for the normalized operand too.
  EXPECT_EQ(Relate(probe, normalized).ToString(),
            expected.Transposed().ToString())
      << c.name << " (transpose)";
}

INSTANTIATE_TEST_SUITE_P(
    DegenerateClasses, DegenerateRelateTest,
    ::testing::Values(
        DegenerateRelateCase{
            "repeated_vertex_square_vs_overlapping_square",
            "POLYGON ((0 0, 0 0, 4 0, 4 4, 4 4, 0 4, 0 0))",
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
            "POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))"},
        DegenerateRelateCase{
            "repeated_vertex_square_vs_touching_square",
            "POLYGON ((0 0, 4 0, 4 0, 4 4, 0 4, 0 0))",
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
            "POLYGON ((4 0, 8 0, 8 4, 4 4, 4 0))"},
        DegenerateRelateCase{
            "repeated_vertex_line_vs_crossing_line",
            "LINESTRING (0 0, 2 2, 2 2, 4 4)", "LINESTRING (0 0, 2 2, 4 4)",
            "LINESTRING (0 4, 4 0)"},
        DegenerateRelateCase{"single_point_line_vs_containing_square",
                             "LINESTRING (2 2, 2 2)", "POINT (2 2)",
                             "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"},
        DegenerateRelateCase{"single_point_line_vs_line_through_it",
                             "LINESTRING (2 2, 2 2)", "POINT (2 2)",
                             "LINESTRING (0 0, 4 4)"},
        DegenerateRelateCase{
            "degenerate_hole_square_vs_inner_square",
            "POLYGON ((0 0, 9 0, 9 9, 0 9, 0 0), (3 3, 5 5, 7 7, 3 3))",
            "POLYGON ((0 0, 9 0, 9 9, 0 9, 0 0))",
            "POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))"},
        DegenerateRelateCase{
            "flat_member_multipolygon_vs_disjoint_square",
            "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0)), "
            "((7 7, 8 8, 9 9, 7 7)))",
            "MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4, 0 0)))",
            "POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))"},
        DegenerateRelateCase{
            "duplicate_multipoint_vs_square",
            "MULTIPOINT (1 1, 5 5, 1 1)", "MULTIPOINT (1 1, 5 5)",
            "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))"}),
    [](const ::testing::TestParamInfo<DegenerateRelateCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace relate
}  // namespace sfpm
