#include "relate/intersection_matrix.h"

#include <gtest/gtest.h>

namespace sfpm {
namespace relate {
namespace {

using IM = IntersectionMatrix;

TEST(IntersectionMatrixTest, DefaultAllFalse) {
  IM m;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(m.at(static_cast<IM::Part>(r), static_cast<IM::Part>(c)),
                kDimFalse);
    }
  }
  EXPECT_EQ(m.ToString(), "FFFFFFFFF");
}

TEST(IntersectionMatrixTest, FromStringRoundTrip) {
  for (const char* pattern : {"212101212", "FF2FF1212", "0FFFFF212",
                              "2FFF1FFF2", "FFFFFFFFF"}) {
    EXPECT_EQ(IM::FromString(pattern).ToString(), pattern);
  }
}

TEST(IntersectionMatrixTest, UpgradeToNeverLowers) {
  IM m;
  m.UpgradeTo(IM::kInterior, IM::kInterior, 1);
  EXPECT_EQ(m.at(IM::kInterior, IM::kInterior), 1);
  m.UpgradeTo(IM::kInterior, IM::kInterior, 0);
  EXPECT_EQ(m.at(IM::kInterior, IM::kInterior), 1);
  m.UpgradeTo(IM::kInterior, IM::kInterior, 2);
  EXPECT_EQ(m.at(IM::kInterior, IM::kInterior), 2);
}

TEST(IntersectionMatrixTest, PatternMatching) {
  const IM m = IM::FromString("212101212");
  EXPECT_TRUE(m.Matches("*********"));
  EXPECT_TRUE(m.Matches("212101212"));
  EXPECT_TRUE(m.Matches("T*T***T**"));
  EXPECT_FALSE(m.Matches("FF*FF****"));
  EXPECT_FALSE(m.Matches("112101212"));
  EXPECT_TRUE(IM::FromString("FFFFFFFF0").Matches("FF*FF***0"));
}

TEST(IntersectionMatrixTest, TransposedSwapsOperands) {
  const IM m = IM::FromString("012F1F2F2");
  const IM t = m.Transposed();
  EXPECT_EQ(t.ToString(), "0F211F2F2");
  EXPECT_EQ(t.Transposed(), m);
}

TEST(IntersectionMatrixTest, DisjointPredicate) {
  EXPECT_TRUE(IM::FromString("FF2FF1212").Disjoint());
  EXPECT_FALSE(IM::FromString("212101212").Disjoint());
  EXPECT_TRUE(IM::FromString("212101212").Intersects());
}

TEST(IntersectionMatrixTest, EqualsRequiresSameDimension) {
  const IM m = IM::FromString("2FFF1FFF2");
  EXPECT_TRUE(m.Equals(2, 2));
  EXPECT_FALSE(m.Equals(1, 2));
}

TEST(IntersectionMatrixTest, WithinAndContainsAreTransposes) {
  const IM within = IM::FromString("2FF1FF212");
  EXPECT_TRUE(within.Within());
  EXPECT_FALSE(within.Contains());
  EXPECT_TRUE(within.Transposed().Contains());
}

TEST(IntersectionMatrixTest, CoversAcceptsBoundaryOnlyContainment) {
  // A polygon covering another that shares part of its boundary.
  const IM m = IM::FromString("212FF1FF2");
  EXPECT_TRUE(m.Covers());
  EXPECT_TRUE(m.Contains());
  // Line on polygon boundary: covered but interior-disjoint.
  const IM edge = IM::FromString("F1FF0FFF2").Transposed();
  EXPECT_TRUE(edge.Covers() || edge.Transposed().CoveredBy());
}

TEST(IntersectionMatrixTest, TouchesNeverForPointPoint) {
  const IM m = IM::FromString("FF0FFFFF2");
  EXPECT_FALSE(m.Touches(0, 0));
}

TEST(IntersectionMatrixTest, TouchesBoundaryOnly) {
  EXPECT_TRUE(IM::FromString("FF2F11212").Touches(2, 2));
  EXPECT_FALSE(IM::FromString("212101212").Touches(2, 2));
}

TEST(IntersectionMatrixTest, CrossesByDimension) {
  // Line crossing polygon.
  EXPECT_TRUE(IM::FromString("101FF0212").Crosses(1, 2));
  // Polygon crossed by line (transposed).
  EXPECT_TRUE(IM::FromString("101FF0212").Transposed().Crosses(2, 1));
  // Two lines crossing in a point.
  EXPECT_TRUE(IM::FromString("0F1FF0102").Crosses(1, 1));
  // Equal-dimension areas never cross.
  EXPECT_FALSE(IM::FromString("212101212").Crosses(2, 2));
}

TEST(IntersectionMatrixTest, OverlapsByDimension) {
  EXPECT_TRUE(IM::FromString("212101212").Overlaps(2, 2));
  EXPECT_TRUE(IM::FromString("1010F0102").Overlaps(1, 1));
  // Lines crossing at a point do not overlap (intersection dim 0 != 1).
  EXPECT_FALSE(IM::FromString("0F1FF0102").Overlaps(1, 1));
  // Mixed dimensions never overlap.
  EXPECT_FALSE(IM::FromString("101FF0212").Overlaps(1, 2));
}

}  // namespace
}  // namespace relate
}  // namespace sfpm
