#include <gtest/gtest.h>

#include <cmath>

#include "geom/algorithms.h"
#include "geom/transform.h"
#include "relate/prepared.h"
#include "relate/relate.h"
#include "util/random.h"

namespace sfpm {
namespace relate {
namespace {

using geom::Geometry;
using geom::LinearRing;
using geom::LineString;
using geom::Point;
using geom::Polygon;

/// Star-convex blob with a concentric hole: the donut shape that stresses
/// every exterior-component code path of the engine.
Polygon Donut(Rng* rng, const Point& center, double radius) {
  const int n = 6 + static_cast<int>(rng->NextUint64(10));
  std::vector<Point> shell, hole;
  std::vector<double> radii;
  for (int i = 0; i < n; ++i) {
    radii.push_back(rng->NextDouble(0.6, 1.0) * radius);
  }
  for (int i = 0; i < n; ++i) {
    const double angle = 2 * M_PI * i / n;
    shell.emplace_back(center.x + radii[i] * std::cos(angle),
                       center.y + radii[i] * std::sin(angle));
    // Hole strictly inside: same star, one third the radius.
    hole.emplace_back(center.x + radii[i] / 3.0 * std::cos(angle),
                      center.y + radii[i] / 3.0 * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(shell)), {LinearRing(std::move(hole))});
}

Geometry RandomProbe(Rng* rng, double scale) {
  switch (rng->NextUint64(3)) {
    case 0:
      return Geometry(Point(rng->NextDouble(-scale, scale),
                            rng->NextDouble(-scale, scale)));
    case 1: {
      std::vector<Point> pts;
      const int n = 2 + static_cast<int>(rng->NextUint64(4));
      for (int i = 0; i < n; ++i) {
        pts.emplace_back(rng->NextDouble(-scale, scale),
                         rng->NextDouble(-scale, scale));
      }
      return Geometry(LineString(std::move(pts)));
    }
    default:
      return Geometry(Donut(rng, Point(rng->NextDouble(-scale, scale),
                                       rng->NextDouble(-scale, scale)),
                            rng->NextDouble(1.0, scale)));
  }
}

class RelateHolesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelateHolesPropertyTest, TransposeConsistencyWithHoles) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const Geometry a(Donut(&rng, Point(0, 0), 4.0));
    const Geometry b = RandomProbe(&rng, 5.0);
    EXPECT_EQ(Relate(a, b).Transposed().ToString(), Relate(b, a).ToString())
        << a.ToWkt() << " | " << b.ToWkt();
  }
}

TEST_P(RelateHolesPropertyTest, PreparedMatchesPlainWithHoles) {
  Rng rng(GetParam() + 500);
  for (int trial = 0; trial < 30; ++trial) {
    const Geometry a(Donut(&rng, Point(0, 0), 4.0));
    const PreparedGeometry prepared(a);
    const Geometry b = RandomProbe(&rng, 5.0);
    EXPECT_EQ(prepared.Relate(b).ToString(), Relate(a, b).ToString())
        << a.ToWkt() << " | " << b.ToWkt();
  }
}

TEST_P(RelateHolesPropertyTest, SelfEqualityWithHoles) {
  Rng rng(GetParam() + 900);
  for (int trial = 0; trial < 20; ++trial) {
    const Geometry a(Donut(&rng, Point(1, -2), 3.0));
    EXPECT_TRUE(Relate(a, a).Equals(2, 2)) << a.ToWkt();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelateHolesPropertyTest,
                         ::testing::Values(21u, 22u, 23u));

TEST(RelateHolesTest, IslandInHoleConfigurations) {
  Rng rng(31);
  const Polygon donut = Donut(&rng, Point(0, 0), 6.0);
  const Geometry donut_geom(donut);

  // A tiny square at the donut's centre sits inside the hole: disjoint,
  // but at zero envelope separation.
  const Geometry island(
      Polygon(LinearRing({{-0.1, -0.1}, {0.1, -0.1}, {0.1, 0.1}, {-0.1, 0.1}})));
  EXPECT_TRUE(Relate(donut_geom, island).Disjoint());
  EXPECT_GT(geom::Distance(donut_geom, island), 0.0);

  // A line from the hole to the outside must cross the ring's interior.
  const Geometry spoke(LineString({{0, 0}, {12, 0}}));
  const IntersectionMatrix m = Relate(spoke, donut_geom);
  EXPECT_TRUE(m.Crosses(1, 2));
  // The line passes through hole (exterior), annulus (interior) and the
  // unbounded outside: interior evidence in every column.
  EXPECT_EQ(m.at(IntersectionMatrix::kInterior, IntersectionMatrix::kInterior),
            1);
  EXPECT_EQ(m.at(IntersectionMatrix::kInterior, IntersectionMatrix::kExterior),
            1);
  EXPECT_EQ(m.at(IntersectionMatrix::kInterior, IntersectionMatrix::kBoundary),
            0);
}

TEST(RelateHolesTest, ScaledCopyInsideHoleOrContaining) {
  Rng rng(37);
  const Polygon donut = Donut(&rng, Point(0, 0), 6.0);
  const Geometry a(donut);
  // A 10x blow-up of the donut contains the original entirely (the
  // original sits inside the scaled hole? no — scaling the whole donut
  // about its centre scales the hole too; the original's shell lies in
  // the scaled annulus region or the scaled hole; verify with the engine
  // and cross-check both directions agree).
  const Geometry big = geom::Scale(a, 10.0, Point(0, 0));
  const IntersectionMatrix ab = Relate(a, big);
  EXPECT_EQ(ab.Transposed().ToString(), Relate(big, a).ToString());
}

}  // namespace
}  // namespace relate
}  // namespace sfpm
