#include <gtest/gtest.h>

#include <vector>

#include "datagen/city.h"
#include "feature/feature.h"
#include "relate/prepared.h"
#include "relate/relate.h"
#include "util/random.h"

namespace sfpm {
namespace relate {
namespace {

// Differential test of the certified relate fast path: on ~1k random city
// pairs spanning every geometry-type combination (polygon, line, point on
// both sides), PreparedGeometry::Relate must agree cell for cell with
// both its own full engine (RelateFull) and the plain two-argument
// relate::Relate. The city generator produces the adversarial cases that
// matter — adjacent districts sharing borders (boundary misses), slums
// inside districts (contains), points on either side, rivers crossing
// everything.
TEST(PreparedFastPathTest, MatchesFullEngineOnCityPairs) {
  datagen::CityConfig config;
  config.grid_cols = 5;
  config.grid_rows = 4;
  config.num_slums = 20;
  config.num_slum_clusters = 4;
  config.num_schools = 30;
  config.num_police = 10;
  config.num_streets = 25;
  config.illumination_per_street = 2;
  config.num_rivers = 2;
  config.seed = 20070806;
  const auto city = datagen::GenerateCity(config);

  const std::vector<const feature::Layer*> layers = {
      &city->districts, &city->slums,        &city->schools, &city->police,
      &city->streets,   &city->illumination, &city->rivers};

  Rng rng(42);
  RelateStats stats;
  size_t pairs = 0;
  for (const feature::Layer* la : layers) {
    for (const feature::Layer* lb : layers) {
      for (int s = 0; s < 21; ++s) {
        const feature::Feature& fa =
            la->features()[rng.NextUint64(la->Size())];
        const feature::Feature& fb =
            lb->features()[rng.NextUint64(lb->Size())];
        const PreparedGeometry prepared(fa.geometry());
        const PreparedGeometry prepared_b(fb.geometry());
        const IntersectionMatrix fast =
            prepared.Relate(fb.geometry(), &stats);
        const IntersectionMatrix full = prepared.RelateFull(fb.geometry());
        const IntersectionMatrix plain =
            relate::Relate(fa.geometry(), fb.geometry());
        ASSERT_EQ(fast, full)
            << la->feature_type() << fa.id() << " vs " << lb->feature_type()
            << fb.id() << ": fast " << fast.ToString() << " full "
            << full.ToString();
        ASSERT_EQ(fast, plain)
            << la->feature_type() << fa.id() << " vs " << lb->feature_type()
            << fb.id() << ": fast " << fast.ToString() << " plain "
            << plain.ToString();
        // The prepared-vs-prepared overloads (the extractor's hot form)
        // must match the geometry-operand forms exactly.
        ASSERT_EQ(prepared.Relate(prepared_b), fast)
            << la->feature_type() << fa.id() << " vs " << lb->feature_type()
            << fb.id() << " (prepared operand)";
        ASSERT_EQ(prepared.RelateFull(prepared_b), full)
            << la->feature_type() << fa.id() << " vs " << lb->feature_type()
            << fb.id() << " (prepared operand, full engine)";
        ++pairs;
      }
    }
  }

  EXPECT_EQ(pairs, static_cast<size_t>(21 * 7 * 7));
  EXPECT_EQ(stats.calls, pairs);
  EXPECT_EQ(stats.fast_hits() + stats.misses(), stats.calls);
  // The sweep must actually exercise both sides of the split, or it
  // proves nothing about either.
  EXPECT_GT(stats.fast_disjoint, 0u);
  EXPECT_GT(stats.miss_boundary, 0u);
}

// Same differential sweep on a densified city (boundary_detail > 1, the
// benches' paper-scale shape): many collinear vertices per edge push
// segment counts past the transient-preparation threshold, exercising
// the indexed operand locate and the candidate-pair collection on
// realistic linework densities.
TEST(PreparedFastPathTest, MatchesFullEngineOnDensifiedCityPairs) {
  datagen::CityConfig config;
  config.grid_cols = 3;
  config.grid_rows = 3;
  config.num_slums = 8;
  config.num_slum_clusters = 2;
  config.num_schools = 10;
  config.num_police = 4;
  config.num_streets = 8;
  config.illumination_per_street = 2;
  config.num_rivers = 1;
  config.boundary_detail = 8;
  config.seed = 19091;
  const auto city = datagen::GenerateCity(config);

  const std::vector<const feature::Layer*> layers = {
      &city->districts, &city->slums, &city->streets, &city->rivers,
      &city->schools};

  Rng rng(7);
  RelateStats stats;
  for (const feature::Layer* la : layers) {
    for (const feature::Layer* lb : layers) {
      for (int s = 0; s < 5; ++s) {
        const feature::Feature& fa =
            la->features()[rng.NextUint64(la->Size())];
        const feature::Feature& fb =
            lb->features()[rng.NextUint64(lb->Size())];
        const PreparedGeometry prepared(fa.geometry());
        const PreparedGeometry prepared_b(fb.geometry());
        const IntersectionMatrix plain =
            relate::Relate(fa.geometry(), fb.geometry());
        ASSERT_EQ(prepared.Relate(prepared_b, &stats), plain)
            << la->feature_type() << fa.id() << " vs " << lb->feature_type()
            << fb.id();
        ASSERT_EQ(prepared.RelateFull(prepared_b), plain)
            << la->feature_type() << fa.id() << " vs " << lb->feature_type()
            << fb.id() << " (full engine)";
      }
    }
  }
  EXPECT_GT(stats.fast_hits(), 0u);
  EXPECT_GT(stats.misses(), 0u);
}

// Containment certificates on the natural pairs: a district related
// against the city's point and polygon layers hits the contains branch,
// and the transposed pair hits the within branch.
TEST(PreparedFastPathTest, ContainsAndWithinCertificatesFire) {
  datagen::CityConfig config;
  config.grid_cols = 4;
  config.grid_rows = 4;
  config.seed = 7;
  const auto city = datagen::GenerateCity(config);

  RelateStats forward_stats;
  RelateStats reverse_stats;
  for (const feature::Feature& district : city->districts.features()) {
    const PreparedGeometry prepared(district.geometry());
    for (const feature::Layer* layer :
         {&city->schools, &city->police, &city->slums}) {
      for (const feature::Feature& other : layer->features()) {
        ASSERT_EQ(prepared.Relate(other.geometry(), &forward_stats),
                  relate::Relate(district.geometry(), other.geometry()));
      }
    }
    for (const feature::Feature& school : city->schools.features()) {
      const PreparedGeometry point(school.geometry());
      ASSERT_EQ(point.Relate(district.geometry(), &reverse_stats),
                relate::Relate(school.geometry(), district.geometry()));
    }
  }
  EXPECT_GT(forward_stats.fast_contains, 0u);
  EXPECT_GT(reverse_stats.fast_within, 0u);
}

}  // namespace
}  // namespace relate
}  // namespace sfpm
