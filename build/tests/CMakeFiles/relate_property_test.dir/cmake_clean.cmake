file(REMOVE_RECURSE
  "CMakeFiles/relate_property_test.dir/relate/relate_property_test.cc.o"
  "CMakeFiles/relate_property_test.dir/relate/relate_property_test.cc.o.d"
  "relate_property_test"
  "relate_property_test.pdb"
  "relate_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relate_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
