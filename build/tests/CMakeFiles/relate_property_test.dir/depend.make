# Empty dependencies file for relate_property_test.
# This may be replaced when dependencies are built.
