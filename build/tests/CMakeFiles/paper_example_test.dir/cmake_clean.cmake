file(REMOVE_RECURSE
  "CMakeFiles/paper_example_test.dir/paper/paper_example_test.cc.o"
  "CMakeFiles/paper_example_test.dir/paper/paper_example_test.cc.o.d"
  "paper_example_test"
  "paper_example_test.pdb"
  "paper_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
