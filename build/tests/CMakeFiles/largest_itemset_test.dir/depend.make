# Empty dependencies file for largest_itemset_test.
# This may be replaced when dependencies are built.
