file(REMOVE_RECURSE
  "CMakeFiles/largest_itemset_test.dir/stats/largest_itemset_test.cc.o"
  "CMakeFiles/largest_itemset_test.dir/stats/largest_itemset_test.cc.o.d"
  "largest_itemset_test"
  "largest_itemset_test.pdb"
  "largest_itemset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/largest_itemset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
