file(REMOVE_RECURSE
  "CMakeFiles/rcc8_solver_test.dir/qsr/rcc8_solver_test.cc.o"
  "CMakeFiles/rcc8_solver_test.dir/qsr/rcc8_solver_test.cc.o.d"
  "rcc8_solver_test"
  "rcc8_solver_test.pdb"
  "rcc8_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rcc8_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
