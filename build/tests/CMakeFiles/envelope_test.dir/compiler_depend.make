# Empty compiler generated dependencies file for envelope_test.
# This may be replaced when dependencies are built.
