file(REMOVE_RECURSE
  "CMakeFiles/envelope_test.dir/geom/envelope_test.cc.o"
  "CMakeFiles/envelope_test.dir/geom/envelope_test.cc.o.d"
  "envelope_test"
  "envelope_test.pdb"
  "envelope_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envelope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
