file(REMOVE_RECURSE
  "CMakeFiles/colocation_test.dir/coloc/colocation_test.cc.o"
  "CMakeFiles/colocation_test.dir/coloc/colocation_test.cc.o.d"
  "colocation_test"
  "colocation_test.pdb"
  "colocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
