# Empty compiler generated dependencies file for colocation_test.
# This may be replaced when dependencies are built.
