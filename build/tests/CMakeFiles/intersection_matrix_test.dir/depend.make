# Empty dependencies file for intersection_matrix_test.
# This may be replaced when dependencies are built.
