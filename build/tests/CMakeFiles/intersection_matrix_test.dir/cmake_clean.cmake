file(REMOVE_RECURSE
  "CMakeFiles/intersection_matrix_test.dir/relate/intersection_matrix_test.cc.o"
  "CMakeFiles/intersection_matrix_test.dir/relate/intersection_matrix_test.cc.o.d"
  "intersection_matrix_test"
  "intersection_matrix_test.pdb"
  "intersection_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersection_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
