# Empty dependencies file for relate_montecarlo_test.
# This may be replaced when dependencies are built.
