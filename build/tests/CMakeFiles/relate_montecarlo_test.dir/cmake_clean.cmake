file(REMOVE_RECURSE
  "CMakeFiles/relate_montecarlo_test.dir/relate/relate_montecarlo_test.cc.o"
  "CMakeFiles/relate_montecarlo_test.dir/relate/relate_montecarlo_test.cc.o.d"
  "relate_montecarlo_test"
  "relate_montecarlo_test.pdb"
  "relate_montecarlo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relate_montecarlo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
