file(REMOVE_RECURSE
  "CMakeFiles/prepared_test.dir/relate/prepared_test.cc.o"
  "CMakeFiles/prepared_test.dir/relate/prepared_test.cc.o.d"
  "prepared_test"
  "prepared_test.pdb"
  "prepared_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
