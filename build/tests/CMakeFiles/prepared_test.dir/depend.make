# Empty dependencies file for prepared_test.
# This may be replaced when dependencies are built.
