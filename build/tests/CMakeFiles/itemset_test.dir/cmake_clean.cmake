file(REMOVE_RECURSE
  "CMakeFiles/itemset_test.dir/core/itemset_test.cc.o"
  "CMakeFiles/itemset_test.dir/core/itemset_test.cc.o.d"
  "itemset_test"
  "itemset_test.pdb"
  "itemset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itemset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
