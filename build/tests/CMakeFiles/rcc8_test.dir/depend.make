# Empty dependencies file for rcc8_test.
# This may be replaced when dependencies are built.
