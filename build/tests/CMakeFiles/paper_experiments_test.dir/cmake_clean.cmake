file(REMOVE_RECURSE
  "CMakeFiles/paper_experiments_test.dir/paper/paper_experiments_test.cc.o"
  "CMakeFiles/paper_experiments_test.dir/paper/paper_experiments_test.cc.o.d"
  "paper_experiments_test"
  "paper_experiments_test.pdb"
  "paper_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
