# Empty dependencies file for paper_experiments_test.
# This may be replaced when dependencies are built.
