file(REMOVE_RECURSE
  "CMakeFiles/validity_test.dir/geom/validity_test.cc.o"
  "CMakeFiles/validity_test.dir/geom/validity_test.cc.o.d"
  "validity_test"
  "validity_test.pdb"
  "validity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
