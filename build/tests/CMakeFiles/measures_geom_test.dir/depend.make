# Empty dependencies file for measures_geom_test.
# This may be replaced when dependencies are built.
