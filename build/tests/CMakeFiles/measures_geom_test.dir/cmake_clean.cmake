file(REMOVE_RECURSE
  "CMakeFiles/measures_geom_test.dir/geom/measures_geom_test.cc.o"
  "CMakeFiles/measures_geom_test.dir/geom/measures_geom_test.cc.o.d"
  "measures_geom_test"
  "measures_geom_test.pdb"
  "measures_geom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measures_geom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
