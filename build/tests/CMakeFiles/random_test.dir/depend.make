# Empty dependencies file for random_test.
# This may be replaced when dependencies are built.
