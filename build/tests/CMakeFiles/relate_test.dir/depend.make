# Empty dependencies file for relate_test.
# This may be replaced when dependencies are built.
