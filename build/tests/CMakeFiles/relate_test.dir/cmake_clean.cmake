file(REMOVE_RECURSE
  "CMakeFiles/relate_test.dir/relate/relate_test.cc.o"
  "CMakeFiles/relate_test.dir/relate/relate_test.cc.o.d"
  "relate_test"
  "relate_test.pdb"
  "relate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
