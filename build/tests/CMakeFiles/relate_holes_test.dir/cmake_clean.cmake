file(REMOVE_RECURSE
  "CMakeFiles/relate_holes_test.dir/relate/relate_holes_test.cc.o"
  "CMakeFiles/relate_holes_test.dir/relate/relate_holes_test.cc.o.d"
  "relate_holes_test"
  "relate_holes_test.pdb"
  "relate_holes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relate_holes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
