# Empty compiler generated dependencies file for relate_holes_test.
# This may be replaced when dependencies are built.
