# Empty dependencies file for transactional_test.
# This may be replaced when dependencies are built.
