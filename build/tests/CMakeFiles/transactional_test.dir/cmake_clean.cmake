file(REMOVE_RECURSE
  "CMakeFiles/transactional_test.dir/datagen/transactional_test.cc.o"
  "CMakeFiles/transactional_test.dir/datagen/transactional_test.cc.o.d"
  "transactional_test"
  "transactional_test.pdb"
  "transactional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transactional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
