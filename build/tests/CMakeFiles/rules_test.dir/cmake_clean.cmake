file(REMOVE_RECURSE
  "CMakeFiles/rules_test.dir/core/rules_test.cc.o"
  "CMakeFiles/rules_test.dir/core/rules_test.cc.o.d"
  "rules_test"
  "rules_test.pdb"
  "rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
