# Empty dependencies file for apriori_test.
# This may be replaced when dependencies are built.
