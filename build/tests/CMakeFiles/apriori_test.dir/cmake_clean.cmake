file(REMOVE_RECURSE
  "CMakeFiles/apriori_test.dir/core/apriori_test.cc.o"
  "CMakeFiles/apriori_test.dir/core/apriori_test.cc.o.d"
  "apriori_test"
  "apriori_test.pdb"
  "apriori_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apriori_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
