# Empty dependencies file for mining_stats_test.
# This may be replaced when dependencies are built.
