file(REMOVE_RECURSE
  "CMakeFiles/mining_stats_test.dir/core/mining_stats_test.cc.o"
  "CMakeFiles/mining_stats_test.dir/core/mining_stats_test.cc.o.d"
  "mining_stats_test"
  "mining_stats_test.pdb"
  "mining_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
