file(REMOVE_RECURSE
  "CMakeFiles/predicate_table_test.dir/feature/predicate_table_test.cc.o"
  "CMakeFiles/predicate_table_test.dir/feature/predicate_table_test.cc.o.d"
  "predicate_table_test"
  "predicate_table_test.pdb"
  "predicate_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicate_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
