# Empty dependencies file for predicate_table_test.
# This may be replaced when dependencies are built.
