# Empty dependencies file for dependency_test.
# This may be replaced when dependencies are built.
