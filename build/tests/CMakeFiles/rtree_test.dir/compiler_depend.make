# Empty compiler generated dependencies file for rtree_test.
# This may be replaced when dependencies are built.
