file(REMOVE_RECURSE
  "CMakeFiles/gain_test.dir/stats/gain_test.cc.o"
  "CMakeFiles/gain_test.dir/stats/gain_test.cc.o.d"
  "gain_test"
  "gain_test.pdb"
  "gain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
