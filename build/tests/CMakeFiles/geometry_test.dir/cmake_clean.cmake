file(REMOVE_RECURSE
  "CMakeFiles/geometry_test.dir/geom/geometry_test.cc.o"
  "CMakeFiles/geometry_test.dir/geom/geometry_test.cc.o.d"
  "geometry_test"
  "geometry_test.pdb"
  "geometry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geometry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
