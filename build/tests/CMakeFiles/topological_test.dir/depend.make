# Empty dependencies file for topological_test.
# This may be replaced when dependencies are built.
