file(REMOVE_RECURSE
  "CMakeFiles/topological_test.dir/qsr/topological_test.cc.o"
  "CMakeFiles/topological_test.dir/qsr/topological_test.cc.o.d"
  "topological_test"
  "topological_test.pdb"
  "topological_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topological_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
