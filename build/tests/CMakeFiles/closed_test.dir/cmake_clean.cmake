file(REMOVE_RECURSE
  "CMakeFiles/closed_test.dir/core/closed_test.cc.o"
  "CMakeFiles/closed_test.dir/core/closed_test.cc.o.d"
  "closed_test"
  "closed_test.pdb"
  "closed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
