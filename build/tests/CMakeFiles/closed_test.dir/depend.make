# Empty dependencies file for closed_test.
# This may be replaced when dependencies are built.
