file(REMOVE_RECURSE
  "CMakeFiles/fpgrowth_test.dir/core/fpgrowth_test.cc.o"
  "CMakeFiles/fpgrowth_test.dir/core/fpgrowth_test.cc.o.d"
  "fpgrowth_test"
  "fpgrowth_test.pdb"
  "fpgrowth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpgrowth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
