# Empty dependencies file for fpgrowth_test.
# This may be replaced when dependencies are built.
