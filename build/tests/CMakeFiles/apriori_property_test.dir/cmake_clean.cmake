file(REMOVE_RECURSE
  "CMakeFiles/apriori_property_test.dir/core/apriori_property_test.cc.o"
  "CMakeFiles/apriori_property_test.dir/core/apriori_property_test.cc.o.d"
  "apriori_property_test"
  "apriori_property_test.pdb"
  "apriori_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apriori_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
