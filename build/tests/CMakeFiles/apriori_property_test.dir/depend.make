# Empty dependencies file for apriori_property_test.
# This may be replaced when dependencies are built.
