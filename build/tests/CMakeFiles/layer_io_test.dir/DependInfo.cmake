
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/layer_io_test.cc" "tests/CMakeFiles/layer_io_test.dir/io/layer_io_test.cc.o" "gcc" "tests/CMakeFiles/layer_io_test.dir/io/layer_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/sfpm_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sfpm_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sfpm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/coloc/CMakeFiles/sfpm_coloc.dir/DependInfo.cmake"
  "/root/repo/build/src/feature/CMakeFiles/sfpm_feature.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sfpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qsr/CMakeFiles/sfpm_qsr.dir/DependInfo.cmake"
  "/root/repo/build/src/relate/CMakeFiles/sfpm_relate.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sfpm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sfpm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
