file(REMOVE_RECURSE
  "CMakeFiles/layer_io_test.dir/io/layer_io_test.cc.o"
  "CMakeFiles/layer_io_test.dir/io/layer_io_test.cc.o.d"
  "layer_io_test"
  "layer_io_test.pdb"
  "layer_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
