# Empty dependencies file for layer_io_test.
# This may be replaced when dependencies are built.
