# Empty dependencies file for algorithms_test.
# This may be replaced when dependencies are built.
