file(REMOVE_RECURSE
  "CMakeFiles/algorithms_test.dir/geom/algorithms_test.cc.o"
  "CMakeFiles/algorithms_test.dir/geom/algorithms_test.cc.o.d"
  "algorithms_test"
  "algorithms_test.pdb"
  "algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
