file(REMOVE_RECURSE
  "CMakeFiles/wkt_test.dir/geom/wkt_test.cc.o"
  "CMakeFiles/wkt_test.dir/geom/wkt_test.cc.o.d"
  "wkt_test"
  "wkt_test.pdb"
  "wkt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wkt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
