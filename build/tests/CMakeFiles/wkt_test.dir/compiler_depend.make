# Empty compiler generated dependencies file for wkt_test.
# This may be replaced when dependencies are built.
