# Empty dependencies file for distance_test.
# This may be replaced when dependencies are built.
