file(REMOVE_RECURSE
  "CMakeFiles/transaction_db_test.dir/core/transaction_db_test.cc.o"
  "CMakeFiles/transaction_db_test.dir/core/transaction_db_test.cc.o.d"
  "transaction_db_test"
  "transaction_db_test.pdb"
  "transaction_db_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
