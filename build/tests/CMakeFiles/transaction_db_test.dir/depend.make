# Empty dependencies file for transaction_db_test.
# This may be replaced when dependencies are built.
