file(REMOVE_RECURSE
  "CMakeFiles/city_test.dir/datagen/city_test.cc.o"
  "CMakeFiles/city_test.dir/datagen/city_test.cc.o.d"
  "city_test"
  "city_test.pdb"
  "city_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
