# Empty compiler generated dependencies file for city_test.
# This may be replaced when dependencies are built.
