# Empty dependencies file for table_io_test.
# This may be replaced when dependencies are built.
