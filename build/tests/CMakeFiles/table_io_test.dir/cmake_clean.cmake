file(REMOVE_RECURSE
  "CMakeFiles/table_io_test.dir/io/table_io_test.cc.o"
  "CMakeFiles/table_io_test.dir/io/table_io_test.cc.o.d"
  "table_io_test"
  "table_io_test.pdb"
  "table_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
