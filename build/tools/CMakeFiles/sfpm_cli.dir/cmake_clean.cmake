file(REMOVE_RECURSE
  "CMakeFiles/sfpm_cli.dir/sfpm_cli.cc.o"
  "CMakeFiles/sfpm_cli.dir/sfpm_cli.cc.o.d"
  "sfpm"
  "sfpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
