# Empty dependencies file for sfpm_cli.
# This may be replaced when dependencies are built.
