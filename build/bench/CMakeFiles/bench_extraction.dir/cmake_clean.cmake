file(REMOVE_RECURSE
  "CMakeFiles/bench_extraction.dir/bench_extraction.cc.o"
  "CMakeFiles/bench_extraction.dir/bench_extraction.cc.o.d"
  "bench_extraction"
  "bench_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
