# Empty dependencies file for bench_extraction.
# This may be replaced when dependencies are built.
