# Empty compiler generated dependencies file for bench_figure6_7.
# This may be replaced when dependencies are built.
