file(REMOVE_RECURSE
  "CMakeFiles/bench_figure6_7.dir/bench_figure6_7.cc.o"
  "CMakeFiles/bench_figure6_7.dir/bench_figure6_7.cc.o.d"
  "bench_figure6_7"
  "bench_figure6_7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6_7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
