# Empty compiler generated dependencies file for bench_rtree.
# This may be replaced when dependencies are built.
