file(REMOVE_RECURSE
  "CMakeFiles/bench_prepared.dir/bench_prepared.cc.o"
  "CMakeFiles/bench_prepared.dir/bench_prepared.cc.o.d"
  "bench_prepared"
  "bench_prepared.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prepared.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
