# Empty compiler generated dependencies file for bench_prepared.
# This may be replaced when dependencies are built.
