# Empty compiler generated dependencies file for bench_figure4_5.
# This may be replaced when dependencies are built.
