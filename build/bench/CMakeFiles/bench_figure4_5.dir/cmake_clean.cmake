file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_5.dir/bench_figure4_5.cc.o"
  "CMakeFiles/bench_figure4_5.dir/bench_figure4_5.cc.o.d"
  "bench_figure4_5"
  "bench_figure4_5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
