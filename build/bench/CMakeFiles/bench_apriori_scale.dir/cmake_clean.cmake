file(REMOVE_RECURSE
  "CMakeFiles/bench_apriori_scale.dir/bench_apriori_scale.cc.o"
  "CMakeFiles/bench_apriori_scale.dir/bench_apriori_scale.cc.o.d"
  "bench_apriori_scale"
  "bench_apriori_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_apriori_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
