# Empty compiler generated dependencies file for bench_apriori_scale.
# This may be replaced when dependencies are built.
