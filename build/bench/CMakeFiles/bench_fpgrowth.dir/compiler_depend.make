# Empty compiler generated dependencies file for bench_fpgrowth.
# This may be replaced when dependencies are built.
