file(REMOVE_RECURSE
  "CMakeFiles/bench_fpgrowth.dir/bench_fpgrowth.cc.o"
  "CMakeFiles/bench_fpgrowth.dir/bench_fpgrowth.cc.o.d"
  "bench_fpgrowth"
  "bench_fpgrowth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpgrowth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
