# Empty dependencies file for bench_table3_figure3.
# This may be replaced when dependencies are built.
