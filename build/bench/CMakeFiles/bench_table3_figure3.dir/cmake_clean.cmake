file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_figure3.dir/bench_table3_figure3.cc.o"
  "CMakeFiles/bench_table3_figure3.dir/bench_table3_figure3.cc.o.d"
  "bench_table3_figure3"
  "bench_table3_figure3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_figure3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
