file(REMOVE_RECURSE
  "CMakeFiles/bench_relate.dir/bench_relate.cc.o"
  "CMakeFiles/bench_relate.dir/bench_relate.cc.o.d"
  "bench_relate"
  "bench_relate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
