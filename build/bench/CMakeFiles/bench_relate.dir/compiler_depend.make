# Empty compiler generated dependencies file for bench_relate.
# This may be replaced when dependencies are built.
