# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crime_analysis "/root/repo/build/examples/crime_analysis")
set_tests_properties(example_crime_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hydrology "/root/repo/build/examples/hydrology")
set_tests_properties(example_hydrology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qsr_reasoning "/root/repo/build/examples/qsr_reasoning")
set_tests_properties(example_qsr_reasoning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multilevel_granularity "/root/repo/build/examples/multilevel_granularity")
set_tests_properties(example_multilevel_granularity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_colocation_comparison "/root/repo/build/examples/colocation_comparison")
set_tests_properties(example_colocation_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
