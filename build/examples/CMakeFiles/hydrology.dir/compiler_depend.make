# Empty compiler generated dependencies file for hydrology.
# This may be replaced when dependencies are built.
