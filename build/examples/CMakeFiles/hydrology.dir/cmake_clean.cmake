file(REMOVE_RECURSE
  "CMakeFiles/hydrology.dir/hydrology.cc.o"
  "CMakeFiles/hydrology.dir/hydrology.cc.o.d"
  "hydrology"
  "hydrology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hydrology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
