file(REMOVE_RECURSE
  "CMakeFiles/colocation_comparison.dir/colocation_comparison.cc.o"
  "CMakeFiles/colocation_comparison.dir/colocation_comparison.cc.o.d"
  "colocation_comparison"
  "colocation_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocation_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
