# Empty dependencies file for colocation_comparison.
# This may be replaced when dependencies are built.
