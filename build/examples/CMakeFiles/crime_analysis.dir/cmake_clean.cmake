file(REMOVE_RECURSE
  "CMakeFiles/crime_analysis.dir/crime_analysis.cc.o"
  "CMakeFiles/crime_analysis.dir/crime_analysis.cc.o.d"
  "crime_analysis"
  "crime_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crime_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
