# Empty dependencies file for crime_analysis.
# This may be replaced when dependencies are built.
