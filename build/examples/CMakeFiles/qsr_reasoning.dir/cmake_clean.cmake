file(REMOVE_RECURSE
  "CMakeFiles/qsr_reasoning.dir/qsr_reasoning.cc.o"
  "CMakeFiles/qsr_reasoning.dir/qsr_reasoning.cc.o.d"
  "qsr_reasoning"
  "qsr_reasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsr_reasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
