# Empty dependencies file for qsr_reasoning.
# This may be replaced when dependencies are built.
