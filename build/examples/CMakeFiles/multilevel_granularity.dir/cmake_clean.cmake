file(REMOVE_RECURSE
  "CMakeFiles/multilevel_granularity.dir/multilevel_granularity.cc.o"
  "CMakeFiles/multilevel_granularity.dir/multilevel_granularity.cc.o.d"
  "multilevel_granularity"
  "multilevel_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilevel_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
