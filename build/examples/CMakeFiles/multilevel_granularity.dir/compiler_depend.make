# Empty compiler generated dependencies file for multilevel_granularity.
# This may be replaced when dependencies are built.
