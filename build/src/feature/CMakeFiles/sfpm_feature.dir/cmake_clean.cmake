file(REMOVE_RECURSE
  "CMakeFiles/sfpm_feature.dir/dependency.cc.o"
  "CMakeFiles/sfpm_feature.dir/dependency.cc.o.d"
  "CMakeFiles/sfpm_feature.dir/extractor.cc.o"
  "CMakeFiles/sfpm_feature.dir/extractor.cc.o.d"
  "CMakeFiles/sfpm_feature.dir/feature.cc.o"
  "CMakeFiles/sfpm_feature.dir/feature.cc.o.d"
  "CMakeFiles/sfpm_feature.dir/pipeline.cc.o"
  "CMakeFiles/sfpm_feature.dir/pipeline.cc.o.d"
  "CMakeFiles/sfpm_feature.dir/predicate.cc.o"
  "CMakeFiles/sfpm_feature.dir/predicate.cc.o.d"
  "CMakeFiles/sfpm_feature.dir/predicate_table.cc.o"
  "CMakeFiles/sfpm_feature.dir/predicate_table.cc.o.d"
  "CMakeFiles/sfpm_feature.dir/taxonomy.cc.o"
  "CMakeFiles/sfpm_feature.dir/taxonomy.cc.o.d"
  "libsfpm_feature.a"
  "libsfpm_feature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_feature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
