
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/feature/dependency.cc" "src/feature/CMakeFiles/sfpm_feature.dir/dependency.cc.o" "gcc" "src/feature/CMakeFiles/sfpm_feature.dir/dependency.cc.o.d"
  "/root/repo/src/feature/extractor.cc" "src/feature/CMakeFiles/sfpm_feature.dir/extractor.cc.o" "gcc" "src/feature/CMakeFiles/sfpm_feature.dir/extractor.cc.o.d"
  "/root/repo/src/feature/feature.cc" "src/feature/CMakeFiles/sfpm_feature.dir/feature.cc.o" "gcc" "src/feature/CMakeFiles/sfpm_feature.dir/feature.cc.o.d"
  "/root/repo/src/feature/pipeline.cc" "src/feature/CMakeFiles/sfpm_feature.dir/pipeline.cc.o" "gcc" "src/feature/CMakeFiles/sfpm_feature.dir/pipeline.cc.o.d"
  "/root/repo/src/feature/predicate.cc" "src/feature/CMakeFiles/sfpm_feature.dir/predicate.cc.o" "gcc" "src/feature/CMakeFiles/sfpm_feature.dir/predicate.cc.o.d"
  "/root/repo/src/feature/predicate_table.cc" "src/feature/CMakeFiles/sfpm_feature.dir/predicate_table.cc.o" "gcc" "src/feature/CMakeFiles/sfpm_feature.dir/predicate_table.cc.o.d"
  "/root/repo/src/feature/taxonomy.cc" "src/feature/CMakeFiles/sfpm_feature.dir/taxonomy.cc.o" "gcc" "src/feature/CMakeFiles/sfpm_feature.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sfpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qsr/CMakeFiles/sfpm_qsr.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sfpm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/relate/CMakeFiles/sfpm_relate.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sfpm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
