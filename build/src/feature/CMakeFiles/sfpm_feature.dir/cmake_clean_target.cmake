file(REMOVE_RECURSE
  "libsfpm_feature.a"
)
