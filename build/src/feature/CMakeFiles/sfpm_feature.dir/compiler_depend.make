# Empty compiler generated dependencies file for sfpm_feature.
# This may be replaced when dependencies are built.
