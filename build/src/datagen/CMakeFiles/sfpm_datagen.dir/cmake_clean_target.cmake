file(REMOVE_RECURSE
  "libsfpm_datagen.a"
)
