# Empty compiler generated dependencies file for sfpm_datagen.
# This may be replaced when dependencies are built.
