file(REMOVE_RECURSE
  "CMakeFiles/sfpm_datagen.dir/city.cc.o"
  "CMakeFiles/sfpm_datagen.dir/city.cc.o.d"
  "CMakeFiles/sfpm_datagen.dir/paper_example.cc.o"
  "CMakeFiles/sfpm_datagen.dir/paper_example.cc.o.d"
  "CMakeFiles/sfpm_datagen.dir/synthetic_predicates.cc.o"
  "CMakeFiles/sfpm_datagen.dir/synthetic_predicates.cc.o.d"
  "CMakeFiles/sfpm_datagen.dir/transactional.cc.o"
  "CMakeFiles/sfpm_datagen.dir/transactional.cc.o.d"
  "libsfpm_datagen.a"
  "libsfpm_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
