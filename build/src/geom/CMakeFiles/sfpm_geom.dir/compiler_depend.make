# Empty compiler generated dependencies file for sfpm_geom.
# This may be replaced when dependencies are built.
