file(REMOVE_RECURSE
  "libsfpm_geom.a"
)
