file(REMOVE_RECURSE
  "CMakeFiles/sfpm_geom.dir/algorithms.cc.o"
  "CMakeFiles/sfpm_geom.dir/algorithms.cc.o.d"
  "CMakeFiles/sfpm_geom.dir/geometry.cc.o"
  "CMakeFiles/sfpm_geom.dir/geometry.cc.o.d"
  "CMakeFiles/sfpm_geom.dir/transform.cc.o"
  "CMakeFiles/sfpm_geom.dir/transform.cc.o.d"
  "CMakeFiles/sfpm_geom.dir/validity.cc.o"
  "CMakeFiles/sfpm_geom.dir/validity.cc.o.d"
  "CMakeFiles/sfpm_geom.dir/wkt.cc.o"
  "CMakeFiles/sfpm_geom.dir/wkt.cc.o.d"
  "libsfpm_geom.a"
  "libsfpm_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
