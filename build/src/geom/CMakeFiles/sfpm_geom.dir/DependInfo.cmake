
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/algorithms.cc" "src/geom/CMakeFiles/sfpm_geom.dir/algorithms.cc.o" "gcc" "src/geom/CMakeFiles/sfpm_geom.dir/algorithms.cc.o.d"
  "/root/repo/src/geom/geometry.cc" "src/geom/CMakeFiles/sfpm_geom.dir/geometry.cc.o" "gcc" "src/geom/CMakeFiles/sfpm_geom.dir/geometry.cc.o.d"
  "/root/repo/src/geom/transform.cc" "src/geom/CMakeFiles/sfpm_geom.dir/transform.cc.o" "gcc" "src/geom/CMakeFiles/sfpm_geom.dir/transform.cc.o.d"
  "/root/repo/src/geom/validity.cc" "src/geom/CMakeFiles/sfpm_geom.dir/validity.cc.o" "gcc" "src/geom/CMakeFiles/sfpm_geom.dir/validity.cc.o.d"
  "/root/repo/src/geom/wkt.cc" "src/geom/CMakeFiles/sfpm_geom.dir/wkt.cc.o" "gcc" "src/geom/CMakeFiles/sfpm_geom.dir/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
