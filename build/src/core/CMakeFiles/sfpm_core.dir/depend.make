# Empty dependencies file for sfpm_core.
# This may be replaced when dependencies are built.
