file(REMOVE_RECURSE
  "CMakeFiles/sfpm_core.dir/apriori.cc.o"
  "CMakeFiles/sfpm_core.dir/apriori.cc.o.d"
  "CMakeFiles/sfpm_core.dir/candidate_filter.cc.o"
  "CMakeFiles/sfpm_core.dir/candidate_filter.cc.o.d"
  "CMakeFiles/sfpm_core.dir/closed.cc.o"
  "CMakeFiles/sfpm_core.dir/closed.cc.o.d"
  "CMakeFiles/sfpm_core.dir/fpgrowth.cc.o"
  "CMakeFiles/sfpm_core.dir/fpgrowth.cc.o.d"
  "CMakeFiles/sfpm_core.dir/itemset.cc.o"
  "CMakeFiles/sfpm_core.dir/itemset.cc.o.d"
  "CMakeFiles/sfpm_core.dir/measures.cc.o"
  "CMakeFiles/sfpm_core.dir/measures.cc.o.d"
  "CMakeFiles/sfpm_core.dir/rules.cc.o"
  "CMakeFiles/sfpm_core.dir/rules.cc.o.d"
  "CMakeFiles/sfpm_core.dir/transaction_db.cc.o"
  "CMakeFiles/sfpm_core.dir/transaction_db.cc.o.d"
  "libsfpm_core.a"
  "libsfpm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
