file(REMOVE_RECURSE
  "libsfpm_core.a"
)
