
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/apriori.cc" "src/core/CMakeFiles/sfpm_core.dir/apriori.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/apriori.cc.o.d"
  "/root/repo/src/core/candidate_filter.cc" "src/core/CMakeFiles/sfpm_core.dir/candidate_filter.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/candidate_filter.cc.o.d"
  "/root/repo/src/core/closed.cc" "src/core/CMakeFiles/sfpm_core.dir/closed.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/closed.cc.o.d"
  "/root/repo/src/core/fpgrowth.cc" "src/core/CMakeFiles/sfpm_core.dir/fpgrowth.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/fpgrowth.cc.o.d"
  "/root/repo/src/core/itemset.cc" "src/core/CMakeFiles/sfpm_core.dir/itemset.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/itemset.cc.o.d"
  "/root/repo/src/core/measures.cc" "src/core/CMakeFiles/sfpm_core.dir/measures.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/measures.cc.o.d"
  "/root/repo/src/core/rules.cc" "src/core/CMakeFiles/sfpm_core.dir/rules.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/rules.cc.o.d"
  "/root/repo/src/core/transaction_db.cc" "src/core/CMakeFiles/sfpm_core.dir/transaction_db.cc.o" "gcc" "src/core/CMakeFiles/sfpm_core.dir/transaction_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sfpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
