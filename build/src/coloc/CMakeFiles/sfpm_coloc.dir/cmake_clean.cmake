file(REMOVE_RECURSE
  "CMakeFiles/sfpm_coloc.dir/colocation.cc.o"
  "CMakeFiles/sfpm_coloc.dir/colocation.cc.o.d"
  "libsfpm_coloc.a"
  "libsfpm_coloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_coloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
