file(REMOVE_RECURSE
  "libsfpm_coloc.a"
)
