# Empty dependencies file for sfpm_coloc.
# This may be replaced when dependencies are built.
