file(REMOVE_RECURSE
  "libsfpm_io.a"
)
