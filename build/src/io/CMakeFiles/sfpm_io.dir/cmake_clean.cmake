file(REMOVE_RECURSE
  "CMakeFiles/sfpm_io.dir/csv.cc.o"
  "CMakeFiles/sfpm_io.dir/csv.cc.o.d"
  "CMakeFiles/sfpm_io.dir/geojson.cc.o"
  "CMakeFiles/sfpm_io.dir/geojson.cc.o.d"
  "CMakeFiles/sfpm_io.dir/layer_io.cc.o"
  "CMakeFiles/sfpm_io.dir/layer_io.cc.o.d"
  "CMakeFiles/sfpm_io.dir/table_io.cc.o"
  "CMakeFiles/sfpm_io.dir/table_io.cc.o.d"
  "libsfpm_io.a"
  "libsfpm_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
