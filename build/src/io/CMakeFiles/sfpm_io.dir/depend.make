# Empty dependencies file for sfpm_io.
# This may be replaced when dependencies are built.
