
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/grid.cc" "src/index/CMakeFiles/sfpm_index.dir/grid.cc.o" "gcc" "src/index/CMakeFiles/sfpm_index.dir/grid.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/index/CMakeFiles/sfpm_index.dir/rtree.cc.o" "gcc" "src/index/CMakeFiles/sfpm_index.dir/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/sfpm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
