file(REMOVE_RECURSE
  "CMakeFiles/sfpm_index.dir/grid.cc.o"
  "CMakeFiles/sfpm_index.dir/grid.cc.o.d"
  "CMakeFiles/sfpm_index.dir/rtree.cc.o"
  "CMakeFiles/sfpm_index.dir/rtree.cc.o.d"
  "libsfpm_index.a"
  "libsfpm_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
