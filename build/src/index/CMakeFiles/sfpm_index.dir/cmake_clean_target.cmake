file(REMOVE_RECURSE
  "libsfpm_index.a"
)
