# Empty compiler generated dependencies file for sfpm_index.
# This may be replaced when dependencies are built.
