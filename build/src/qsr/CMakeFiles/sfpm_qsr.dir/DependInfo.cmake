
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qsr/direction.cc" "src/qsr/CMakeFiles/sfpm_qsr.dir/direction.cc.o" "gcc" "src/qsr/CMakeFiles/sfpm_qsr.dir/direction.cc.o.d"
  "/root/repo/src/qsr/distance.cc" "src/qsr/CMakeFiles/sfpm_qsr.dir/distance.cc.o" "gcc" "src/qsr/CMakeFiles/sfpm_qsr.dir/distance.cc.o.d"
  "/root/repo/src/qsr/rcc8.cc" "src/qsr/CMakeFiles/sfpm_qsr.dir/rcc8.cc.o" "gcc" "src/qsr/CMakeFiles/sfpm_qsr.dir/rcc8.cc.o.d"
  "/root/repo/src/qsr/topological.cc" "src/qsr/CMakeFiles/sfpm_qsr.dir/topological.cc.o" "gcc" "src/qsr/CMakeFiles/sfpm_qsr.dir/topological.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relate/CMakeFiles/sfpm_relate.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/sfpm_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sfpm_index.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
