file(REMOVE_RECURSE
  "libsfpm_qsr.a"
)
