file(REMOVE_RECURSE
  "CMakeFiles/sfpm_qsr.dir/direction.cc.o"
  "CMakeFiles/sfpm_qsr.dir/direction.cc.o.d"
  "CMakeFiles/sfpm_qsr.dir/distance.cc.o"
  "CMakeFiles/sfpm_qsr.dir/distance.cc.o.d"
  "CMakeFiles/sfpm_qsr.dir/rcc8.cc.o"
  "CMakeFiles/sfpm_qsr.dir/rcc8.cc.o.d"
  "CMakeFiles/sfpm_qsr.dir/topological.cc.o"
  "CMakeFiles/sfpm_qsr.dir/topological.cc.o.d"
  "libsfpm_qsr.a"
  "libsfpm_qsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_qsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
