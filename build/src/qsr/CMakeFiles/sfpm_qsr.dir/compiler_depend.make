# Empty compiler generated dependencies file for sfpm_qsr.
# This may be replaced when dependencies are built.
