file(REMOVE_RECURSE
  "libsfpm_relate.a"
)
