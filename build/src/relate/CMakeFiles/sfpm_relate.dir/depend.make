# Empty dependencies file for sfpm_relate.
# This may be replaced when dependencies are built.
