file(REMOVE_RECURSE
  "CMakeFiles/sfpm_relate.dir/intersection_matrix.cc.o"
  "CMakeFiles/sfpm_relate.dir/intersection_matrix.cc.o.d"
  "CMakeFiles/sfpm_relate.dir/prepared.cc.o"
  "CMakeFiles/sfpm_relate.dir/prepared.cc.o.d"
  "CMakeFiles/sfpm_relate.dir/relate.cc.o"
  "CMakeFiles/sfpm_relate.dir/relate.cc.o.d"
  "libsfpm_relate.a"
  "libsfpm_relate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_relate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
