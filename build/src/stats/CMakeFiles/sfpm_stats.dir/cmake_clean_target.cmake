file(REMOVE_RECURSE
  "libsfpm_stats.a"
)
