# Empty compiler generated dependencies file for sfpm_stats.
# This may be replaced when dependencies are built.
