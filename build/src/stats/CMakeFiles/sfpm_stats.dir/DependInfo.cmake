
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/gain.cc" "src/stats/CMakeFiles/sfpm_stats.dir/gain.cc.o" "gcc" "src/stats/CMakeFiles/sfpm_stats.dir/gain.cc.o.d"
  "/root/repo/src/stats/largest_itemset.cc" "src/stats/CMakeFiles/sfpm_stats.dir/largest_itemset.cc.o" "gcc" "src/stats/CMakeFiles/sfpm_stats.dir/largest_itemset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sfpm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfpm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
