file(REMOVE_RECURSE
  "CMakeFiles/sfpm_stats.dir/gain.cc.o"
  "CMakeFiles/sfpm_stats.dir/gain.cc.o.d"
  "CMakeFiles/sfpm_stats.dir/largest_itemset.cc.o"
  "CMakeFiles/sfpm_stats.dir/largest_itemset.cc.o.d"
  "libsfpm_stats.a"
  "libsfpm_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
