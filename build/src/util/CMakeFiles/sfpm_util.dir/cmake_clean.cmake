file(REMOVE_RECURSE
  "CMakeFiles/sfpm_util.dir/random.cc.o"
  "CMakeFiles/sfpm_util.dir/random.cc.o.d"
  "CMakeFiles/sfpm_util.dir/status.cc.o"
  "CMakeFiles/sfpm_util.dir/status.cc.o.d"
  "CMakeFiles/sfpm_util.dir/strings.cc.o"
  "CMakeFiles/sfpm_util.dir/strings.cc.o.d"
  "libsfpm_util.a"
  "libsfpm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
