file(REMOVE_RECURSE
  "libsfpm_util.a"
)
