# Empty compiler generated dependencies file for sfpm_util.
# This may be replaced when dependencies are built.
