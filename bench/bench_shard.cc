// A/B benchmark of tile-sharded extraction (docs/SHARDING.md): one
// single-shard extract of a scale-3 city against the same extract split
// into 4 tile stages plus the merge. The identity gate runs before any
// verdict — the merged table must be byte-identical to the single-shard
// table, so a speedup can never come from a changed answer.
//
// The headline number is the *critical-path* speedup
//
//   T(single shard) / (max over tiles T(tile) + T(merge))
//
// i.e. the wall-clock ratio a run with one worker per tile achieves.
// Tiles are timed one at a time (this container pins the process to a
// single core, so timing them concurrently would measure scheduler
// interleaving, not the stages); the tile stages are embarrassingly
// parallel by construction — separate processes over separate files —
// which is what `sfpm run --shards=N --threads=N` exploits on real
// hardware. Per-stage T is the median over repeats: on a shared core
// individual samples carry a heavy right tail from scheduler
// interference (p95 runs 20-30% above p50 while the work counters are
// bit-identical every repeat), and the mean of a short sample set
// inherits that tail. Means, percentiles and raw samples all land in
// the JSON. The acceptance floor on the critical path is 2x; the
// expectation at 4 tiles is >= 3x (tiles also shrink the R-tree join
// surface, so the sum of tile times stays close to the single-shard
// time).
//
//   bench_shard [--repeat=N] [--json=bench/BENCH_shard.json]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/city.h"
#include "datagen/tiles.h"
#include "store/merge.h"
#include "store/pipeline.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using sfpm::bench::Bench;
using sfpm::bench::CaseResult;
using sfpm::store::ExtractConfig;
using sfpm::store::SnapshotReader;
using sfpm::store::SnapshotWriter;

constexpr int kScale = 3;
constexpr int kShards = 4;

void Die(const std::string& what) {
  std::fprintf(stderr, "bench_shard: %s\n", what.c_str());
  std::exit(1);
}

/// The predicate-table section bytes of a txdb snapshot — the
/// manifest-independent payload the identity gate compares.
std::string TableBytes(const std::string& path) {
  auto reader = SnapshotReader::Open(path);
  if (!reader.ok()) Die("cannot open " + path + ": " + reader.status().message());
  auto info = reader.value().Find(sfpm::store::SectionType::kTransactionDb);
  if (!info.ok()) Die(path + " has no txdb section");
  auto table = reader.value().ReadTable(info.value());
  if (!table.ok()) Die(path + " table unreadable: " + table.status().message());
  SnapshotWriter w;
  w.AddTable(table.value());
  return w.Serialize();
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench("shard", argc, argv);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "sfpm_bench_shard").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string city_path = dir + "/city.sfpm";
  const std::string single_path = dir + "/txdb_single.sfpm";
  const std::string merged_path = dir + "/txdb_merged.sfpm";

  const sfpm::datagen::CityConfig config =
      sfpm::datagen::ScaledCityConfig(sfpm::datagen::CityConfig{}, kScale);
  if (!sfpm::store::RunGenerateCityStage(config, city_path).ok()) {
    Die("generate-city failed");
  }
  ExtractConfig extract;
  extract.threads = 1;  // Serial stages: per-stage times, not scheduling.

  // The tile layout, recomputed exactly as the pipeline driver does.
  const std::unique_ptr<sfpm::datagen::City> city =
      sfpm::datagen::GenerateCity(config);
  const std::vector<sfpm::datagen::Tile> tiles =
      sfpm::datagen::PartitionReference(city->districts, kShards);
  if (tiles.size() != static_cast<size_t>(kShards)) {
    Die("expected " + std::to_string(kShards) + " non-empty tiles, got " +
        std::to_string(tiles.size()));
  }
  auto city_hash_or = sfpm::store::SnapshotContentHash(city_path);
  if (!city_hash_or.ok()) Die("cannot hash " + city_path);
  const uint64_t city_hash = city_hash_or.value();

  const CaseResult& single = bench.Run(
      "extract/single_shard",
      {{"scale", std::to_string(kScale)}, {"districts",
        std::to_string(city->districts.Size())}},
      [&](CaseResult&) {
        if (!sfpm::store::RunExtractStage(city_path, single_path, extract)
                 .ok()) {
          Die("single-shard extract failed");
        }
      });

  double max_tile_ms = 0.0;
  double sum_tile_ms = 0.0;
  std::vector<std::string> tile_paths;
  for (const sfpm::datagen::Tile& tile : tiles) {
    const sfpm::store::TileSpec spec{tile.slot, kShards};
    const std::string out = sfpm::store::TileSnapshotPath(merged_path, spec);
    tile_paths.push_back(out);
    const CaseResult& r = bench.Run(
        "extract/tile" + std::to_string(tile.slot) + "of" +
            std::to_string(kShards),
        {{"rows", std::to_string(tile.refs.size())}},
        [&](CaseResult&) {
          if (!sfpm::store::RunExtractTileStage(city_path, out, extract, spec)
                   .ok()) {
            Die("tile extract failed");
          }
        });
    max_tile_ms = std::max(max_tile_ms, r.PercentileMs(0.5));
    sum_tile_ms += r.PercentileMs(0.5);
  }

  CaseResult& merge = bench.Run(
      "merge", {{"tiles", std::to_string(tiles.size())}},
      [&](CaseResult&) {
        std::vector<sfpm::store::TileTable> loaded;
        for (size_t i = 0; i < tiles.size(); ++i) {
          auto tile = sfpm::store::LoadTileTable(
              tile_paths[i],
              sfpm::store::ExtractTileInputHash(
                  extract, city_hash, {tiles[i].slot, kShards}));
          if (!tile.ok()) Die("merge load: " + tile.status().message());
          loaded.push_back(std::move(tile).value());
        }
        auto merged = sfpm::store::MergeTileTables(
            loaded, city->districts.Size());
        if (!merged.ok()) Die("merge: " + merged.status().message());
        SnapshotWriter w;
        w.AddTable(merged.value());
        if (!w.WriteTo(merged_path).ok()) Die("merge write failed");
      });

  // Identity gate: a speedup from different bytes is no speedup.
  if (TableBytes(merged_path) != TableBytes(single_path)) {
    Die("identity gate: merged table differs from single-shard table");
  }
  std::printf("identity gate: merged == single shard, byte for byte\n");

  const double critical_ms = max_tile_ms + merge.PercentileMs(0.5);
  const double speedup = single.PercentileMs(0.5) / critical_ms;
  const double overhead = sum_tile_ms / single.PercentileMs(0.5);
  merge.counters["speedup_critical_path"] = speedup;
  merge.counters["critical_path_ms"] = critical_ms;
  merge.counters["tile_work_ratio"] = overhead;
  std::printf(
      "critical path %.1f ms vs single shard %.1f ms (medians) -> %.2fx "
      "speedup (tile work sum = %.2fx of single shard)\n",
      critical_ms, single.PercentileMs(0.5), speedup, overhead);
  if (speedup < 2.0) {
    Die("critical-path speedup " + std::to_string(speedup) +
        "x is below the 2x acceptance floor");
  }

  std::filesystem::remove_all(dir);
  return bench.Finish();
}
