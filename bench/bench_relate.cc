// Substrate benchmark: DE-9IM relate throughput per geometry type pair,
// as a function of vertex count. Not a paper figure; validates that the
// predicate-extraction substrate is fast enough for city-scale joins.

#include <benchmark/benchmark.h>

#include <cmath>

#include "geom/algorithms.h"
#include "relate/relate.h"
#include "util/random.h"

namespace {

using sfpm::Rng;
using sfpm::geom::Geometry;
using sfpm::geom::LinearRing;
using sfpm::geom::LineString;
using sfpm::geom::Point;
using sfpm::geom::Polygon;

Polygon Blob(Rng* rng, const Point& center, double radius, int vertices) {
  std::vector<Point> ring;
  for (int i = 0; i < vertices; ++i) {
    const double angle = 2 * M_PI * i / vertices;
    const double r = radius * rng->NextDouble(0.7, 1.3);
    ring.emplace_back(center.x + r * std::cos(angle),
                      center.y + r * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(ring)));
}

LineString Path(Rng* rng, int vertices) {
  std::vector<Point> pts;
  Point p(rng->NextDouble(-5, 5), rng->NextDouble(-5, 5));
  for (int i = 0; i < vertices; ++i) {
    p.x += rng->NextDouble(-1, 1);
    p.y += rng->NextDouble(-1, 1);
    pts.push_back(p);
  }
  return LineString(std::move(pts));
}

void BM_Relate_PolygonPolygon(benchmark::State& state) {
  Rng rng(1);
  const int vertices = static_cast<int>(state.range(0));
  const Geometry a(Blob(&rng, Point(0, 0), 3.0, vertices));
  const Geometry b(Blob(&rng, Point(1.5, 0), 3.0, vertices));
  for (auto _ : state) {
    auto m = sfpm::relate::Relate(a, b);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Relate_PolygonPolygon)->Arg(8)->Arg(32)->Arg(128);

void BM_Relate_LinePolygon(benchmark::State& state) {
  Rng rng(2);
  const int vertices = static_cast<int>(state.range(0));
  const Geometry line(Path(&rng, vertices));
  const Geometry poly(Blob(&rng, Point(0, 0), 4.0, vertices));
  for (auto _ : state) {
    auto m = sfpm::relate::Relate(line, poly);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Relate_LinePolygon)->Arg(8)->Arg(32)->Arg(128);

void BM_Relate_PointPolygon(benchmark::State& state) {
  Rng rng(3);
  const int vertices = static_cast<int>(state.range(0));
  const Geometry point(Point(0.5, 0.5));
  const Geometry poly(Blob(&rng, Point(0, 0), 4.0, vertices));
  for (auto _ : state) {
    auto m = sfpm::relate::Relate(point, poly);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Relate_PointPolygon)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_Relate_LineLine(benchmark::State& state) {
  Rng rng(4);
  const int vertices = static_cast<int>(state.range(0));
  const Geometry a(Path(&rng, vertices));
  const Geometry b(Path(&rng, vertices));
  for (auto _ : state) {
    auto m = sfpm::relate::Relate(a, b);
    benchmark::DoNotOptimize(m);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Relate_LineLine)->Arg(8)->Arg(32)->Arg(128);

void BM_Distance_PolygonPolygon(benchmark::State& state) {
  Rng rng(5);
  const int vertices = static_cast<int>(state.range(0));
  const Geometry a(Blob(&rng, Point(0, 0), 2.0, vertices));
  const Geometry b(Blob(&rng, Point(10, 0), 2.0, vertices));
  for (auto _ : state) {
    double d = sfpm::geom::Distance(a, b);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Distance_PolygonPolygon)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
