// Shared harness of the repo's A/B benches (bench_extraction,
// bench_apriori_scale). Deliberately not google-benchmark: these benches
// compare two code paths that must produce identical output, attach
// counters (hit rates, AND-ops) to every case, and persist a
// machine-readable baseline — so the harness times explicit repeats and
// serializes everything to one JSON file. Each case also embeds the
// sfpm::obs registry's counter deltas over its timed runs ("metrics" in
// the JSON), so library instruments land in the baseline for free.
//
// Flags understood by RunBench-based mains:
//   --json=<path>    write the results as JSON (the checked-in baselines
//                    are bench/BENCH_<name>.json)
//   --repeat=<n>     timed repetitions per case after one warmup (default 5)

#ifndef SFPM_BENCH_BENCH_COMMON_H_
#define SFPM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace sfpm {
namespace bench {

struct CaseResult {
  std::string name;
  std::map<std::string, std::string> config;
  std::vector<double> samples_ms;
  std::map<std::string, double> counters;
  /// Registry counter deltas accrued over the timed runs (warmup
  /// excluded) — the library's own instruments, captured without the
  /// bench having to know their names.
  std::map<std::string, uint64_t> metrics;

  double MeanMs() const {
    double sum = 0.0;
    for (double s : samples_ms) sum += s;
    return samples_ms.empty() ? 0.0
                              : sum / static_cast<double>(samples_ms.size());
  }
  /// Nearest-rank percentile over the sorted samples, q in [0, 1].
  double PercentileMs(double q) const {
    if (samples_ms.empty()) return 0.0;
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<size_t>(rank + 0.5)];
  }
};

class Bench {
 public:
  Bench(std::string name, int argc, char** argv) : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) {
        json_path_ = arg.substr(7);
      } else if (arg.rfind("--repeat=", 0) == 0) {
        repeat_ = static_cast<size_t>(
            std::max(1L, std::strtol(arg.c_str() + 9, nullptr, 10)));
      }
    }
  }

  size_t repeat() const { return repeat_; }

  /// Times `body` (one untimed warmup + repeat() timed runs) and records a
  /// case. `body` may fill the case's counters map; the last run's values
  /// are kept. Returns the case so callers can derive cross-case counters
  /// (e.g. speedups) before Finish().
  CaseResult& Run(const std::string& case_name,
                  std::map<std::string, std::string> config,
                  const std::function<void(CaseResult&)>& body) {
    cases_.emplace_back();
    CaseResult& result = cases_.back();
    result.name = case_name;
    result.config = std::move(config);
    body(result);  // Warmup: caches, lazy indexes, page faults.
    result.counters.clear();
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    Stopwatch watch;
    for (size_t i = 0; i < repeat_; ++i) {
      body(result);
      result.samples_ms.push_back(watch.LapMillis());
    }
    result.metrics = obs::MetricsRegistry::Global()
                         .Snapshot()
                         .DeltaSince(before)
                         .DropZeros()
                         .counters;
    std::printf("%-44s %10.2f ms  (p50 %.2f, p95 %.2f, %zu runs)\n",
                case_name.c_str(), result.MeanMs(), result.PercentileMs(0.5),
                result.PercentileMs(0.95), repeat_);
    for (const auto& [key, value] : result.counters) {
      std::printf("%44s   %s=%.6g\n", "", key.c_str(), value);
    }
    return result;
  }

  /// Prints the summary and writes the JSON file when --json was given.
  /// Returns the process exit code.
  int Finish() {
    if (json_path_.empty()) return 0;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path_.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"repeat\": %zu,\n",
                 name_.c_str(), repeat_);
    std::fprintf(f, "  \"cases\": [\n");
    for (size_t c = 0; c < cases_.size(); ++c) {
      const CaseResult& r = cases_[c];
      std::fprintf(f, "    {\n      \"name\": \"%s\",\n", r.name.c_str());
      std::fprintf(f, "      \"config\": {");
      size_t i = 0;
      for (const auto& [key, value] : r.config) {
        std::fprintf(f, "%s\"%s\": \"%s\"", i++ ? ", " : "", key.c_str(),
                     value.c_str());
      }
      std::fprintf(f, "},\n");
      std::fprintf(f,
                   "      \"mean_ms\": %.3f,\n      \"p50_ms\": %.3f,\n"
                   "      \"p95_ms\": %.3f,\n",
                   r.MeanMs(), r.PercentileMs(0.5), r.PercentileMs(0.95));
      std::fprintf(f, "      \"samples_ms\": [");
      for (size_t s = 0; s < r.samples_ms.size(); ++s) {
        std::fprintf(f, "%s%.3f", s ? ", " : "", r.samples_ms[s]);
      }
      std::fprintf(f, "],\n      \"counters\": {");
      i = 0;
      for (const auto& [key, value] : r.counters) {
        std::fprintf(f, "%s\"%s\": %.6g", i++ ? ", " : "", key.c_str(),
                     value);
      }
      std::fprintf(f, "},\n      \"metrics\": {");
      i = 0;
      for (const auto& [key, value] : r.metrics) {
        std::fprintf(f, "%s\"%s\": %llu", i++ ? ", " : "", key.c_str(),
                     static_cast<unsigned long long>(value));
      }
      std::fprintf(f, "}\n    }%s\n", c + 1 < cases_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path_.c_str());
    return 0;
  }

 private:
  std::string name_;
  std::string json_path_;
  size_t repeat_ = 5;
  /// deque: Run hands out stable references across later Runs.
  std::deque<CaseResult> cases_;
};

}  // namespace bench
}  // namespace sfpm

#endif  // SFPM_BENCH_BENCH_COMMON_H_
