// Ablation benchmark (DESIGN.md): prepared geometry vs plain Relate in
// the extractor's access pattern — one reference polygon related against
// many candidates — across reference polygon sizes.

#include <benchmark/benchmark.h>

#include <cmath>

#include "relate/prepared.h"
#include "relate/relate.h"
#include "util/random.h"

namespace {

using sfpm::Rng;
using sfpm::geom::Geometry;
using sfpm::geom::LinearRing;
using sfpm::geom::Point;
using sfpm::geom::Polygon;

Polygon Blob(Rng* rng, const Point& center, double radius, int vertices) {
  std::vector<Point> ring;
  for (int i = 0; i < vertices; ++i) {
    const double angle = 2 * M_PI * i / vertices;
    const double r = radius * rng->NextDouble(0.7, 1.3);
    ring.emplace_back(center.x + r * std::cos(angle),
                      center.y + r * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(ring)));
}

std::vector<Geometry> Candidates(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Geometry> out;
  for (size_t i = 0; i < n; ++i) {
    out.emplace_back(Blob(&rng,
                          Point(rng.NextDouble(-12, 12),
                                rng.NextDouble(-12, 12)),
                          2.0, 8));
  }
  return out;
}

void BM_Relate_Plain(benchmark::State& state) {
  Rng rng(1);
  const Geometry reference(
      Blob(&rng, Point(0, 0), 10.0, static_cast<int>(state.range(0))));
  const auto candidates = Candidates(64, 2);
  for (auto _ : state) {
    for (const Geometry& c : candidates) {
      auto m = sfpm::relate::Relate(reference, c);
      benchmark::DoNotOptimize(m);
    }
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
}
BENCHMARK(BM_Relate_Plain)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_Relate_Prepared(benchmark::State& state) {
  Rng rng(1);
  const sfpm::relate::PreparedGeometry reference(
      Geometry(Blob(&rng, Point(0, 0), 10.0,
                    static_cast<int>(state.range(0)))));
  const auto candidates = Candidates(64, 2);
  for (auto _ : state) {
    for (const Geometry& c : candidates) {
      auto m = reference.Relate(c);
      benchmark::DoNotOptimize(m);
    }
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
}
BENCHMARK(BM_Relate_Prepared)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_Locate_Plain(benchmark::State& state) {
  Rng rng(3);
  const Geometry polygon(
      Blob(&rng, Point(0, 0), 10.0, static_cast<int>(state.range(0))));
  Rng probe_rng(4);
  for (auto _ : state) {
    auto loc = sfpm::geom::Locate(
        Point(probe_rng.NextDouble(-12, 12), probe_rng.NextDouble(-12, 12)),
        polygon);
    benchmark::DoNotOptimize(loc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Locate_Plain)->Arg(64)->Arg(1024)->Arg(8192);

void BM_Locate_Prepared(benchmark::State& state) {
  Rng rng(3);
  const sfpm::relate::PreparedGeometry polygon(Geometry(
      Blob(&rng, Point(0, 0), 10.0, static_cast<int>(state.range(0)))));
  Rng probe_rng(4);
  for (auto _ : state) {
    auto loc = polygon.Locate(
        Point(probe_rng.NextDouble(-12, 12), probe_rng.NextDouble(-12, 12)));
    benchmark::DoNotOptimize(loc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Locate_Prepared)->Arg(64)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
