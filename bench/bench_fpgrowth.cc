// Ablation benchmark: Apriori vs FP-Growth — plain and with the paper's
// same-feature-type filter — across density and minimum support. Both
// produce identical itemsets (tested in fpgrowth_test), so this measures
// pure engine cost.

#include <benchmark/benchmark.h>

#include "core/apriori.h"
#include "core/fpgrowth.h"
#include "datagen/transactional.h"

namespace {

using sfpm::core::AprioriOptions;
using sfpm::core::SameKeyFilter;
using sfpm::core::TransactionDb;

const TransactionDb& Db() {
  static const TransactionDb db = [] {
    sfpm::datagen::TransactionalConfig config;
    config.num_transactions = 20000;
    config.num_items = 80;
    config.avg_transaction_size = 12;
    config.num_patterns = 25;
    config.key_group_size = 4;
    return sfpm::datagen::GenerateTransactional(config);
  }();
  return db;
}

void BM_Apriori(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    auto result = sfpm::core::MineApriori(Db(), minsup);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Apriori)->Arg(10)->Arg(30)->Arg(100);

void BM_FpGrowth(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    auto result = sfpm::core::MineFpGrowth(Db(), minsup);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FpGrowth)->Arg(10)->Arg(30)->Arg(100);

void BM_Apriori_KCPlus(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 1000.0;
  const SameKeyFilter filter(Db());
  AprioriOptions options;
  options.min_support = minsup;
  options.filters.push_back(&filter);
  for (auto _ : state) {
    auto result = sfpm::core::MineApriori(Db(), options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Apriori_KCPlus)->Arg(10)->Arg(30)->Arg(100);

void BM_FpGrowth_KCPlus(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 1000.0;
  const SameKeyFilter filter(Db());
  AprioriOptions options;
  options.min_support = minsup;
  options.filters.push_back(&filter);
  for (auto _ : state) {
    auto result = sfpm::core::MineFpGrowth(Db(), options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FpGrowth_KCPlus)->Arg(10)->Arg(30)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
