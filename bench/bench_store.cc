// A/B benchmark of snapshot loading: mmap-backed `.sfpm` opens (zero-copy
// view and full materialization) against parsing the same 100k-transaction
// predicate table from CSV — the load path the snapshot store replaces.
// All paths must produce the identical table; the bench asserts that
// before timing anything, so a speedup can never come from a changed
// answer. The headline number is csv_parse / mmap_view median time
// ("speedup_view" on the view case); the acceptance floor is 10x.
//
//   bench_store [--repeat=N] [--json=bench/BENCH_store.json]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench_common.h"
#include "datagen/synthetic_predicates.h"
#include "io/csv.h"
#include "io/table_io.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

using sfpm::bench::Bench;
using sfpm::bench::CaseResult;
using sfpm::feature::PredicateTable;
using sfpm::store::SectionInfo;
using sfpm::store::SectionType;
using sfpm::store::SnapshotReader;
using sfpm::store::SnapshotWriter;

PredicateTable MakeTable() {
  sfpm::datagen::SyntheticPredicateConfig config;
  config.num_transactions = 100000;
  config.groups = {
      {"slum", {"contains", "touches", "overlaps"}},
      {"school", {"contains", "touches"}},
      {"policeCenter", {"contains", "touches"}},
      {"street", {"crosses", "touches"}},
      {"illuminationPoint", {"contains"}},
      {"river", {"crosses", "touches"}},
  };
  config.attributes = {{"zone", {"north", "south", "east", "west"}},
                       {"income", {"low", "medium", "high"}}};
  config.seed = 2007;
  return sfpm::datagen::GenerateSyntheticPredicates(config);
}

void Die(const std::string& what) {
  std::fprintf(stderr, "bench_store: %s\n", what.c_str());
  std::exit(1);
}

SectionInfo TableSection(const SnapshotReader& reader) {
  auto info = reader.Find(SectionType::kTransactionDb);
  if (!info.ok()) Die("snapshot has no txdb section");
  return info.value();
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench("store", argc, argv);

  const PredicateTable table = MakeTable();
  const std::string csv = sfpm::io::TableToCsv(table);
  const std::string csv_path = "/tmp/bench_store_table.csv";
  const std::string sfpm_path = "/tmp/bench_store_table.sfpm";
  if (!sfpm::io::WriteFile(csv_path, csv).ok()) Die("cannot write csv");
  SnapshotWriter writer;
  writer.AddTable(table);
  if (!writer.WriteTo(sfpm_path).ok()) Die("cannot write snapshot");

  // Identity gate: every load path must reproduce the written table
  // exactly (compared in its canonical CSV rendering).
  {
    auto from_csv = sfpm::io::LoadTable(csv_path);
    if (!from_csv.ok()) Die("csv load failed: " + from_csv.status().message());
    if (sfpm::io::TableToCsv(from_csv.value()) != csv) {
      Die("csv round trip changed the table");
    }
    for (const bool use_mmap : {true, false}) {
      SnapshotReader::Options options;
      options.use_mmap = use_mmap;
      auto reader = SnapshotReader::Open(sfpm_path, options);
      if (!reader.ok()) Die("open failed: " + reader.status().message());
      auto decoded = reader.value().ReadTable(TableSection(reader.value()));
      if (!decoded.ok()) Die("decode failed: " + decoded.status().message());
      if (sfpm::io::TableToCsv(decoded.value()) != csv) {
        Die(use_mmap ? "mmap load changed the table"
                     : "buffered load changed the table");
      }
    }
  }

  const std::map<std::string, std::string> shape = {
      {"transactions", std::to_string(table.NumRows())},
      {"items", std::to_string(table.NumPredicates())},
      {"csv_bytes", std::to_string(csv.size())},
  };

  CaseResult& csv_case =
      bench.Run("csv_parse", shape, [&](CaseResult&) {
        auto loaded = sfpm::io::LoadTable(csv_path);
        if (!loaded.ok() || loaded.value().NumRows() != table.NumRows()) {
          Die("csv parse failed mid-bench");
        }
      });

  // Zero-copy open: validate + point at the columns, no payload copies.
  CaseResult& view_case =
      bench.Run("sfpm_mmap_view", shape, [&](CaseResult&) {
        auto reader = SnapshotReader::Open(sfpm_path);
        if (!reader.ok()) Die("open failed mid-bench");
        auto view = reader.value().ViewTable(TableSection(reader.value()));
        if (!view.ok() || view.value().num_transactions != table.NumRows()) {
          Die("view failed mid-bench");
        }
      });

  CaseResult& materialize_case =
      bench.Run("sfpm_mmap_materialize", shape, [&](CaseResult&) {
        auto reader = SnapshotReader::Open(sfpm_path);
        if (!reader.ok()) Die("open failed mid-bench");
        auto decoded = reader.value().ReadTable(TableSection(reader.value()));
        if (!decoded.ok() || decoded.value().NumRows() != table.NumRows()) {
          Die("materialize failed mid-bench");
        }
      });

  bench.Run("sfpm_buffered_materialize", shape, [&](CaseResult&) {
    SnapshotReader::Options options;
    options.use_mmap = false;
    auto reader = SnapshotReader::Open(sfpm_path, options);
    if (!reader.ok()) Die("open failed mid-bench");
    auto decoded = reader.value().ReadTable(TableSection(reader.value()));
    if (!decoded.ok() || decoded.value().NumRows() != table.NumRows()) {
      Die("buffered materialize failed mid-bench");
    }
  });

  // Headline ratios, from medians so one slow page-in can't skew them.
  view_case.counters["speedup_view"] =
      csv_case.PercentileMs(0.5) / view_case.PercentileMs(0.5);
  materialize_case.counters["speedup_materialize"] =
      csv_case.PercentileMs(0.5) / materialize_case.PercentileMs(0.5);
  std::printf("csv/view median speedup: %.1fx, csv/materialize: %.1fx\n",
              view_case.counters["speedup_view"],
              materialize_case.counters["speedup_materialize"]);

  return bench.Finish();
}
