// Reproduces Table 1 (the running-example dataset) and Table 2 (all
// frequent predicate sets at 50% minimum support, same-feature-type sets
// marked) and benchmarks mining the example with Apriori and Apriori-KC+.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/apriori.h"
#include "datagen/paper_example.h"

namespace {

using sfpm::core::AprioriResult;
using sfpm::core::FrequentItemset;
using sfpm::core::MineApriori;
using sfpm::core::MineAprioriKCPlus;
using sfpm::core::TransactionDb;

bool HasSameTypePair(const FrequentItemset& fi, const TransactionDb& db) {
  for (size_t i = 0; i < fi.items.size(); ++i) {
    for (size_t j = i + 1; j < fi.items.size(); ++j) {
      const std::string& key = db.Key(fi.items[i]);
      if (!key.empty() && key == db.Key(fi.items[j])) return true;
    }
  }
  return false;
}

std::string Render(const FrequentItemset& fi, const TransactionDb& db) {
  std::string out = "{";
  for (size_t i = 0; i < fi.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += db.Label(fi.items[i]);
  }
  out += "}";
  return out;
}

void PrintReproduction() {
  const auto table = sfpm::datagen::MakePaperTable1();

  std::printf("== Table 1: Partial dataset of the city of Porto Alegre ==\n");
  std::printf("%s\n", table.ToString().c_str());

  const auto result = MineApriori(table.db(), 0.5).value();
  std::printf(
      "== Table 2: frequent predicate sets, minsup = 50%% "
      "(* = contains a same-feature-type pair) ==\n");
  size_t with_pair = 0;
  for (size_t k = 2; k <= result.MaxItemsetSize(); ++k) {
    std::printf("-- size k = %zu --\n", k);
    for (const FrequentItemset& fi : result.OfSize(k)) {
      const bool same = HasSameTypePair(fi, table.db());
      with_pair += same;
      std::printf("  %s%s (support %u)\n", same ? "* " : "  ",
                  Render(fi, table.db()).c_str(), fi.support);
    }
  }
  std::printf(
      "\ntotal itemsets (size >= 2): %zu   [paper: 60]\n"
      "with same-feature-type pair: %zu  [paper prose: 31; implied by the "
      "published tables: 30]\n",
      result.CountAtLeast(2), with_pair);

  const auto filtered = MineAprioriKCPlus(table.db(), 0.5).value();
  std::printf("Apriori-KC+ itemsets (size >= 2): %zu\n\n",
              filtered.CountAtLeast(2));
}

void BM_Table2_Apriori(benchmark::State& state) {
  const auto table = sfpm::datagen::MakePaperTable1();
  for (auto _ : state) {
    auto result = MineApriori(table.db(), 0.5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Table2_Apriori);

void BM_Table2_AprioriKCPlus(benchmark::State& state) {
  const auto table = sfpm::datagen::MakePaperTable1();
  for (auto _ : state) {
    auto result = MineAprioriKCPlus(table.db(), 0.5);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Table2_AprioriKCPlus);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
