// A/B benchmark of the co-location miner: the materialized neighbour
// graph (NeighborGraph + MineGraph, the `--backend=coloc` path) against
// the reference miner that recomputes neighbourhoods per candidate pair
// (MineColocationsNaive), on random point layers of growing size. The
// two paths must agree exactly — same patterns, participation indexes
// and row counts, including graph mining at 1 vs 4 threads — before
// anything is timed, so a speedup can never come from a changed answer.
//
//   bench_coloc [--repeat=N] [--json=bench/BENCH_coloc.json]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "coloc/colocation.h"
#include "feature/feature.h"
#include "geom/point.h"
#include "util/random.h"

namespace {

using sfpm::Rng;
using sfpm::coloc::ColocationOptions;
using sfpm::coloc::ColocationPattern;
using sfpm::coloc::MineColocations;
using sfpm::coloc::MineColocationsNaive;
using sfpm::feature::Layer;
using sfpm::geom::Point;

/// Four point layers scattered over a square whose side grows with the
/// instance count, keeping neighbourhood density (and therefore pattern
/// structure) comparable across scales.
struct Workload {
  std::vector<Layer> layers;
  sfpm::feature::LayerSet set;
};

Workload MakeWorkload(size_t per_type) {
  static const char* kTypes[] = {"school", "slum", "police", "market"};
  const double side = 10.0 * std::sqrt(static_cast<double>(per_type));
  Workload w;
  Rng rng(2007);
  for (const char* type : kTypes) {
    w.layers.emplace_back(type);
    for (size_t i = 0; i < per_type; ++i) {
      w.layers.back().Add(
          Point(rng.NextDouble(0, side), rng.NextDouble(0, side)));
    }
  }
  w.set = sfpm::feature::LayerSet::Of(w.layers);
  return w;
}

std::vector<ColocationPattern> MineOrDie(
    const sfpm::Result<std::vector<ColocationPattern>>& mined,
    const char* what) {
  if (!mined.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what,
                 mined.status().ToString().c_str());
    std::exit(1);
  }
  return mined.value();
}

/// The identity gate compares everything the two miners both define:
/// fuzzy_prevalence is graph-only (the naive miner reports it crisp), so
/// it stays out of the comparison.
bool SameAnswers(const std::vector<ColocationPattern>& a,
                 const std::vector<ColocationPattern>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].types != b[i].types) return false;
    if (a[i].participation_index != b[i].participation_index) return false;
    if (a[i].num_row_instances != b[i].num_row_instances) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  sfpm::bench::Bench bench("coloc", argc, argv);

  for (const size_t per_type : {size_t{500}, size_t{1500}, size_t{4000}}) {
    const Workload workload = MakeWorkload(per_type);
    const std::string n = std::to_string(per_type);

    ColocationOptions options;
    options.neighbor_distance = 14.0;  // ~6 neighbours per instance.
    options.min_prevalence = 0.3;
    options.threads = 1;

    // Identity gate: graph vs naive, and graph at 1 vs 4 threads, must
    // mine the same patterns with the same prevalence and row counts.
    const auto graph_answer =
        MineOrDie(MineColocations(workload.set, options), "graph miner");
    if (!SameAnswers(graph_answer,
                     MineOrDie(MineColocationsNaive(workload.set, options),
                               "naive miner"))) {
      std::fprintf(stderr, "FATAL: graph and naive miners disagree (n=%s)\n",
                   n.c_str());
      return 1;
    }
    ColocationOptions threaded = options;
    threaded.threads = 4;
    if (!SameAnswers(graph_answer,
                     MineOrDie(MineColocations(workload.set, threaded),
                               "threaded graph miner"))) {
      std::fprintf(stderr, "FATAL: thread count changed the answer (n=%s)\n",
                   n.c_str());
      return 1;
    }

    const auto& naive_case = bench.Run(
        "miner/n=" + n + "/naive", {{"per_type", n}, {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          const auto mined =
              MineOrDie(MineColocationsNaive(workload.set, options), "naive");
          result.counters["patterns"] = static_cast<double>(mined.size());
        });

    auto& graph_case = bench.Run(
        "miner/n=" + n + "/graph", {{"per_type", n}, {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          const auto mined =
              MineOrDie(MineColocations(workload.set, options), "graph");
          result.counters["patterns"] = static_cast<double>(mined.size());
        });
    // Median-based: robust against load spikes on shared machines.
    const double speedup =
        naive_case.PercentileMs(0.5) / graph_case.PercentileMs(0.5);
    graph_case.counters["speedup_vs_naive"] = speedup;
    std::printf("%44s   speedup_vs_naive=%.2fx\n", "", speedup);
  }

  // Thread sweep on the large workload (EXPERIMENTS.md "Scaling"): the
  // graph build parallelizes, mining stays deterministic. On a
  // single-vCPU container wall time cannot improve; the case exists so
  // multi-core machines can measure the scaling.
  {
    const Workload workload = MakeWorkload(4000);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      ColocationOptions options;
      options.neighbor_distance = 14.0;
      options.min_prevalence = 0.3;
      options.threads = threads;
      bench.Run("scaling/threads=" + std::to_string(threads),
                {{"per_type", "4000"}, {"threads", std::to_string(threads)}},
                [&](sfpm::bench::CaseResult& result) {
                  const auto mined = MineOrDie(
                      MineColocations(workload.set, options), "graph");
                  result.counters["patterns"] =
                      static_cast<double>(mined.size());
                });
    }
  }

  return bench.Finish();
}
