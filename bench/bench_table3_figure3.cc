// Reproduces Table 3 / Figure 3: the Formula 1 minimal gain for a single
// multi-relation feature type (u = 1) across t1 = 1..8 and n = 1..10, and
// benchmarks the closed-form evaluation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "stats/gain.h"

namespace {

void PrintReproduction() {
  std::printf(
      "== Table 3 / Figure 3: minimal gain, u = 1 feature type, "
      "t1 = 1..8 (columns), n = 1..10 (rows) ==\n");
  std::printf("        ");
  for (int t1 = 1; t1 <= 8; ++t1) std::printf("%9s%d", "t1=", t1);
  std::printf("\n");

  const auto table = sfpm::stats::MinimalGainTable(8, 10);
  for (size_t n = 0; n < table.size(); ++n) {
    std::printf("n=%-3zu  ", n + 1);
    for (uint64_t v : table[n]) {
      std::printf("%10llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper checks: gain({2,2}, 2) = %llu [28], "
      "gain({2,2,2}, 2) = %llu [148], gain({2,2,2}, 1) = %llu [74]\n\n",
      static_cast<unsigned long long>(
          sfpm::stats::MinimalGain({2, 2}, 2).value()),
      static_cast<unsigned long long>(
          sfpm::stats::MinimalGain({2, 2, 2}, 2).value()),
      static_cast<unsigned long long>(
          sfpm::stats::MinimalGain({2, 2, 2}, 1).value()));
}

void BM_MinimalGain(benchmark::State& state) {
  const int t1 = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto gain = sfpm::stats::MinimalGainSingleType(t1, n);
    benchmark::DoNotOptimize(gain);
  }
}
BENCHMARK(BM_MinimalGain)->Args({2, 2})->Args({8, 10})->Args({20, 30});

void BM_MinimalGainTable(benchmark::State& state) {
  for (auto _ : state) {
    auto table = sfpm::stats::MinimalGainTable(8, 10);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_MinimalGainTable);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
