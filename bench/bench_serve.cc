// Load benchmark of `sfpm serve` (docs/SERVE.md): an in-process Server
// over a realistic snapshot — the synthetic city's layers plus a mined
// 10k-transaction pattern set — driven by N concurrent client threads on
// real loopback sockets. The full telemetry stack runs during the bench
// (metrics endpoint + ring sampler, slow-query log, per-request spans,
// 1-in-64 trace sampling, a concurrent /metrics scraper), so the
// committed baseline doubles as the observability-overhead gate. Each
// case reports throughput and client-side latency quantiles as counters:
//
//   qps     completed round trips per second across all clients
//   p50_ms  median single round-trip latency (client-observed)
//   p99_ms  99th-percentile round-trip latency
//
// The committed baseline is bench/BENCH_serve.json; EXPERIMENTS.md
// "Serving" quotes it. Run with:
//
//   bench_serve [--repeat=N] [--json=bench/BENCH_serve.json]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/apriori.h"
#include "datagen/city.h"
#include "datagen/synthetic_predicates.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/snapshot_holder.h"
#include "store/writer.h"
#include "util/stopwatch.h"

namespace {

using sfpm::bench::Bench;
using sfpm::bench::CaseResult;
using sfpm::serve::EncodeFrame;

constexpr size_t kClientThreads = 4;
constexpr size_t kRequestsPerThread = 150;

void Die(const std::string& what) {
  std::fprintf(stderr, "bench_serve: %s\n", what.c_str());
  std::exit(1);
}

/// One blocking framed-JSON connection (the protocol of docs/SERVE.md).
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) Die("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Die("connect");
    }
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }

  /// One framed request, one framed response; dies on transport errors
  /// or an error envelope (a benchmark must not time failures).
  void RoundTrip(const std::string& request) {
    const std::string wire = EncodeFrame(request);
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) Die("send");
      sent += static_cast<size_t>(n);
    }
    const std::string header = RecvExactly(4);
    uint32_t length = 0;
    std::memcpy(&length, header.data(), 4);
    const std::string payload = RecvExactly(length);
    if (payload.find("\"ok\":true") == std::string::npos) {
      Die("error response: " + payload.substr(0, 200));
    }
  }

 private:
  std::string RecvExactly(size_t n) {
    std::string out;
    char buf[65536];
    while (out.size() < n) {
      const ssize_t got =
          recv(fd_, buf, std::min(sizeof(buf), n - out.size()), 0);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        Die("recv (connection lost)");
      }
      out.append(buf, static_cast<size_t>(got));
    }
    return out;
  }

  int fd_ = -1;
};

/// City layers + a mined pattern set over 10k synthetic transactions.
std::string WriteBenchSnapshot(const std::string& path) {
  sfpm::datagen::SyntheticPredicateConfig config;
  config.num_transactions = 10000;
  config.groups = {
      {"slum", {"contains", "touches", "overlaps"}},
      {"school", {"contains", "touches"}},
      {"policeCenter", {"contains", "touches"}},
      {"street", {"crosses", "touches"}},
      {"illuminationPoint", {"contains"}},
      {"river", {"crosses", "touches"}},
  };
  config.attributes = {{"zone", {"north", "south", "east", "west"}},
                       {"income", {"low", "medium", "high"}}};
  config.seed = 2007;
  const sfpm::feature::PredicateTable table =
      sfpm::datagen::GenerateSyntheticPredicates(config);

  auto mined = sfpm::core::MineApriori(table.db(), 0.1);
  if (!mined.ok()) Die("mining failed: " + mined.status().message());

  const auto city = sfpm::datagen::GenerateCity(sfpm::datagen::CityConfig{});

  sfpm::store::SnapshotWriter writer;
  writer.AddLayer(city->districts);
  writer.AddLayer(city->slums);
  writer.AddLayer(city->schools);
  writer.AddTable(table);
  writer.AddPatternSet(sfpm::store::PatternSet::FromResult(
      table.db(), mined.value(), 0.1, "apriori", "none"));
  if (!writer.WriteTo(path).ok()) Die("cannot write " + path);
  return path;
}

/// The bench's metrics port, set once the server is up; 0 keeps the
/// scraper off (never in practice — telemetry is part of the workload).
uint16_t g_metrics_port = 0;

/// One GET /metrics against the telemetry endpoint; dies unless the
/// exposition comes back with a 200.
void ScrapeMetrics() {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Die("scrape socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(g_metrics_port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    Die("scrape connect");
  }
  const char request[] =
      "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  if (send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(request) - 1)) {
    close(fd);
    Die("scrape send");
  }
  std::string response;
  char buf[65536];
  for (;;) {
    const ssize_t got = recv(fd, buf, sizeof(buf), 0);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) break;
    response.append(buf, static_cast<size_t>(got));
  }
  close(fd);
  if (response.find(" 200 ") == std::string::npos) {
    Die("scrape got no 200: " + response.substr(0, 120));
  }
}

/// Drives one case: kClientThreads connections, each pipelining
/// kRequestsPerThread round trips, with a concurrent Prometheus scraper
/// (a scrape every ~25 ms — far above any real scrape interval, so the
/// gated overhead is an upper bound); fills qps/p50/p99 counters.
void DriveLoad(uint16_t port, const std::string& request,
               CaseResult& result) {
  std::vector<std::vector<double>> latencies(kClientThreads);
  std::atomic<bool> done{false};
  std::thread scraper([&done] {
    while (!done.load(std::memory_order_relaxed)) {
      ScrapeMetrics();
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  });
  sfpm::Stopwatch wall;
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([port, &request, &latencies, t] {
      Client client(port);
      std::vector<double>& mine = latencies[t];
      mine.reserve(kRequestsPerThread);
      sfpm::Stopwatch watch;
      for (size_t i = 0; i < kRequestsPerThread; ++i) {
        watch.Restart();
        client.RoundTrip(request);
        mine.push_back(watch.ElapsedMillis());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed_ms = wall.ElapsedMillis();
  done.store(true, std::memory_order_relaxed);
  scraper.join();

  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  const size_t total = all.size();
  result.counters["qps"] =
      static_cast<double>(total) / (elapsed_ms / 1000.0);
  result.counters["p50_ms"] = all[total / 2];
  result.counters["p99_ms"] = all[std::min(total - 1, total * 99 / 100)];
  result.counters["requests"] = static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  Bench bench("serve", argc, argv);

  const std::string path =
      WriteBenchSnapshot("/tmp/bench_serve_snapshot.sfpm");
  sfpm::serve::SnapshotHolder holder;
  if (!holder.Load({path}).ok()) Die("holder load failed");

  sfpm::serve::ServerOptions options;
  options.workers = kClientThreads;
  // Full telemetry on: exposition endpoint + sampler, slow-query capture
  // at the default threshold, and 1-in-64 trace sampling. The committed
  // baseline gates the cost of running all of it.
  options.metrics_port = 0;
  options.slow_query_ms = 100;
  options.trace_sample = 64;
  sfpm::serve::Server server(&holder, options);
  if (!server.Start().ok()) Die("server start failed");
  const uint16_t port = server.port();
  if (server.metrics_port() == 0) Die("telemetry port not bound");
  g_metrics_port = server.metrics_port();

  const std::map<std::string, std::string> config = {
      {"clients", std::to_string(kClientThreads)},
      {"requests_per_client", std::to_string(kRequestsPerThread)},
      {"workers", std::to_string(options.workers)},
      {"transactions", "10000"},
  };

  const std::pair<const char*, const char*> cases[] = {
      {"status", "{\"q\":\"status\"}"},
      {"patterns", "{\"q\":\"patterns\",\"min_support\":1200,\"limit\":50}"},
      {"rules", "{\"q\":\"rules\",\"min_confidence\":0.8,\"limit\":50}"},
      {"predicates", "{\"q\":\"predicates\",\"transaction\":4242}"},
      {"window",
       "{\"q\":\"window\",\"layer\":\"school\","
       "\"bounds\":[2000,2000,6000,6000]}"},
      {"relate",
       "{\"q\":\"relate\",\"layer_a\":\"district\",\"id_a\":17,"
       "\"layer_b\":\"slum\",\"id_b\":3}"},
  };
  for (const auto& [name, request] : cases) {
    bench.Run(name, config, [port, request = std::string(request)](
                                CaseResult& result) {
      DriveLoad(port, request, result);
    });
  }

  // The mixed case round-robins every query type on each connection —
  // the closest to a live consumer workload.
  bench.Run("mixed", config, [port, &cases](CaseResult& result) {
    std::vector<std::vector<double>> latencies(kClientThreads);
    sfpm::Stopwatch wall;
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kClientThreads; ++t) {
      clients.emplace_back([port, &cases, &latencies, t] {
        Client client(port);
        sfpm::Stopwatch watch;
        for (size_t i = 0; i < kRequestsPerThread; ++i) {
          watch.Restart();
          client.RoundTrip(cases[(t + i) % 6].second);
          latencies[t].push_back(watch.ElapsedMillis());
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double elapsed_ms = wall.ElapsedMillis();
    std::vector<double> all;
    for (const auto& per_thread : latencies) {
      all.insert(all.end(), per_thread.begin(), per_thread.end());
    }
    std::sort(all.begin(), all.end());
    result.counters["qps"] =
        static_cast<double>(all.size()) / (elapsed_ms / 1000.0);
    result.counters["p50_ms"] = all[all.size() / 2];
    result.counters["p99_ms"] =
        all[std::min(all.size() - 1, all.size() * 99 / 100)];
    result.counters["requests"] = static_cast<double>(all.size());
  });

  server.RequestShutdown();
  server.Wait();
  return bench.Finish();
}
