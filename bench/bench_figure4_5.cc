// Reproduces Figure 4 (frequent pattern counts of Apriori, Apriori-KC and
// Apriori-KC+ on the first experimental dataset at 5/10/15% minimum
// support) and Figure 5 (the computational time of the three algorithms).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/apriori.h"
#include "datagen/synthetic_predicates.h"

namespace {

using sfpm::core::MineApriori;
using sfpm::core::MineAprioriKC;
using sfpm::core::MineAprioriKCPlus;

const sfpm::datagen::PaperDataset1& Dataset() {
  static const sfpm::datagen::PaperDataset1 ds =
      sfpm::datagen::MakePaperDataset1();
  return ds;
}

const sfpm::core::PairBlocklistFilter& Phi() {
  static const sfpm::core::PairBlocklistFilter phi =
      Dataset().dependencies.MakeFilter(Dataset().table.db());
  return phi;
}

void PrintReproduction() {
  const auto& ds = Dataset();
  std::printf(
      "== Dataset 1 (Figures 4 & 5): %zu transactions, %zu predicates "
      "(13 spatial), %zu same-feature-type pairs, %zu dependency pairs ==\n\n",
      ds.table.NumRows(), ds.table.NumPredicates(),
      ds.table.CountSameFeatureTypePairs(), Phi().NumPairs());

  std::printf(
      "== Figure 4: frequent geographic patterns (size >= 2) ==\n"
      "%-8s %10s %12s %12s %14s %14s\n", "minsup", "Apriori", "Apriori-KC",
      "Apriori-KC+", "KC red. %", "KC+ red. %");
  std::printf(
      "== Figure 5 appended as the per-run mining time in ms ==\n");
  for (double minsup : {0.05, 0.10, 0.15}) {
    const auto apriori = MineApriori(ds.table.db(), minsup).value();
    const auto kc = MineAprioriKC(ds.table.db(), minsup, Phi()).value();
    const auto kcplus =
        MineAprioriKCPlus(ds.table.db(), minsup, &Phi()).value();
    const double base = static_cast<double>(apriori.CountAtLeast(2));
    std::printf(
        "%5.0f%%   %10zu %12zu %12zu %13.1f%% %13.1f%%   "
        "(times: %.2f / %.2f / %.2f ms)\n",
        minsup * 100, apriori.CountAtLeast(2), kc.CountAtLeast(2),
        kcplus.CountAtLeast(2), 100.0 * (1.0 - kc.CountAtLeast(2) / base),
        100.0 * (1.0 - kcplus.CountAtLeast(2) / base),
        apriori.stats().total_millis, kc.stats().total_millis,
        kcplus.stats().total_millis);
  }
  std::printf(
      "\nPaper shape: KC removes ~28%% at every minsup; KC+ removes >60%% "
      "vs Apriori and ~50%% vs KC; KC+ is also fastest.\n\n");
}

void BM_Figure5_Apriori(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto result = MineApriori(Dataset().table.db(), minsup);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Figure5_Apriori)->Arg(5)->Arg(10)->Arg(15);

void BM_Figure5_AprioriKC(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto result = MineAprioriKC(Dataset().table.db(), minsup, Phi());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Figure5_AprioriKC)->Arg(5)->Arg(10)->Arg(15);

void BM_Figure5_AprioriKCPlus(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto result = MineAprioriKCPlus(Dataset().table.db(), minsup, &Phi());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Figure5_AprioriKCPlus)->Arg(5)->Arg(10)->Arg(15);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
