// A/B benchmark of the predicate-extraction hot path: the certified
// relate fast path (PreparedGeometry::Relate) against the always-full
// engine, on synthetic cities of growing size. The two paths must produce
// byte-identical predicate tables — the bench asserts that (including
// 1 thread vs 4 threads) before timing anything, so a speedup can never
// come from a changed answer.
//
//   bench_extraction [--repeat=N] [--json=bench/BENCH_extraction.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/apriori.h"
#include "datagen/city.h"
#include "feature/extractor.h"
#include "io/table_io.h"

namespace {

using sfpm::datagen::City;
using sfpm::datagen::CityConfig;
using sfpm::datagen::GenerateCity;
using sfpm::feature::ExtractionStats;
using sfpm::feature::ExtractorOptions;
using sfpm::feature::PredicateExtractor;

CityConfig ScaledConfig(int scale) {
  CityConfig config;
  config.grid_cols = 4 * scale;
  config.grid_rows = 3 * scale;
  config.num_slums = static_cast<size_t>(20 * scale * scale);
  config.num_schools = static_cast<size_t>(40 * scale * scale);
  config.num_police = static_cast<size_t>(8 * scale * scale);
  config.num_streets = static_cast<size_t>(30 * scale * scale);
  // Digitized-boundary vertex density: real district/street layers carry
  // tens of vertices per edge, and the relate engine's cost scales with
  // them while the certified fast path's does not.
  config.boundary_detail = 10;
  // Favela-scale slums: the paper's study areas are small relative to
  // their districts, so most are properly contained rather than
  // straddling district borders.
  config.slum_radius_min = 0.08;
  config.slum_radius_max = 0.25;
  config.seed = 2007;
  return config;
}

// The paper's crime-analysis workload: districts related against slums,
// schools and police centers (Bogorny et al., section V). Containment and
// disjointness dominate — exactly the configurations the certified fast
// path short-circuits.
PredicateExtractor MakeCrimeExtractor(const City& city) {
  PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);
  extractor.AddRelevantLayer(&city.schools);
  extractor.AddRelevantLayer(&city.police);
  return extractor;
}

// The wider workload with street linework, where boundary contact (and
// therefore the full engine) is frequent; used for the end-to-end
// pipeline case.
PredicateExtractor MakeExtractor(const City& city) {
  PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);
  extractor.AddRelevantLayer(&city.schools);
  extractor.AddRelevantLayer(&city.police);
  extractor.AddRelevantLayer(&city.streets);
  return extractor;
}

std::string TableCsv(const PredicateExtractor& extractor,
                     const ExtractorOptions& options) {
  auto table = extractor.Extract(options);
  if (!table.ok()) {
    std::fprintf(stderr, "extract failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  return sfpm::io::TableToCsv(table.value());
}

}  // namespace

int main(int argc, char** argv) {
  sfpm::bench::Bench bench("extraction", argc, argv);

  for (int scale = 1; scale <= 3; ++scale) {
    const auto city = GenerateCity(ScaledConfig(scale));
    const PredicateExtractor extractor = MakeCrimeExtractor(*city);
    const std::string scale_str = std::to_string(scale);
    const std::string districts =
        std::to_string(city->districts.Size());

    ExtractorOptions fast;
    fast.parallelism = 1;
    ExtractorOptions full = fast;
    full.fast_relate = false;

    // Identity gate: fast vs full, and serial vs 4 threads, must emit the
    // byte-identical predicate table.
    const std::string fast_csv = TableCsv(extractor, fast);
    if (fast_csv != TableCsv(extractor, full)) {
      std::fprintf(stderr, "FATAL: fast path changed the table (scale %d)\n",
                   scale);
      return 1;
    }
    ExtractorOptions threaded = fast;
    threaded.parallelism = 4;
    if (fast_csv != TableCsv(extractor, threaded)) {
      std::fprintf(stderr, "FATAL: thread count changed the table (scale %d)\n",
                   scale);
      return 1;
    }

    const auto& full_case = bench.Run(
        "topological/scale=" + scale_str + "/full",
        {{"scale", scale_str}, {"districts", districts}, {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          ExtractionStats stats;
          auto table = extractor.Extract(full, &stats);
          if (!table.ok()) std::exit(1);
          // RelateFull bypasses the RelateStats counters by design, so
          // only row/candidate stats are meaningful here.
          result.counters["rows"] = static_cast<double>(stats.rows);
          result.counters["envelope_candidates"] =
              static_cast<double>(stats.envelope_candidates);
        });

    auto& fast_case = bench.Run(
        "topological/scale=" + scale_str + "/fast",
        {{"scale", scale_str}, {"districts", districts}, {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          ExtractionStats stats;
          auto table = extractor.Extract(fast, &stats);
          if (!table.ok()) std::exit(1);
          result.counters["relate_calls"] =
              static_cast<double>(stats.relate.calls);
          result.counters["fast_hits"] =
              static_cast<double>(stats.relate.fast_hits());
          result.counters["fast_hit_pct"] =
              stats.relate.calls == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(stats.relate.fast_hits()) /
                        static_cast<double>(stats.relate.calls);
          result.counters["envelope_candidates"] =
              static_cast<double>(stats.envelope_candidates);
          result.counters["fast_disjoint"] =
              static_cast<double>(stats.relate.fast_disjoint);
          result.counters["fast_contains"] =
              static_cast<double>(stats.relate.fast_contains);
          result.counters["fast_within"] =
              static_cast<double>(stats.relate.fast_within);
          result.counters["miss_boundary"] =
              static_cast<double>(stats.relate.miss_boundary);
          result.counters["miss_inconclusive"] =
              static_cast<double>(stats.relate.miss_inconclusive);
        });
    // Median-based: robust against load spikes on shared machines.
    const double speedup =
        full_case.PercentileMs(0.5) / fast_case.PercentileMs(0.5);
    fast_case.counters["speedup_vs_full"] = speedup;
    std::printf("%44s   speedup_vs_full=%.2fx\n", "", speedup);
  }

  // Thread sweep on the large city (EXPERIMENTS.md "Scaling"). On the
  // single-vCPU build container wall time cannot improve with threads;
  // the case exists so multi-core machines can measure the scaling.
  {
    const auto city = GenerateCity(ScaledConfig(3));
    const PredicateExtractor extractor = MakeCrimeExtractor(*city);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      ExtractorOptions options;
      options.parallelism = threads;
      bench.Run("scaling/threads=" + std::to_string(threads),
                {{"scale", "3"}, {"threads", std::to_string(threads)}},
                [&](sfpm::bench::CaseResult& result) {
                  ExtractionStats stats;
                  auto table = extractor.Extract(options, &stats);
                  if (!table.ok()) std::exit(1);
                  result.counters["rows"] = static_cast<double>(stats.rows);
                });
    }
  }

  // The end-to-end pipeline the crime_analysis example runs, with both
  // hot paths on — extraction feeding Apriori-KC+.
  {
    const auto city = GenerateCity(ScaledConfig(2));
    const PredicateExtractor extractor = MakeExtractor(*city);
    bench.Run("pipeline/scale=2/extract+mine",
              {{"scale", "2"}, {"minsup", "0.1"}},
              [&](sfpm::bench::CaseResult& result) {
                ExtractorOptions options;
                options.parallelism = 1;
                auto table = extractor.Extract(options);
                if (!table.ok()) std::exit(1);
                auto mined = sfpm::core::MineAprioriKCPlus(
                    table.value().db(), 0.1);
                if (!mined.ok()) std::exit(1);
                result.counters["frequent"] = static_cast<double>(
                    mined.value().stats().total_frequent);
              });
  }

  return bench.Finish();
}
