// End-to-end benchmark of the spatial predicate extraction phase — what
// the paper identifies as the dominant cost of spatial pattern mining —
// on synthetic cities of growing size, plus the full pipeline
// (extract + mine) that backs the crime_analysis example.

#include <benchmark/benchmark.h>

#include "core/apriori.h"
#include "datagen/city.h"
#include "feature/extractor.h"

namespace {

using sfpm::datagen::City;
using sfpm::datagen::CityConfig;
using sfpm::datagen::GenerateCity;
using sfpm::feature::ExtractorOptions;
using sfpm::feature::PredicateExtractor;

CityConfig ScaledConfig(int scale) {
  CityConfig config;
  config.grid_cols = 4 * scale;
  config.grid_rows = 3 * scale;
  config.num_slums = static_cast<size_t>(20 * scale * scale);
  config.num_schools = static_cast<size_t>(40 * scale * scale);
  config.num_police = static_cast<size_t>(8 * scale * scale);
  config.num_streets = static_cast<size_t>(30 * scale * scale);
  config.seed = 2007;
  return config;
}

PredicateExtractor MakeExtractor(const City& city) {
  PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.slums);
  extractor.AddRelevantLayer(&city.schools);
  extractor.AddRelevantLayer(&city.police);
  return extractor;
}

void BM_Extraction_Topological(benchmark::State& state) {
  const auto city = GenerateCity(ScaledConfig(static_cast<int>(state.range(0))));
  const PredicateExtractor extractor = MakeExtractor(*city);
  ExtractorOptions options;
  for (auto _ : state) {
    auto table = extractor.Extract(options);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * city->districts.Size());
}
BENCHMARK(BM_Extraction_Topological)->Arg(1)->Arg(2)->Arg(3);

void BM_Extraction_WithDistanceBands(benchmark::State& state) {
  const auto city = GenerateCity(ScaledConfig(static_cast<int>(state.range(0))));
  const PredicateExtractor extractor = MakeExtractor(*city);
  const auto bands = sfpm::qsr::DistanceQuantizer::Default();
  ExtractorOptions options;
  options.distance_bands = &bands;
  for (auto _ : state) {
    auto table = extractor.Extract(options);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * city->districts.Size());
}
BENCHMARK(BM_Extraction_WithDistanceBands)->Arg(1)->Arg(2);

void BM_Pipeline_ExtractAndMine(benchmark::State& state) {
  const auto city = GenerateCity(ScaledConfig(static_cast<int>(state.range(0))));
  const PredicateExtractor extractor = MakeExtractor(*city);
  ExtractorOptions options;
  for (auto _ : state) {
    auto table = extractor.Extract(options);
    auto result =
        sfpm::core::MineAprioriKCPlus(table.value().db(), 0.1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Pipeline_ExtractAndMine)->Arg(1)->Arg(2);

// Scaling with --threads on the large synthetic city (scale 3: 144
// districts, 180 slums/360 schools/72 police per scale² — the workload of
// EXPERIMENTS.md's "Scaling" section). Serial is Arg(1); outputs are
// bit-identical at every thread count, so this measures pure speedup.
void BM_Extraction_Threads(benchmark::State& state) {
  const auto city = GenerateCity(ScaledConfig(3));
  const PredicateExtractor extractor = MakeExtractor(*city);
  const auto bands = sfpm::qsr::DistanceQuantizer::Default();
  ExtractorOptions options;
  options.distance_bands = &bands;
  options.parallelism = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto table = extractor.Extract(options);
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * city->districts.Size());
}
BENCHMARK(BM_Extraction_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CityGeneration(benchmark::State& state) {
  const CityConfig config = ScaledConfig(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto city = GenerateCity(config);
    benchmark::DoNotOptimize(city);
  }
}
BENCHMARK(BM_CityGeneration)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
