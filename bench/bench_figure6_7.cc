// Reproduces Figure 6 (frequent pattern counts of Apriori vs Apriori-KC+
// on the second experimental dataset across a minimum-support sweep),
// Figure 7 (their computational time) and the Section 4.2 Formula 1
// validations on the largest frequent itemsets.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/apriori.h"
#include "datagen/synthetic_predicates.h"
#include "stats/gain.h"
#include "stats/largest_itemset.h"

namespace {

using sfpm::core::MineApriori;
using sfpm::core::MineAprioriKCPlus;

const sfpm::feature::PredicateTable& Dataset() {
  static const sfpm::feature::PredicateTable table =
      sfpm::datagen::MakePaperDataset2();
  return table;
}

void PrintReproduction() {
  const auto& table = Dataset();
  std::printf(
      "== Dataset 2 (Figures 6 & 7): %zu transactions, %zu spatial "
      "predicates, %zu same-feature-type pairs, no dependencies ==\n\n",
      table.NumRows(), table.NumPredicates(),
      table.CountSameFeatureTypePairs());

  std::printf(
      "== Figure 6 (counts) / Figure 7 (times) ==\n"
      "%-8s %10s %12s %12s   %-26s %10s %10s\n", "minsup", "Apriori",
      "Apriori-KC+", "red. %", "largest itemset (Formula 1)", "predicted",
      "real gain");
  for (double minsup : {0.05, 0.08, 0.11, 0.14, 0.17, 0.20}) {
    const auto apriori = MineApriori(table.db(), minsup).value();
    const auto kcplus = MineAprioriKCPlus(table.db(), minsup).value();
    const double base = static_cast<double>(apriori.CountAtLeast(2));

    const auto params =
        sfpm::stats::AnalyzeLargestItemset(apriori, table.db());
    uint64_t predicted = 0;
    std::string desc = "-";
    if (params.ok()) {
      desc = params.value().ToString();
      predicted =
          sfpm::stats::MinimalGain(params.value().t, params.value().n)
              .value_or(0);
    }
    std::printf(
        "%5.0f%%   %10zu %12zu %11.1f%%   %-26s %10llu %10zu   "
        "(times: %.2f / %.2f ms)\n",
        minsup * 100, apriori.CountAtLeast(2), kcplus.CountAtLeast(2),
        100.0 * (1.0 - kcplus.CountAtLeast(2) / base), desc.c_str(),
        static_cast<unsigned long long>(predicted),
        apriori.CountAtLeast(2) - kcplus.CountAtLeast(2),
        apriori.stats().total_millis, kcplus.stats().total_millis);
  }
  std::printf(
      "\nPaper shape: KC+ removes >55%% at every minsup; at 17%% the "
      "predicted gain (74) equals the real gain; at 5%% the prediction "
      "(148, from m=8 u=3 t=2,2,2 n=2) lower-bounds the real gain.\n\n");
}

void BM_Figure7_Apriori(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto result = MineApriori(Dataset().db(), minsup);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Figure7_Apriori)->Arg(5)->Arg(11)->Arg(17);

void BM_Figure7_AprioriKCPlus(benchmark::State& state) {
  const double minsup = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto result = MineAprioriKCPlus(Dataset().db(), minsup);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Figure7_AprioriKCPlus)->Arg(5)->Arg(11)->Arg(17);

}  // namespace

int main(int argc, char** argv) {
  PrintReproduction();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
