// A/B benchmark of the RCC8 inference tier, in two parts.
//
// Algebra micro-benches: the memoized 256x256 set-composition table
// against the 8x8 member-pair reference loop, and Rcc8Network::Propagate's
// universal-edge early-exit against exhaustive PC-2 seeding on sparse
// random networks.
//
// Extraction A/B: --infer-relate on vs off on nested cities (dense small
// slums, half nested inside others) at scales 2 and 3. The two paths must
// emit byte-identical predicate tables — the bench asserts that at 1 and
// 4 threads before timing anything — and inference must win the honest
// total: per-row engine calls *plus* the prepare-phase pivot calls,
// strictly below the engine-only call count.
//
//   bench_infer [--repeat=N] [--json=bench/BENCH_infer.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "datagen/city.h"
#include "feature/extractor.h"
#include "io/table_io.h"
#include "qsr/rcc8.h"
#include "util/random.h"

namespace {

using sfpm::Rng;
using sfpm::datagen::City;
using sfpm::datagen::CityConfig;
using sfpm::datagen::GenerateCity;
using sfpm::feature::ExtractionStats;
using sfpm::feature::ExtractorOptions;
using sfpm::feature::PredicateExtractor;
using sfpm::qsr::PropagateMode;
using sfpm::qsr::Rcc8Compose;
using sfpm::qsr::Rcc8ComposeUncached;
using sfpm::qsr::Rcc8Network;
using sfpm::qsr::Rcc8Set;

// The extraction regime the inference tier exists for: dense small slums,
// most strictly inside one district while their envelopes protrude into
// neighbouring rows, and half nested inside other slums (containment
// chains). Mirrors tests/feature/infer_test.cc.
CityConfig NestedConfig(int scale) {
  CityConfig config;
  config.grid_cols = 4 * scale;
  config.grid_rows = 3 * scale;
  config.num_slums = static_cast<size_t>(150 * scale * scale);
  config.slum_radius_min = 0.06;
  config.slum_radius_max = 0.18;
  config.slum_nested_fraction = 0.5;
  config.num_schools = 40;
  config.num_police = 8;
  config.num_streets = 20;
  config.seed = 2007;
  return config;
}

std::string TableCsv(const PredicateExtractor& extractor,
                     const ExtractorOptions& options) {
  auto table = extractor.Extract(options);
  if (!table.ok()) {
    std::fprintf(stderr, "extract failed: %s\n",
                 table.status().ToString().c_str());
    std::exit(1);
  }
  return sfpm::io::TableToCsv(table.value());
}

// Sparse random network in the shape extraction clusters have: n regions,
// ~2n stated base-relation constraints, the rest universal.
Rcc8Network SparseNetwork(size_t n, Rng* rng) {
  Rcc8Network net(n);
  for (size_t k = 0; k < 2 * n; ++k) {
    const size_t i = rng->NextUint64(n);
    const size_t j = rng->NextUint64(n);
    if (i == j) continue;
    const auto rel = static_cast<sfpm::qsr::Rcc8>(rng->NextUint64(8));
    (void)net.Constrain(i, j, Rcc8Set(rel));
  }
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  sfpm::bench::Bench bench("infer", argc, argv);

  // --- Algebra micro-benches --------------------------------------------

  // Full 256x256 sweep per run; the XOR sink defeats dead-code
  // elimination and doubles as a cross-mode consistency check.
  unsigned memo_sink = 0, loop_sink = 0;
  const auto& compose_memo = bench.Run(
      "compose/memoized", {{"pairs", "65536"}},
      [&](sfpm::bench::CaseResult& result) {
        unsigned sink = 0;
        for (int sweep = 0; sweep < 16; ++sweep) {
          for (int a = 0; a < 256; ++a) {
            for (int b = 0; b < 256; ++b) {
              sink ^= Rcc8Compose(Rcc8Set(static_cast<uint8_t>(a)),
                                  Rcc8Set(static_cast<uint8_t>(b)))
                          .bits();
            }
          }
        }
        memo_sink = sink;
        result.counters["sweeps"] = 16;
      });
  const auto& compose_loop = bench.Run(
      "compose/uncached", {{"pairs", "65536"}},
      [&](sfpm::bench::CaseResult& result) {
        unsigned sink = 0;
        for (int sweep = 0; sweep < 16; ++sweep) {
          for (int a = 0; a < 256; ++a) {
            for (int b = 0; b < 256; ++b) {
              sink ^= Rcc8ComposeUncached(Rcc8Set(static_cast<uint8_t>(a)),
                                          Rcc8Set(static_cast<uint8_t>(b)))
                          .bits();
            }
          }
        }
        loop_sink = sink;
        result.counters["sweeps"] = 16;
      });
  if (memo_sink != loop_sink) {
    std::fprintf(stderr, "FATAL: memoized compose diverges from reference\n");
    return 1;
  }
  std::printf("%44s   memo_speedup=%.2fx\n", "",
              compose_loop.PercentileMs(0.5) / compose_memo.PercentileMs(0.5));

  // Propagate: 100 sparse 64-variable networks per run, both modes from
  // identical seeds (the closures are equal; only the seeding differs).
  for (const auto mode :
       {PropagateMode::kSkipUniversal, PropagateMode::kExhaustive}) {
    const bool skip = mode == PropagateMode::kSkipUniversal;
    bench.Run(std::string("propagate/") + (skip ? "skip_universal"
                                                : "exhaustive"),
              {{"variables", "64"}, {"networks", "100"}},
              [&](sfpm::bench::CaseResult& result) {
                Rng rng(2007);
                size_t consistent = 0;
                for (int k = 0; k < 100; ++k) {
                  Rcc8Network net = SparseNetwork(64, &rng);
                  if (net.Propagate(mode)) ++consistent;
                }
                result.counters["consistent"] =
                    static_cast<double>(consistent);
              });
  }

  // --- Extraction A/B ----------------------------------------------------

  for (int scale = 2; scale <= 3; ++scale) {
    const auto city = GenerateCity(NestedConfig(scale));
    PredicateExtractor extractor(&city->districts);
    extractor.AddRelevantLayer(&city->slums);
    const std::string scale_str = std::to_string(scale);
    const std::string districts = std::to_string(city->districts.Size());

    ExtractorOptions on;
    on.parallelism = 1;
    ExtractorOptions off = on;
    off.infer_relate = false;

    // Identity gate: inference on vs off, serial and 4 threads, must emit
    // the byte-identical predicate table — a speedup can never come from a
    // changed answer.
    const std::string off_csv = TableCsv(extractor, off);
    if (off_csv != TableCsv(extractor, on)) {
      std::fprintf(stderr, "FATAL: inference changed the table (scale %d)\n",
                   scale);
      return 1;
    }
    ExtractorOptions threaded = on;
    threaded.parallelism = 4;
    if (off_csv != TableCsv(extractor, threaded)) {
      std::fprintf(stderr, "FATAL: thread count changed the table (scale %d)\n",
                   scale);
      return 1;
    }

    ExtractionStats off_stats;
    const auto& off_case = bench.Run(
        "extract/scale=" + scale_str + "/engine_only",
        {{"scale", scale_str}, {"districts", districts}, {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          auto table = extractor.Extract(off, &off_stats);
          if (!table.ok()) std::exit(1);
          result.counters["relate_calls"] =
              static_cast<double>(off_stats.relate.calls);
        });

    // Cold: a fresh extractor per repetition pays the pivot-store build
    // every time (the layers' prepared-geometry caches stay warm, so the
    // comparison isolates the inference tier). This is the case the
    // engine-invocation gate judges: per-row calls plus the build must
    // land strictly below the engine-only count.
    auto& cold_case = bench.Run(
        "extract/scale=" + scale_str + "/inferred_cold",
        {{"scale", scale_str}, {"districts", districts}, {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          PredicateExtractor fresh(&city->districts);
          fresh.AddRelevantLayer(&city->slums);
          ExtractionStats stats;
          auto table = fresh.Extract(on, &stats);
          if (!table.ok()) std::exit(1);
          const double total = static_cast<double>(stats.relate.calls +
                                                   stats.infer_pivot_calls);
          result.counters["relate_calls"] =
              static_cast<double>(stats.relate.calls);
          result.counters["pivot_calls"] =
              static_cast<double>(stats.infer_pivot_calls);
          result.counters["pivot_pairs"] =
              static_cast<double>(stats.infer_pivot_pairs);
          result.counters["inferred"] =
              static_cast<double>(stats.relate.inferred);
          result.counters["inferred_skipped"] =
              static_cast<double>(stats.relate.inferred_skipped);
          result.counters["converse_hits"] =
              static_cast<double>(stats.relate.converse_hits);
          result.counters["engine_total"] = total;
          result.counters["engine_saved_pct"] =
              off_stats.relate.calls == 0
                  ? 0.0
                  : 100.0 * (1.0 - total / static_cast<double>(
                                              off_stats.relate.calls));
          // The honest gate: savings must beat the pivot-store build cost.
          if (stats.relate.calls + stats.infer_pivot_calls >=
              off_stats.relate.calls) {
            std::fprintf(stderr,
                         "FATAL: inference did not reduce total engine "
                         "invocations (scale %d)\n",
                         scale);
            std::exit(1);
          }
        });
    cold_case.counters["speedup_vs_engine_only"] =
        off_case.PercentileMs(0.5) / cold_case.PercentileMs(0.5);

    // Warm: the shared extractor built its stores during the identity
    // gate above, so every repetition reuses them — the steady state of
    // repeated extraction over fixed layers (the serve pipeline).
    auto& warm_case = bench.Run(
        "extract/scale=" + scale_str + "/inferred_warm",
        {{"scale", scale_str}, {"districts", districts}, {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          ExtractionStats stats;
          auto table = extractor.Extract(on, &stats);
          if (!table.ok()) std::exit(1);
          result.counters["relate_calls"] =
              static_cast<double>(stats.relate.calls);
          result.counters["pivot_calls"] =
              static_cast<double>(stats.infer_pivot_calls);
          result.counters["inferred"] =
              static_cast<double>(stats.relate.inferred);
          result.counters["inferred_skipped"] =
              static_cast<double>(stats.relate.inferred_skipped);
          result.counters["engine_saved_pct"] =
              off_stats.relate.calls == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(stats.relate.calls) /
                                       static_cast<double>(
                                           off_stats.relate.calls));
          if (stats.infer_pivot_calls != 0) {
            std::fprintf(stderr,
                         "FATAL: warm extractor rebuilt its pivot stores "
                         "(scale %d)\n",
                         scale);
            std::exit(1);
          }
        });
    const double cold_speedup =
        off_case.PercentileMs(0.5) / cold_case.PercentileMs(0.5);
    const double warm_speedup =
        off_case.PercentileMs(0.5) / warm_case.PercentileMs(0.5);
    warm_case.counters["speedup_vs_engine_only"] = warm_speedup;
    std::printf("%44s   cold=%.2fx warm=%.2fx vs engine-only\n", "",
                cold_speedup, warm_speedup);
  }

  return bench.Finish();
}
