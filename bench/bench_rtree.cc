// Ablation benchmark (DESIGN.md): R-tree vs uniform grid vs brute force
// for the envelope-join phase of predicate extraction — bulk loading,
// point-ish queries and a full self-join.

#include <benchmark/benchmark.h>

#include "index/grid.h"
#include "index/rtree.h"
#include "util/random.h"

namespace {

using sfpm::Rng;
using sfpm::geom::Envelope;
using sfpm::index::GridIndex;
using sfpm::index::RTree;

std::vector<std::pair<Envelope, uint64_t>> MakeEntries(size_t n) {
  Rng rng(42);
  std::vector<std::pair<Envelope, uint64_t>> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0, 10000);
    const double y = rng.NextDouble(0, 10000);
    entries.emplace_back(
        Envelope(x, y, x + rng.NextDouble(1, 50), y + rng.NextDouble(1, 50)),
        i);
  }
  return entries;
}

std::vector<Envelope> MakeQueries(size_t n) {
  Rng rng(7);
  std::vector<Envelope> queries;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0, 10000);
    const double y = rng.NextDouble(0, 10000);
    queries.emplace_back(x, y, x + 100, y + 100);
  }
  return queries;
}

void BM_RTree_BulkLoad(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree;
    tree.BulkLoad(entries);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTree_BulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTree_Insert(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    RTree tree;
    for (const auto& [env, id] : entries) tree.Insert(env, id);
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTree_Insert)->Arg(1000)->Arg(10000);

void BM_RTree_Query(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  RTree tree;
  tree.BulkLoad(entries);
  const auto queries = MakeQueries(256);
  size_t qi = 0;
  for (auto _ : state) {
    std::vector<uint64_t> out;
    tree.Query(queries[qi++ % queries.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTree_Query)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Grid_Query(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  GridIndex grid(100.0);
  for (const auto& [env, id] : entries) grid.Insert(env, id);
  const auto queries = MakeQueries(256);
  size_t qi = 0;
  for (auto _ : state) {
    std::vector<uint64_t> out;
    grid.Query(queries[qi++ % queries.size()], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Grid_Query)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BruteForce_Query(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  const auto queries = MakeQueries(256);
  size_t qi = 0;
  for (auto _ : state) {
    std::vector<uint64_t> out;
    const Envelope& q = queries[qi++ % queries.size()];
    for (const auto& [env, id] : entries) {
      if (env.Intersects(q)) out.push_back(id);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BruteForce_Query)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTree_SelfJoin(benchmark::State& state) {
  const auto entries = MakeEntries(static_cast<size_t>(state.range(0)));
  RTree tree;
  tree.BulkLoad(entries);
  for (auto _ : state) {
    size_t pairs = 0;
    std::vector<uint64_t> out;
    for (const auto& [env, id] : entries) {
      out.clear();
      tree.Query(env, &out);
      pairs += out.size();
    }
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RTree_SelfJoin)->Arg(1000)->Arg(10000);

void BM_RTree_Nearest(benchmark::State& state) {
  const auto entries = MakeEntries(10000);
  RTree tree;
  tree.BulkLoad(entries);
  Rng rng(9);
  for (auto _ : state) {
    auto nearest = tree.Nearest(
        sfpm::geom::Point(rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)),
        static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(nearest);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTree_Nearest)->Arg(1)->Arg(10)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
