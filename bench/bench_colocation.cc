// Related-work baseline benchmark: co-location mining (Huang, Shekhar &
// Xiong) vs the paper's qualitative pipeline on the same synthetic city —
// the comparison behind the paper's Section 1 argument that co-location
// handles only metric neighbourhoods over point-like data.

#include <benchmark/benchmark.h>

#include "coloc/colocation.h"
#include "core/apriori.h"
#include "datagen/city.h"
#include "feature/extractor.h"

namespace {

using sfpm::datagen::City;
using sfpm::datagen::CityConfig;

const City& SharedCity() {
  static const std::unique_ptr<City> city = [] {
    CityConfig config;
    config.seed = 99;
    return sfpm::datagen::GenerateCity(config);
  }();
  return *city;
}

void BM_Colocation(benchmark::State& state) {
  const City& city = SharedCity();
  sfpm::coloc::ColocationOptions options;
  options.neighbor_distance = static_cast<double>(state.range(0));
  options.min_prevalence = 0.2;
  for (auto _ : state) {
    auto patterns = sfpm::coloc::MineColocations(
        {&city.schools, &city.police, &city.illumination}, options);
    benchmark::DoNotOptimize(patterns);
  }
}
BENCHMARK(BM_Colocation)->Arg(250)->Arg(500)->Arg(1000);

void BM_QualitativePipeline(benchmark::State& state) {
  const City& city = SharedCity();
  sfpm::feature::PredicateExtractor extractor(&city.districts);
  extractor.AddRelevantLayer(&city.schools);
  extractor.AddRelevantLayer(&city.police);
  extractor.AddRelevantLayer(&city.illumination);
  sfpm::feature::ExtractorOptions options;
  for (auto _ : state) {
    auto table = extractor.Extract(options);
    auto mined = sfpm::core::MineAprioriKCPlus(table.value().db(), 0.1);
    benchmark::DoNotOptimize(mined);
  }
}
BENCHMARK(BM_QualitativePipeline);

}  // namespace

BENCHMARK_MAIN();
