// Ablation benchmarks (DESIGN.md):
//  * miner scaling in transactions, items and density;
//  * the paper's design choice — pruning same-type pairs in the second
//    pass (anti-monotone, Apriori-KC+) vs filtering the finished result
//    aposteriori — measured head to head;
//  * KC+ speedup as the number of same-type pairs grows.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/apriori.h"
#include "core/candidate_filter.h"
#include "datagen/transactional.h"

namespace {

using sfpm::core::AprioriResult;
using sfpm::core::FrequentItemset;
using sfpm::core::MineApriori;
using sfpm::core::MineAprioriKCPlus;
using sfpm::core::TransactionDb;

TransactionDb MakeDb(size_t transactions, size_t items, size_t key_group) {
  sfpm::datagen::TransactionalConfig config;
  config.num_transactions = transactions;
  config.num_items = items;
  config.avg_transaction_size = 12;
  config.num_patterns = items / 4;
  config.key_group_size = key_group;
  return sfpm::datagen::GenerateTransactional(config);
}

/// The aposteriori alternative the paper argues against: mine everything,
/// then drop itemsets containing a same-key pair.
size_t MineThenFilter(const TransactionDb& db, double minsup) {
  const AprioriResult result = MineApriori(db, minsup).value();
  size_t kept = 0;
  for (const FrequentItemset& fi : result.itemsets()) {
    bool has_pair = false;
    for (size_t i = 0; i < fi.items.size() && !has_pair; ++i) {
      for (size_t j = i + 1; j < fi.items.size() && !has_pair; ++j) {
        const std::string& key = db.Key(fi.items[i]);
        has_pair = !key.empty() && key == db.Key(fi.items[j]);
      }
    }
    kept += !has_pair;
  }
  return kept;
}

void BM_Apriori_ScaleTransactions(benchmark::State& state) {
  const TransactionDb db =
      MakeDb(static_cast<size_t>(state.range(0)), 60, 0);
  for (auto _ : state) {
    auto result = MineApriori(db, 0.02);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Apriori_ScaleTransactions)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000);

void BM_Apriori_ScaleItems(benchmark::State& state) {
  const TransactionDb db =
      MakeDb(5000, static_cast<size_t>(state.range(0)), 0);
  for (auto _ : state) {
    auto result = MineApriori(db, 0.02);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Apriori_ScaleItems)->Arg(30)->Arg(60)->Arg(120);

void BM_Apriori_MinsupSweep(benchmark::State& state) {
  const TransactionDb db = MakeDb(10000, 60, 0);
  const double minsup = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    auto result = MineApriori(db, minsup);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Apriori_MinsupSweep)->Arg(10)->Arg(20)->Arg(50)->Arg(100);

// --- Support-counting scaling with --threads ---------------------------
// 100k transactions so each of the passes has enough bitmap words to
// split; identical frequent itemsets at every thread count (see
// tests/feature/parallel_determinism_test.cc), so this is pure speedup.

void BM_Apriori_Threads(benchmark::State& state) {
  const TransactionDb db = MakeDb(100000, 60, 0);
  sfpm::core::AprioriOptions options;
  options.min_support = 0.02;
  options.parallelism = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto result = MineApriori(db, options);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Apriori_Threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Ablation: apriori pruning vs aposteriori filtering ----------------

void BM_Ablation_PruneAtK2(benchmark::State& state) {
  const TransactionDb db = MakeDb(10000, 60, /*key_group=*/4);
  for (auto _ : state) {
    auto result = MineAprioriKCPlus(db, 0.02);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Ablation_PruneAtK2);

void BM_Ablation_FilterAposteriori(benchmark::State& state) {
  const TransactionDb db = MakeDb(10000, 60, /*key_group=*/4);
  for (auto _ : state) {
    size_t kept = MineThenFilter(db, 0.02);
    benchmark::DoNotOptimize(kept);
  }
}
BENCHMARK(BM_Ablation_FilterAposteriori);

// --- KC+ advantage as same-type group size grows ------------------------

void BM_KCPlus_ByGroupSize(benchmark::State& state) {
  const TransactionDb db =
      MakeDb(10000, 60, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = MineAprioriKCPlus(db, 0.02);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KCPlus_ByGroupSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void PrintAblationSummary() {
  const TransactionDb db = MakeDb(10000, 60, 4);
  const auto pruned = MineAprioriKCPlus(db, 0.02).value();
  const size_t filtered = MineThenFilter(db, 0.02);
  std::printf(
      "== Ablation: prune-at-k=2 vs filter-aposteriori (same dataset, "
      "minsup 2%%) ==\n"
      "both keep the identical %zu itemsets (aposteriori kept %zu); the "
      "benchmarks below show the cost difference — pruning also counts "
      "fewer candidates (%zu passes recorded).\n\n",
      pruned.stats().total_frequent, filtered, pruned.stats().passes.size());
}

}  // namespace

int main(int argc, char** argv) {
  PrintAblationSummary();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
