// A/B benchmark of Apriori's support-counting hot path: the prefix-shared
// kernel (PrefixSupportCounter) against the naive per-candidate k-way
// AND, on Quest-style synthetic databases of growing size, plus the
// paper's prune-at-k=2 vs filter-aposteriori ablation. Both counting
// paths must mine the identical frequent itemsets — the bench asserts
// that (including 1 thread vs 4 threads) before timing anything.
//
//   bench_apriori_scale [--repeat=N] [--json=bench/BENCH_apriori_scale.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.h"
#include "core/apriori.h"
#include "core/candidate_filter.h"
#include "datagen/transactional.h"

namespace {

using sfpm::core::AprioriOptions;
using sfpm::core::AprioriResult;
using sfpm::core::FrequentItemset;
using sfpm::core::MineApriori;
using sfpm::core::MineAprioriKCPlus;
using sfpm::core::TransactionDb;

TransactionDb MakeDb(size_t transactions, size_t items, size_t key_group) {
  sfpm::datagen::TransactionalConfig config;
  config.num_transactions = transactions;
  config.num_items = items;
  config.avg_transaction_size = 12;
  config.num_patterns = items / 4;
  config.key_group_size = key_group;
  return sfpm::datagen::GenerateTransactional(config);
}

AprioriResult MineOrDie(const TransactionDb& db, const AprioriOptions& options) {
  auto result = MineApriori(db, options);
  if (!result.ok()) {
    std::fprintf(stderr, "mine failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

bool SameItemsets(const AprioriResult& a, const AprioriResult& b) {
  if (a.itemsets().size() != b.itemsets().size()) return false;
  for (size_t i = 0; i < a.itemsets().size(); ++i) {
    if (!(a.itemsets()[i].items == b.itemsets()[i].items) ||
        a.itemsets()[i].support != b.itemsets()[i].support) {
      return false;
    }
  }
  return true;
}

/// The aposteriori alternative the paper argues against: mine everything,
/// then drop itemsets containing a same-key pair.
size_t MineThenFilter(const TransactionDb& db, double minsup) {
  const AprioriResult result = MineApriori(db, minsup).value();
  size_t kept = 0;
  for (const FrequentItemset& fi : result.itemsets()) {
    bool has_pair = false;
    for (size_t i = 0; i < fi.items.size() && !has_pair; ++i) {
      for (size_t j = i + 1; j < fi.items.size() && !has_pair; ++j) {
        const std::string& key = db.Key(fi.items[i]);
        has_pair = !key.empty() && key == db.Key(fi.items[j]);
      }
    }
    kept += !has_pair;
  }
  return kept;
}

}  // namespace

int main(int argc, char** argv) {
  sfpm::bench::Bench bench("apriori_scale", argc, argv);

  // Transaction scaling at 60 items / minsup 2% — 100k transactions is
  // the paper-scale configuration of EXPERIMENTS.md's scaling section.
  for (size_t transactions : {size_t{10000}, size_t{100000}}) {
    const TransactionDb db = MakeDb(transactions, 60, 0);
    const std::string tx_str = std::to_string(transactions);

    AprioriOptions prefix;
    prefix.min_support = 0.02;
    prefix.parallelism = 1;
    AprioriOptions naive = prefix;
    naive.prefix_cache = false;
    AprioriOptions threaded = prefix;
    threaded.parallelism = 4;

    // Identity gate: cache on vs off, and serial vs 4 threads, must mine
    // the identical frequent itemsets with identical supports.
    const AprioriResult reference = MineOrDie(db, naive);
    if (!SameItemsets(reference, MineOrDie(db, prefix)) ||
        !SameItemsets(reference, MineOrDie(db, threaded))) {
      std::fprintf(stderr, "FATAL: counting path changed the result (%zu)\n",
                   transactions);
      return 1;
    }

    const auto& naive_case = bench.Run(
        "count/tx=" + tx_str + "/naive",
        {{"transactions", tx_str}, {"items", "60"}, {"minsup", "0.02"},
         {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          const AprioriResult mined = MineOrDie(db, naive);
          result.counters["frequent"] =
              static_cast<double>(mined.stats().total_frequent);
        });

    auto& prefix_case = bench.Run(
        "count/tx=" + tx_str + "/prefix",
        {{"transactions", tx_str}, {"items", "60"}, {"minsup", "0.02"},
         {"threads", "1"}},
        [&](sfpm::bench::CaseResult& result) {
          const AprioriResult mined = MineOrDie(db, prefix);
          const auto& stats = mined.stats();
          const uint64_t events = stats.prefix_hits + stats.prefix_misses;
          result.counters["frequent"] =
              static_cast<double>(stats.total_frequent);
          result.counters["and_word_ops"] =
              static_cast<double>(stats.and_word_ops);
          result.counters["prefix_hit_pct"] =
              events == 0 ? 0.0
                          : 100.0 * static_cast<double>(stats.prefix_hits) /
                                static_cast<double>(events);
        });
    // Median-based: robust against load spikes on shared machines.
    const double speedup =
        naive_case.PercentileMs(0.5) / prefix_case.PercentileMs(0.5);
    prefix_case.counters["speedup_vs_naive"] = speedup;
    std::printf("%44s   speedup_vs_naive=%.2fx\n", "", speedup);
  }

  // Minsup sweep on the mid-size database, prefix path.
  {
    const TransactionDb db = MakeDb(10000, 60, 0);
    for (double minsup : {0.01, 0.02, 0.05}) {
      AprioriOptions options;
      options.min_support = minsup;
      options.parallelism = 1;
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", minsup);
      bench.Run("minsup/" + std::string(buf),
                {{"transactions", "10000"}, {"items", "60"},
                 {"minsup", buf}},
                [&](sfpm::bench::CaseResult& result) {
                  const AprioriResult mined = MineOrDie(db, options);
                  result.counters["frequent"] =
                      static_cast<double>(mined.stats().total_frequent);
                });
    }
  }

  // Thread sweep at paper scale (EXPERIMENTS.md "Scaling"). On the
  // single-vCPU build container wall time cannot improve with threads;
  // the case exists so multi-core machines can measure the scaling.
  {
    const TransactionDb db = MakeDb(100000, 60, 0);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      AprioriOptions options;
      options.min_support = 0.02;
      options.parallelism = threads;
      bench.Run("scaling/threads=" + std::to_string(threads),
                {{"transactions", "100000"}, {"items", "60"},
                 {"minsup", "0.02"}, {"threads", std::to_string(threads)}},
                [&](sfpm::bench::CaseResult& result) {
                  const AprioriResult mined = MineOrDie(db, options);
                  result.counters["frequent"] =
                      static_cast<double>(mined.stats().total_frequent);
                });
    }
  }

  // The paper's design-choice ablation: prune same-type pairs inside the
  // second pass (Apriori-KC+) vs filter the finished result.
  {
    const TransactionDb db = MakeDb(10000, 60, /*key_group=*/4);
    bench.Run("ablation/prune-at-k2",
              {{"transactions", "10000"}, {"key_group", "4"},
               {"minsup", "0.02"}},
              [&](sfpm::bench::CaseResult& result) {
                auto mined = MineAprioriKCPlus(db, 0.02);
                if (!mined.ok()) std::exit(1);
                result.counters["kept"] = static_cast<double>(
                    mined.value().stats().total_frequent);
              });
    bench.Run("ablation/filter-aposteriori",
              {{"transactions", "10000"}, {"key_group", "4"},
               {"minsup", "0.02"}},
              [&](sfpm::bench::CaseResult& result) {
                result.counters["kept"] =
                    static_cast<double>(MineThenFilter(db, 0.02));
              });
  }

  return bench.Finish();
}
